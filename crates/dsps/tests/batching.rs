//! Acceptance suite for the micro-batched data plane.
//!
//! The contract under test: enabling [`BatchConfig`] changes *when* tuples
//! move, never *which* tuples move or in what per-edge order. Batching must
//! compose with every other runtime layer — reliability/chaos recovery,
//! tracing gauges and histograms (which stay tuple-granular), and the
//! EOS/finish flush that makes draining unconditional.

use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tms_dsps::runtime::{BatchConfig, LocalCluster, ReliabilityConfig, RuntimeConfig};
use tms_dsps::scheduler::ClusterSpec;
use tms_dsps::topology::{Parallelism, TopologyBuilder};
use tms_dsps::{
    chaos_wrap, Bolt, BoltContext, Emitter, FaultConfig, Grouping, MonitorConfig, Spout,
};

#[derive(Clone)]
struct Msg {
    key: u64,
    value: u64,
}

struct RangeSpout {
    next: u64,
    end: u64,
}
impl Spout<Msg> for RangeSpout {
    fn next(&mut self) -> Option<Msg> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        Some(Msg { key: v % 13, value: v })
    }
}

fn cluster() -> LocalCluster {
    LocalCluster::new(ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 4 }).unwrap()
}

/// Small batches with a long linger: size-triggered flushes dominate and
/// the EOS flush drains the non-divisor tail.
fn batch_small() -> BatchConfig {
    BatchConfig { max_batch: 7, max_linger: Duration::from_millis(100) }
}

// ---------------------------------------------------------------------------
// Differential: batched ≡ per-tuple across every grouping
// ---------------------------------------------------------------------------

type EdgeLog = Arc<Mutex<HashMap<(&'static str, usize), Vec<u64>>>>;

/// Terminal bolt that appends each value to its own (component, task) edge
/// log, preserving arrival order.
struct Recorder {
    name: &'static str,
    task: usize,
    log: EdgeLog,
}
impl Bolt<Msg> for Recorder {
    fn prepare(&mut self, _ctx: BoltContext) {}
    fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
        self.log.lock().entry((self.name, self.task)).or_default().push(msg.value);
    }
}

fn recorder(
    name: &'static str,
    log: &EdgeLog,
) -> impl Fn(usize) -> Box<dyn Bolt<Msg>> + Send + Sync + 'static {
    let log = log.clone();
    move |task| Box::new(Recorder { name, task, log: log.clone() }) as Box<dyn Bolt<Msg>>
}

/// One spout fans out to a sink per grouping; a router bolt covers Direct.
/// Every producer is a single task, so each (producer task → consumer task)
/// edge has a deterministic tuple order and the whole edge log must be
/// byte-identical between delivery modes.
fn run_all_groupings(batch: Option<BatchConfig>) -> HashMap<(&'static str, usize), Vec<u64>> {
    const TUPLES: u64 = 300;
    struct Router;
    impl Bolt<Msg> for Router {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            let task = (msg.value % 4) as usize;
            e.emit_direct(task, msg);
        }
    }

    let log: EdgeLog = Arc::new(Mutex::new(HashMap::new()));
    let t = TopologyBuilder::new("groupings")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: TUPLES }))
        .add_bolt("shuf", Parallelism::of(1), vec![("src", Grouping::Shuffle)], recorder("shuf", &log))
        .add_bolt(
            "flds",
            Parallelism::of(2),
            vec![("src", Grouping::fields(|m: &Msg| m.key))],
            recorder("flds", &log),
        )
        .add_bolt("all", Parallelism::of(2), vec![("src", Grouping::All)], recorder("all", &log))
        .add_bolt("router", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(Router) as Box<dyn Bolt<Msg>>
        })
        .add_bolt("dir", Parallelism::of(4), vec![("router", Grouping::Direct)], recorder("dir", &log))
        .build()
        .unwrap();
    let cfg = RuntimeConfig { batch, ..RuntimeConfig::default() };
    cluster().submit(t, cfg).unwrap().join().unwrap();
    Arc::try_unwrap(log).expect("all tasks joined").into_inner()
}

#[test]
fn batched_delivery_matches_per_tuple_for_every_grouping() {
    let per_tuple = run_all_groupings(None);
    let batched = run_all_groupings(Some(batch_small()));

    // Sanity on the per-tuple baseline before comparing against it.
    assert_eq!(per_tuple[&("shuf", 0)].len(), 300);
    assert_eq!(per_tuple[&("all", 0)].len(), 300, "All grouping broadcasts to task 0");
    assert_eq!(per_tuple[&("all", 1)].len(), 300, "All grouping broadcasts to task 1");
    let fields: usize = (0..2).map(|ti| per_tuple[&("flds", ti)].len()).sum();
    assert_eq!(fields, 300);
    for ti in 0..4 {
        assert!(
            per_tuple[&("dir", ti)].iter().all(|v| (v % 4) as usize == ti),
            "direct routing honors the named task"
        );
    }

    assert_eq!(
        batched, per_tuple,
        "batching must preserve exactly the per-edge tuple sequences"
    );
}

// ---------------------------------------------------------------------------
// Chaos: recovery under batching heals injected faults
// ---------------------------------------------------------------------------

#[test]
fn chaos_run_with_batching_matches_failure_free_run_after_dedup() {
    const TUPLES: u64 = 1000;
    let collected: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    struct Sink {
        collected: Arc<Mutex<Vec<u64>>>,
    }
    impl Bolt<Msg> for Sink {
        fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
            self.collected.lock().push(msg.value);
        }
    }
    let transform = |_: usize| -> Box<dyn Bolt<Msg>> {
        struct Triple;
        impl Bolt<Msg> for Triple {
            fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
                e.emit(Msg { key: msg.key, value: msg.value * 3 });
            }
        }
        Box::new(Triple)
    };
    let faults = FaultConfig { panic_p: 0.01, drop_p: 0.01, delay: None, seed: 0xBA7C_5EED };
    let chaotic = chaos_wrap(transform, faults);

    let sink_collected = collected.clone();
    let half = TUPLES / 2;
    let t = TopologyBuilder::new("chaos-batched")
        .add_spout("src", Parallelism::of(2), move |ti| {
            Box::new(RangeSpout { next: ti as u64 * half, end: (ti as u64 + 1) * half })
        })
        .add_bolt("triple", Parallelism::of(2), vec![("src", Grouping::Shuffle)], chaotic)
        .add_bolt("sink", Parallelism::of(1), vec![("triple", Grouping::Shuffle)], move |_| {
            Box::new(Sink { collected: sink_collected.clone() }) as Box<dyn Bolt<Msg>>
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        batch: Some(batch_small()),
        fault: Some(faults),
        reliability: Some(ReliabilityConfig {
            ack_timeout: Duration::from_millis(250),
            max_retries: 20,
            backoff: 1.5,
            max_pending: 256,
            max_task_restarts: 200,
        }),
        ..RuntimeConfig::default()
    };
    let handle = cluster().submit(t, cfg).unwrap();
    let metrics = handle.metrics().clone();
    handle.join().expect("recovery must absorb injected faults under batching");

    let deduped: BTreeSet<u64> = collected.lock().iter().copied().collect();
    let expected: BTreeSet<u64> = (0..TUPLES).map(|v| v * 3).collect();
    assert_eq!(deduped, expected, "after dedup, chaos + batching equals the failure-free run");
    assert!(collected.lock().len() as u64 >= TUPLES, "at-least-once: no losses");

    let totals = metrics.totals();
    let src = totals.iter().find(|c| c.component == "src").unwrap();
    assert_eq!(src.acked, TUPLES, "every root eventually acked");
    assert_eq!(src.failed, 0, "no root may exhaust its replay budget");
    assert!(src.replayed > 0, "injected faults must have forced replays");
    let triple = totals.iter().find(|c| c.component == "triple").unwrap();
    assert!(triple.restarted > 0, "injected panics must have forced restarts");
}

// ---------------------------------------------------------------------------
// Observability: gauges and histograms stay tuple-granular
// ---------------------------------------------------------------------------

#[test]
fn tracing_under_batching_stays_tuple_granular() {
    const TUPLES: u64 = 2000;
    const CAPACITY: usize = 8;
    struct SlowSink;
    impl Bolt<Msg> for SlowSink {
        fn process(&mut self, _msg: Msg, _e: &mut dyn Emitter<Msg>) {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    let t = TopologyBuilder::new("traced-batched")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: TUPLES }))
        .add_bolt("sink", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(SlowSink)
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        channel_capacity: CAPACITY,
        batch: Some(BatchConfig { max_batch: 16, max_linger: Duration::from_millis(1) }),
        monitor: Some(MonitorConfig {
            window: Duration::from_secs(3600),
            tracing: true,
            ..MonitorConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let handle = cluster().submit(t, cfg).unwrap();
    let metrics = handle.metrics().clone();

    // The channel holds up to CAPACITY *packets*; a full batch carries 16
    // tuples, so a tuple-granular gauge must climb past the packet count
    // while the slow sink backlogs.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut deepest = 0u64;
    while Instant::now() < deadline {
        if let Some(sink) = metrics.sample().iter().find(|w| w.component == "sink") {
            deepest = deepest.max(sink.queue_depth);
            if deepest > CAPACITY as u64 {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let metrics = handle.join().unwrap();
    assert!(
        deepest > CAPACITY as u64,
        "queue gauge counts tuples, not packets: deepest observed {deepest} <= {CAPACITY}"
    );

    let totals = metrics.totals();
    let sink = totals.iter().find(|c| c.component == "sink").unwrap();
    assert_eq!(sink.e2e.count(), TUPLES, "one end-to-end sample per tuple, not per batch");
    assert_eq!(sink.throughput, TUPLES, "processed counters are per tuple");
    let src = totals.iter().find(|c| c.component == "src").unwrap();
    assert_eq!(src.emitted, TUPLES, "emit counters are per tuple");
}

// ---------------------------------------------------------------------------
// EOS/finish flush: draining is unconditional
// ---------------------------------------------------------------------------

#[test]
fn eos_flushes_batches_that_would_otherwise_never_fill() {
    // Neither flush trigger can fire: the batch never fills and the linger
    // outlives the run. Only the unconditional EOS flush delivers.
    let collected: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    struct Sink {
        collected: Arc<Mutex<Vec<u64>>>,
    }
    impl Bolt<Msg> for Sink {
        fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
            self.collected.lock().push(msg.value);
        }
    }
    let sink_collected = collected.clone();
    struct Forward;
    impl Bolt<Msg> for Forward {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            e.emit(msg);
        }
    }
    let t = TopologyBuilder::new("eos-flush")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 50 }))
        .add_bolt("mid", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(Forward) as Box<dyn Bolt<Msg>>
        })
        .add_bolt("sink", Parallelism::of(1), vec![("mid", Grouping::Shuffle)], move |_| {
            Box::new(Sink { collected: sink_collected.clone() }) as Box<dyn Bolt<Msg>>
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        batch: Some(BatchConfig { max_batch: 100_000, max_linger: Duration::from_secs(3600) }),
        ..RuntimeConfig::default()
    };
    let started = Instant::now();
    cluster().submit(t, cfg).unwrap().join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the EOS flush must not wait out the linger"
    );
    let mut values = collected.lock().clone();
    values.sort_unstable();
    assert_eq!(values, (0..50).collect::<Vec<u64>>());
}
