//! Acceptance suite for the profiling/exposition layer: profile sources
//! feeding per-rule breakdowns into sampled windows, and the loopback
//! scrape endpoint serving Prometheus text format and JSON mid-run.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tms_dsps::metrics::LATENCY_BUCKETS;
use tms_dsps::runtime::RuntimeConfig;
use tms_dsps::{
    Bolt, DspsError, Emitter, Grouping, LatencyHistogram, LocalCluster, MonitorConfig,
    Parallelism, RuleProfile, Spout, TopologyBuilder,
};

#[derive(Clone)]
struct Msg {
    #[allow(dead_code)]
    value: u64,
}

struct RangeSpout {
    next: u64,
    end: u64,
}

impl Spout<Msg> for RangeSpout {
    fn next(&mut self) -> Option<Msg> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        Some(Msg { value: v })
    }
}

/// Counts processed tuples into a shared counter — the stand-in for a CEP
/// engine whose cumulative profile a source snapshots.
struct CountBolt {
    n: Arc<AtomicU64>,
    delay: Duration,
}

impl Bolt<Msg> for CountBolt {
    fn process(&mut self, _msg: Msg, _e: &mut dyn Emitter<Msg>) {
        self.n.fetch_add(1, Ordering::SeqCst);
        if self.delay > Duration::ZERO {
            std::thread::sleep(self.delay);
        }
    }
}

fn cluster() -> LocalCluster {
    LocalCluster::new(tms_dsps::scheduler::ClusterSpec {
        nodes: 2,
        slots_per_node: 2,
        cores_per_node: 2,
    })
    .unwrap()
}

/// A cumulative profile as a rule engine would report it: `n` evals of
/// ~1µs each.
fn cumulative_profile(n: u64) -> Vec<RuleProfile> {
    let mut buckets = [0u64; LATENCY_BUCKETS];
    buckets[10] = n; // 2^10 ns = 1.024 µs per eval
    vec![RuleProfile {
        rule: "speed-rule".into(),
        engine: 0,
        events_in: n,
        evals: n,
        firings: n / 10,
        rows_out: n / 10,
        eval: LatencyHistogram::from_parts(buckets, n * 1024),
        path_shared: 0,
        path_incremental: n,
        path_anchor: 0,
        path_rescan: 0,
        window_len: 5,
        threshold_age: Some(Duration::from_secs(2)),
    }]
}

#[test]
fn profile_sources_feed_windows_as_deltas_and_totals_cumulatively() {
    let processed = Arc::new(AtomicU64::new(0));
    let bolt_n = processed.clone();
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 400 }))
        .add_bolt("cep", Parallelism::of(1), vec![("src", Grouping::Shuffle)], move |_| {
            Box::new(CountBolt { n: bolt_n.clone(), delay: Duration::from_micros(200) })
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        monitor: Some(MonitorConfig {
            window: Duration::from_millis(25),
            profiling: true,
            ..MonitorConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let handle = cluster().submit(t, cfg).unwrap();
    let src_n = processed.clone();
    handle
        .metrics()
        .register_profile_source("cep", Arc::new(move || {
            cumulative_profile(src_n.load(Ordering::SeqCst))
        }));
    let metrics = handle.join().unwrap();

    let final_n = processed.load(Ordering::SeqCst);
    assert_eq!(final_n, 400);

    // Window profiles are deltas: they sum back to the cumulative total.
    let history = metrics.history();
    let windows: Vec<_> = history
        .iter()
        .filter(|w| w.component == "cep" && !w.rules.is_empty())
        .collect();
    assert!(!windows.is_empty(), "sampled windows must carry rule profiles");
    let summed_events: u64 = windows.iter().flat_map(|w| &w.rules).map(|r| r.events_in).sum();
    let summed_evals: u64 =
        windows.iter().flat_map(|w| &w.rules).map(|r| r.eval.count()).sum();
    assert_eq!(summed_events, final_n, "window deltas must sum to the total");
    assert_eq!(summed_evals, final_n);
    for r in windows.iter().flat_map(|w| &w.rules) {
        assert_eq!(r.rule, "speed-rule");
        assert_eq!(r.window_len, 5, "gauges pass through un-diffed");
        assert_eq!(r.threshold_age, Some(Duration::from_secs(2)));
    }

    // Lifetime totals carry the cumulative profile.
    let totals = metrics.totals();
    let cep = totals.iter().find(|w| w.component == "cep").unwrap();
    assert_eq!(cep.rules.len(), 1);
    assert_eq!(cep.rules[0].events_in, final_n);
    assert_eq!(cep.rules[0].eval.count(), final_n);
    assert_eq!(cep.rules[0].path_incremental, final_n);
}

#[test]
fn scrape_endpoint_serves_prometheus_and_json_mid_run() {
    let processed = Arc::new(AtomicU64::new(0));
    let bolt_n = processed.clone();
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 3000 }))
        .add_bolt("cep", Parallelism::of(1), vec![("src", Grouping::Shuffle)], move |_| {
            Box::new(CountBolt { n: bolt_n.clone(), delay: Duration::from_millis(1) })
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        monitor: Some(MonitorConfig {
            window: Duration::from_millis(50),
            tracing: true,
            profiling: true,
            expose: Some(0), // ephemeral loopback port
            ..MonitorConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let handle = cluster().submit(t, cfg).unwrap();
    let src_n = processed.clone();
    handle
        .metrics()
        .register_profile_source("cep", Arc::new(move || {
            cumulative_profile(src_n.load(Ordering::SeqCst))
        }));
    let addr = handle.scrape_addr().expect("expose binds an ephemeral port");
    assert!(addr.ip().is_loopback(), "scrapes are loopback-only");

    let get = |path: &str| -> String {
        let mut s = TcpStream::connect(addr).expect("connect to scrape endpoint");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).expect("server closes after the response");
        out
    };

    // Give the monitor a moment to sample at least one window.
    std::thread::sleep(Duration::from_millis(120));

    let metrics_resp = get("/metrics");
    assert!(metrics_resp.starts_with("HTTP/1.1 200"), "{metrics_resp}");
    assert!(metrics_resp.contains("text/plain; version=0.0.4"), "{metrics_resp}");
    for needle in [
        "# TYPE tms_processed_total counter",
        "tms_processed_total{component=\"src\"}",
        "# TYPE tms_e2e_latency_seconds histogram",
        "tms_rule_events_in_total{component=\"cep\",rule=\"speed-rule\",engine=\"0\"}",
        "tms_rule_eval_seconds_bucket",
        "tms_rule_threshold_age_seconds",
    ] {
        assert!(metrics_resp.contains(needle), "{needle:?} missing from:\n{metrics_resp}");
    }

    let json_resp = get("/json");
    assert!(json_resp.starts_with("HTTP/1.1 200"), "{json_resp}");
    assert!(json_resp.contains("application/json"), "{json_resp}");
    assert!(json_resp.contains("\"components\":["), "{json_resp}");
    assert!(json_resp.contains("\"rule\":\"speed-rule\""), "{json_resp}");

    let missing = get("/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    handle.join().unwrap();
}

#[test]
fn exposition_stays_off_by_default() {
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 10 }))
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        monitor: Some(MonitorConfig {
            window: Duration::from_millis(50),
            ..MonitorConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let handle = cluster().submit(t, cfg).unwrap();
    assert_eq!(handle.scrape_addr(), None, "no endpoint without expose");
    handle.join().unwrap();
}

#[test]
fn exposition_bind_conflict_surfaces_as_an_error() {
    let blocker = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let port = blocker.local_addr().unwrap().port();
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 10 }))
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        monitor: Some(MonitorConfig {
            window: Duration::from_millis(50),
            expose: Some(port),
            ..MonitorConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let err = match cluster().submit(t, cfg) {
        Err(e) => e,
        Ok(_) => panic!("submit must fail when the port is taken"),
    };
    assert!(
        matches!(err, DspsError::ExpositionBind { port: p, .. } if p == port),
        "expected ExpositionBind, got {err:?}"
    );
}
