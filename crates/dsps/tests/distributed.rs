//! Acceptance suite for the multi-process runtime: topologies spanning
//! worker processes over loopback TCP.
//!
//! The contract under test: distribution changes *where* executors run,
//! never *which* tuples arrive or what the observability layer reports.
//! Every test pins its sinks to worker 0 (the coordinator process) so
//! delivered tuples can be asserted in-process while the interior of the
//! topology runs in spawned workers.
//!
//! Worker processes re-execute this test binary with the `worker_entry`
//! filter (the rusty-fork pattern); [`worker_entry`] maps the scenario
//! name from the environment back to the same topology builder the
//! coordinator used, validated by fingerprint.

use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tms_dsps::net::{run_worker, worker_scenario, WorkerHooks};
use tms_dsps::runtime::{BatchConfig, LocalCluster, ReliabilityConfig, RuntimeConfig};
use tms_dsps::scheduler::ClusterSpec;
use tms_dsps::topology::{Parallelism, Topology, TopologyBuilder};
use tms_dsps::{
    Bolt, BoltContext, DistributedCluster, DspsError, Emitter, FaultConfig, FlightKind, Grouping,
    MigrationCoordinator, MonitorConfig, Spout, WireCodec, WireReader,
};

#[derive(Clone)]
struct Msg {
    key: u64,
    value: u64,
}

impl WireCodec for Msg {
    fn encode(&self, buf: &mut BytesMut) {
        self.key.encode(buf);
        self.value.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(Msg { key: u64::decode(r)?, value: u64::decode(r)? })
    }
}

struct RangeSpout {
    next: u64,
    end: u64,
}
impl Spout<Msg> for RangeSpout {
    fn next(&mut self) -> Option<Msg> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        Some(Msg { key: v % 13, value: v })
    }
}

fn spec() -> ClusterSpec {
    ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 2 }
}

fn two_workers() -> DistributedCluster {
    DistributedCluster::new(spec(), 2).unwrap()
}

type ValueLog = Arc<Mutex<Vec<u64>>>;

/// Terminal bolt appending each value to a shared log.
struct ValueSink {
    log: ValueLog,
}
impl Bolt<Msg> for ValueSink {
    fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
        self.log.lock().push(msg.value);
    }
}

fn value_sink(log: &ValueLog) -> impl Fn(usize) -> Box<dyn Bolt<Msg>> + Send + Sync + 'static {
    let log = log.clone();
    move |_| Box::new(ValueSink { log: log.clone() }) as Box<dyn Bolt<Msg>>
}

// ---------------------------------------------------------------------------
// Worker-side dispatch
// ---------------------------------------------------------------------------

/// Control subtag carrying a migration install to a remote worker.
const SUB_MIGRATE: u8 = 42;

/// The worker process entry point: spawned workers re-execute this binary
/// filtered to exactly this test. Without the worker environment it is an
/// immediate no-op, so the normal test run is unaffected.
#[test]
fn worker_entry() {
    let Some(scenario) = worker_scenario() else { return };
    let outcome = match scenario.as_str() {
        "parity" => run_worker(|_h| parity_topology(&Arc::new(Mutex::new(HashMap::new())))),
        "chaos" => run_worker(|_h| chaos_topology(&Arc::new(Mutex::new(Vec::new())))),
        "restart" => run_worker(|_h| restart_topology(&Arc::new(Mutex::new(Vec::new())))),
        "mesh" => run_worker(|_h| mesh_topology(&Arc::new(Mutex::new(Vec::new())))),
        "scrape" => run_worker(|_h| scrape_topology()),
        "migrate" => run_worker(|hooks: &mut WorkerHooks| {
            let (tx, rx) = bounded::<u64>(8);
            hooks.on_control(SUB_MIGRATE, move |payload| {
                let mut r = WireReader::new(payload);
                let _ticket = u64::decode(&mut r).expect("install frame carries a ticket id");
                let offset = u64::decode(&mut r).expect("install frame carries the offset");
                let _ = tx.send(offset);
            });
            migrate_topology(
                rx,
                &Arc::new(Mutex::new(Vec::new())),
                &Arc::new(AtomicBool::new(false)),
                &Arc::new(AtomicU64::new(u64::MAX)),
            )
        }),
        other => panic!("unknown distributed scenario {other:?}"),
    };
    outcome.expect("worker slice must drain cleanly");
}

// ---------------------------------------------------------------------------
// Parity: batched ≡ per-tuple across every grouping, spanning 2 workers
// ---------------------------------------------------------------------------

type EdgeLog = Arc<Mutex<HashMap<(&'static str, usize), Vec<u64>>>>;

/// Recorder preserving per-(component, task) arrival order.
struct Recorder {
    name: &'static str,
    task: usize,
    log: EdgeLog,
}
impl Bolt<Msg> for Recorder {
    fn prepare(&mut self, _ctx: BoltContext) {}
    fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
        self.log.lock().entry((self.name, self.task)).or_default().push(msg.value);
    }
}

fn recorder(
    name: &'static str,
    log: &EdgeLog,
) -> impl Fn(usize) -> Box<dyn Bolt<Msg>> + Send + Sync + 'static {
    let log = log.clone();
    move |task| Box::new(Recorder { name, task, log: log.clone() }) as Box<dyn Bolt<Msg>>
}

const PARITY_TUPLES: u64 = 300;

/// src (worker 0) → relay (worker 1) fanning out over every grouping to
/// recorder sinks pinned back on worker 0, so each tuple crosses the TCP
/// link twice. A router on worker 1 covers Direct.
fn parity_topology(log: &EdgeLog) -> Topology<Msg> {
    struct Forward;
    impl Bolt<Msg> for Forward {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            e.emit(msg);
        }
    }
    struct Router;
    impl Bolt<Msg> for Router {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            let task = (msg.value % 4) as usize;
            e.emit_direct(task, msg);
        }
    }
    TopologyBuilder::new("dist-parity")
        .add_spout("src", Parallelism::of(1), |_| {
            Box::new(RangeSpout { next: 0, end: PARITY_TUPLES })
        })
        .add_bolt("relay", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(Forward) as Box<dyn Bolt<Msg>>
        })
        .add_bolt(
            "shuf",
            Parallelism::of(1),
            vec![("relay", Grouping::Shuffle)],
            recorder("shuf", log),
        )
        .add_bolt(
            "flds",
            Parallelism::of(2),
            vec![("relay", Grouping::fields(|m: &Msg| m.key))],
            recorder("flds", log),
        )
        .add_bolt("all", Parallelism::of(2), vec![("relay", Grouping::All)], recorder("all", log))
        .add_bolt("router", Parallelism::of(1), vec![("relay", Grouping::Shuffle)], |_| {
            Box::new(Router) as Box<dyn Bolt<Msg>>
        })
        .add_bolt(
            "dir",
            Parallelism::of(4),
            vec![("router", Grouping::Direct)],
            recorder("dir", log),
        )
        .build()
        .unwrap()
}

fn run_parity(batch: Option<BatchConfig>) -> HashMap<(&'static str, usize), Vec<u64>> {
    let log: EdgeLog = Arc::new(Mutex::new(HashMap::new()));
    let t = parity_topology(&log);
    let cluster = two_workers()
        .pin("relay", 1)
        .pin("router", 1)
        .pin("shuf", 0)
        .pin("flds", 0)
        .pin("all", 0)
        .pin("dir", 0);
    let cfg = RuntimeConfig { batch, ..RuntimeConfig::default() };
    cluster.submit("parity", t, cfg).unwrap().join().unwrap();
    let out = log.lock().clone();
    out
}

#[test]
fn batched_delivery_matches_per_tuple_across_processes() {
    let per_tuple = run_parity(None);
    let batched = run_parity(Some(BatchConfig {
        max_batch: 7,
        max_linger: Duration::from_millis(100),
    }));

    // Sanity on the per-tuple baseline before comparing against it.
    assert_eq!(per_tuple[&("shuf", 0)].len(), PARITY_TUPLES as usize);
    for ti in 0..2 {
        assert_eq!(
            per_tuple[&("all", ti)].len(),
            PARITY_TUPLES as usize,
            "All grouping broadcasts across the link to task {ti}"
        );
    }
    let fields: usize = (0..2).map(|ti| per_tuple[&("flds", ti)].len()).sum();
    assert_eq!(fields, PARITY_TUPLES as usize);
    for ti in 0..4 {
        assert!(
            per_tuple[&("dir", ti)].iter().all(|v| (v % 4) as usize == ti),
            "direct routing honors the named task across the link"
        );
    }

    assert_eq!(
        batched, per_tuple,
        "batching must preserve exactly the per-edge tuple sequences over TCP"
    );
}

#[test]
fn single_worker_cluster_delegates_to_the_in_process_path() {
    // workers == 1 must behave exactly like LocalCluster::submit — no
    // sockets, no child processes, identical delivery.
    let log: EdgeLog = Arc::new(Mutex::new(HashMap::new()));
    let t = parity_topology(&log);
    let cluster = DistributedCluster::new(spec(), 1).unwrap();
    let handle = cluster.submit("parity", t, RuntimeConfig::default()).unwrap();
    assert!(handle.controller().is_none(), "no control links in-process");
    handle.join().unwrap();

    let local_log: EdgeLog = Arc::new(Mutex::new(HashMap::new()));
    let t = parity_topology(&local_log);
    LocalCluster::new(spec()).unwrap().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
    assert_eq!(&*log.lock(), &*local_log.lock(), "workers=1 is the in-process runtime");
}

// ---------------------------------------------------------------------------
// Chaos: at-least-once recovery across a lossy TCP link
// ---------------------------------------------------------------------------

const CHAOS_TUPLES: u64 = 1000;

fn chaos_topology(collected: &ValueLog) -> Topology<Msg> {
    struct Triple;
    impl Bolt<Msg> for Triple {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            e.emit(Msg { key: msg.key, value: msg.value * 3 });
        }
    }
    TopologyBuilder::new("dist-chaos")
        .add_spout("src", Parallelism::of(1), |_| {
            Box::new(RangeSpout { next: 0, end: CHAOS_TUPLES })
        })
        .add_bolt("triple", Parallelism::of(2), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(Triple) as Box<dyn Bolt<Msg>>
        })
        .add_bolt("sink", Parallelism::of(1), vec![("triple", Grouping::Shuffle)], value_sink(collected))
        .build()
        .unwrap()
}

#[test]
fn chaos_drops_on_the_link_recover_at_least_once() {
    let collected: ValueLog = Arc::new(Mutex::new(Vec::new()));
    let t = chaos_topology(&collected);
    let faults = FaultConfig { panic_p: 0.0, drop_p: 0.01, delay: None, seed: 0xD15C_5EED };
    let cfg = RuntimeConfig {
        fault: Some(faults),
        reliability: Some(ReliabilityConfig {
            ack_timeout: Duration::from_millis(250),
            max_retries: 20,
            backoff: 1.5,
            max_pending: 256,
            max_task_restarts: 200,
        }),
        ..RuntimeConfig::default()
    };
    let cluster = two_workers().pin("triple", 1).pin("sink", 0);
    let handle = cluster.submit("chaos", t, cfg).unwrap();
    let metrics = handle.join().expect("recovery must absorb 1% link drops");

    let deduped: BTreeSet<u64> = collected.lock().iter().copied().collect();
    let expected: BTreeSet<u64> = (0..CHAOS_TUPLES).map(|v| v * 3).collect();
    assert_eq!(deduped, expected, "after dedup, a lossy link equals the loss-free run");
    assert!(collected.lock().len() as u64 >= CHAOS_TUPLES, "at-least-once: no losses");

    let totals = metrics.totals();
    let src = totals.iter().find(|c| c.component == "src").unwrap();
    assert_eq!(src.acked, CHAOS_TUPLES, "every root eventually acked over the ack link");
    assert_eq!(src.failed, 0, "no root may exhaust its replay budget");
    assert!(src.replayed > 0, "injected link drops must have forced replays");
}

// ---------------------------------------------------------------------------
// Supervised restart of a task living in a remote worker
// ---------------------------------------------------------------------------

const RESTART_TUPLES: u64 = 200;

/// Process-global one-shot fuse: the boom bolt panics exactly once per
/// process. Only the worker process hosting it ever trips it.
static PANICKED: AtomicBool = AtomicBool::new(false);

fn restart_topology(collected: &ValueLog) -> Topology<Msg> {
    struct Boom;
    impl Bolt<Msg> for Boom {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            if msg.value == 7 && !PANICKED.swap(true, Ordering::SeqCst) {
                panic!("injected remote panic");
            }
            e.emit(msg);
        }
    }
    TopologyBuilder::new("dist-restart")
        .add_spout("src", Parallelism::of(1), |_| {
            Box::new(RangeSpout { next: 0, end: RESTART_TUPLES })
        })
        .add_bolt("boom", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(Boom) as Box<dyn Bolt<Msg>>
        })
        .add_bolt("sink", Parallelism::of(1), vec![("boom", Grouping::Shuffle)], value_sink(collected))
        .build()
        .unwrap()
}

#[test]
fn supervised_restart_spans_the_process_boundary() {
    let collected: ValueLog = Arc::new(Mutex::new(Vec::new()));
    let t = restart_topology(&collected);
    let cfg = RuntimeConfig {
        reliability: Some(ReliabilityConfig {
            ack_timeout: Duration::from_millis(250),
            max_retries: 20,
            backoff: 1.5,
            max_pending: 256,
            max_task_restarts: 5,
        }),
        ..RuntimeConfig::default()
    };
    let cluster = two_workers().pin("boom", 1).pin("sink", 0);
    let handle = cluster.submit("restart", t, cfg).unwrap();
    let flight = handle.flight_recorder().clone();
    let metrics = handle.join().expect("the supervisor must absorb the remote panic");

    let deduped: BTreeSet<u64> = collected.lock().iter().copied().collect();
    let expected: BTreeSet<u64> = (0..RESTART_TUPLES).collect();
    assert_eq!(deduped, expected, "the panicked tuple replays through the restarted task");

    // The restart happened in worker 1's process; its counters and flight
    // events must surface in the coordinator's merged view.
    let merged = metrics.merged_totals();
    let boom = merged
        .iter()
        .find(|(w, c)| *w == Some(1) && c.component == "boom")
        .expect("remote boom counters appear under the worker-1 label");
    assert!(boom.1.restarted > 0, "the remote restart must be counted");
    assert!(
        flight
            .events()
            .iter()
            .any(|e| e.kind == FlightKind::TaskRestart && e.component == "boom"),
        "the worker's restart flight event must reach the coordinator log"
    );
}

// ---------------------------------------------------------------------------
// Mesh: a 3-worker chain exercises the worker↔worker links
// ---------------------------------------------------------------------------

const MESH_TUPLES: u64 = 500;

fn mesh_topology(collected: &ValueLog) -> Topology<Msg> {
    struct Double;
    impl Bolt<Msg> for Double {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            e.emit(Msg { key: msg.key, value: msg.value * 2 });
        }
    }
    struct Inc;
    impl Bolt<Msg> for Inc {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            e.emit(Msg { key: msg.key, value: msg.value + 1 });
        }
    }
    TopologyBuilder::new("dist-mesh")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: MESH_TUPLES }))
        .add_bolt("double", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(Double) as Box<dyn Bolt<Msg>>
        })
        .add_bolt("inc", Parallelism::of(1), vec![("double", Grouping::Shuffle)], |_| {
            Box::new(Inc) as Box<dyn Bolt<Msg>>
        })
        .add_bolt("sink", Parallelism::of(1), vec![("inc", Grouping::Shuffle)], value_sink(collected))
        .build()
        .unwrap()
}

#[test]
fn three_worker_chain_routes_over_the_peer_mesh() {
    let collected: ValueLog = Arc::new(Mutex::new(Vec::new()));
    let t = mesh_topology(&collected);
    // worker 0 → worker 1 → worker 2 → worker 0: the middle hop uses the
    // dialed/accepted peer links, not the coordinator star.
    let cluster = DistributedCluster::new(spec(), 3).unwrap()
        .pin("double", 1)
        .pin("inc", 2)
        .pin("sink", 0);
    cluster.submit("mesh", t, RuntimeConfig::default()).unwrap().join().unwrap();

    let mut values = collected.lock().clone();
    values.sort_unstable();
    let expected: Vec<u64> = (0..MESH_TUPLES).map(|v| v * 2 + 1).collect();
    assert_eq!(values, expected, "every tuple survives both mesh hops exactly once");
}

// ---------------------------------------------------------------------------
// Elastic: a migration install shipped over the control link
// ---------------------------------------------------------------------------

const MIGRATE_OFFSET: u64 = 1_000_000;
const MIGRATE_TAIL: u64 = 100;
const MIGRATE_CAP: u64 = 100_000;

/// Emits values until the install visibly applied (a shifted value reached
/// the sink), then exactly [`MIGRATE_TAIL`] more — those are guaranteed
/// post-install. `tail_start` reports where the tail began.
struct MigrateSpout {
    emitted: u64,
    tail_left: Option<u64>,
    migrated: Arc<AtomicBool>,
    tail_start: Arc<AtomicU64>,
}
impl Spout<Msg> for MigrateSpout {
    fn next(&mut self) -> Option<Msg> {
        if let Some(left) = &mut self.tail_left {
            if *left == 0 {
                return None;
            }
            *left -= 1;
        } else if self.migrated.load(Ordering::SeqCst) {
            self.tail_start.store(self.emitted, Ordering::SeqCst);
            self.tail_left = Some(MIGRATE_TAIL - 1); // this call emits the first tail value
        } else if self.emitted >= MIGRATE_CAP {
            return None; // safety bound: the install never applied
        }
        let v = self.emitted;
        self.emitted += 1;
        if v % 512 == 0 {
            // Yield so the control frame and the sink's observation can
            // overtake the stream on a single-core box.
            std::thread::sleep(Duration::from_millis(1));
        }
        Some(Msg { key: v % 7, value: v })
    }
}

fn migrate_topology(
    installs: Receiver<u64>,
    log: &ValueLog,
    migrated: &Arc<AtomicBool>,
    tail_start: &Arc<AtomicU64>,
) -> Topology<Msg> {
    /// The migrating stateful task: adds the installed offset (0 until an
    /// install arrives over the control link).
    struct Xform {
        offset: u64,
        installs: Receiver<u64>,
    }
    impl Bolt<Msg> for Xform {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            while let Ok(o) = self.installs.try_recv() {
                self.offset = o;
            }
            e.emit(Msg { key: msg.key, value: msg.value + self.offset });
        }
    }
    struct MigrateSink {
        log: ValueLog,
        migrated: Arc<AtomicBool>,
    }
    impl Bolt<Msg> for MigrateSink {
        fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
            if msg.value >= MIGRATE_OFFSET {
                self.migrated.store(true, Ordering::SeqCst);
            }
            self.log.lock().push(msg.value);
        }
    }
    let spout_migrated = migrated.clone();
    let spout_tail = tail_start.clone();
    let sink_log = log.clone();
    let sink_migrated = migrated.clone();
    TopologyBuilder::new("dist-migrate")
        .add_spout("src", Parallelism::of(1), move |_| {
            Box::new(MigrateSpout {
                emitted: 0,
                tail_left: None,
                migrated: spout_migrated.clone(),
                tail_start: spout_tail.clone(),
            })
        })
        .add_bolt("xform", Parallelism::of(1), vec![("src", Grouping::Shuffle)], move |_| {
            Box::new(Xform { offset: 0, installs: installs.clone() }) as Box<dyn Bolt<Msg>>
        })
        .add_bolt("sink", Parallelism::of(1), vec![("xform", Grouping::Shuffle)], move |_| {
            Box::new(MigrateSink { log: sink_log.clone(), migrated: sink_migrated.clone() })
                as Box<dyn Bolt<Msg>>
        })
        .build()
        .unwrap()
}

#[test]
fn migration_install_crosses_the_tcp_boundary() {
    let log: ValueLog = Arc::new(Mutex::new(Vec::new()));
    let migrated = Arc::new(AtomicBool::new(false));
    let tail_start = Arc::new(AtomicU64::new(u64::MAX));
    // xform runs on worker 1, so the local receiver half is never polled.
    let (_unused_tx, rx) = bounded::<u64>(1);
    let t = migrate_topology(rx, &log, &migrated, &tail_start);
    let cluster = two_workers().pin("xform", 1).pin("sink", 0);
    let handle = cluster.submit("migrate", t, RuntimeConfig::default()).unwrap();

    // The coordinator-side migration machinery: the redirect claims the
    // install and frames it onto worker 1's control link instead of a
    // local mailbox.
    let controller = handle.controller().expect("multi-process runs expose the controller");
    let mc = MigrationCoordinator::<u64, u64>::new();
    mc.set_recorder(handle.flight_recorder().clone());
    mc.set_install_redirect(move |_to, ticket, offset: &u64| {
        let mut buf = BytesMut::new();
        ticket.encode(&mut buf);
        offset.encode(&mut buf);
        controller.send_control(1, SUB_MIGRATE, &buf.freeze()[..]).is_ok()
    });
    let ticket = mc.request(0, 0, 0u64);
    mc.post_install(0, ticket, MIGRATE_OFFSET);

    let flight = handle.flight_recorder().clone();
    handle.join().unwrap();

    let start = tail_start.load(Ordering::SeqCst);
    assert_ne!(start, u64::MAX, "the install must visibly apply before the stream's cap");
    let values: BTreeSet<u64> = log.lock().iter().copied().collect();
    for v in start..start + MIGRATE_TAIL {
        assert!(
            values.contains(&(v + MIGRATE_OFFSET)),
            "post-install value {v} must arrive shifted (install applied in worker 1)"
        );
    }
    assert_eq!(log.lock().len() as u64, start + MIGRATE_TAIL, "no tuple lost around the install");
    assert!(
        flight.events().iter().any(|e| {
            e.kind == FlightKind::MigrationCompleted && e.detail.contains("remote worker")
        }),
        "the redirect must record the ticket as shipped to the remote worker"
    );
}

// ---------------------------------------------------------------------------
// Merged metrics: remote counters appear in the coordinator scrape
// ---------------------------------------------------------------------------

const SCRAPE_TUPLES: u64 = 4000;

fn scrape_topology() -> Topology<Msg> {
    struct SlowSink;
    impl Bolt<Msg> for SlowSink {
        fn process(&mut self, _msg: Msg, _e: &mut dyn Emitter<Msg>) {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    TopologyBuilder::new("dist-scrape")
        .add_spout("src", Parallelism::of(1), |_| {
            Box::new(RangeSpout { next: 0, end: SCRAPE_TUPLES })
        })
        .add_bolt("rcep", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(SlowSink) as Box<dyn Bolt<Msg>>
        })
        .build()
        .unwrap()
}

#[test]
fn remote_bolt_counters_appear_in_the_merged_scrape() {
    let t = scrape_topology();
    let cfg = RuntimeConfig {
        monitor: Some(MonitorConfig {
            window: Duration::from_millis(50),
            tracing: true,
            expose: Some(0),
            ..MonitorConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let cluster = two_workers().pin("rcep", 1);
    let handle = cluster.submit("scrape", t, cfg).unwrap();
    let addr = handle.scrape_addr().expect("expose binds on the coordinator");

    let get = |path: &str| -> String {
        let mut s = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => return String::new(),
        };
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    };

    // Worker 1 pushes its totals every 200 ms; the slow remote bolt keeps
    // the run alive long enough to observe the merge mid-run.
    let deadline = Instant::now() + Duration::from_secs(15);
    let (mut prom_seen, mut json_seen) = (false, false);
    while Instant::now() < deadline && !(prom_seen && json_seen) {
        let prom = get("/metrics");
        // Once any remote worker reported, every sample carries a worker
        // label — the coordinator's own rows under worker="0".
        prom_seen = prom.contains("tms_processed_total{component=\"rcep\",worker=\"1\"}")
            && prom.contains("component=\"src\",worker=\"0\"");
        let json = get("/json");
        json_seen = json.contains("\"worker\":1,\"component\":\"rcep\"");
        std::thread::sleep(Duration::from_millis(50));
    }

    let metrics = handle.join().unwrap();
    assert!(prom_seen, "/metrics must label the remote bolt's counters with its worker");
    assert!(json_seen, "/json must label the remote bolt's counters with its worker");

    // Backstop on the final merged view: the remote component's full
    // throughput is visible from the coordinator.
    let merged = metrics.merged_totals();
    let rcep = merged
        .iter()
        .find(|(w, c)| *w == Some(1) && c.component == "rcep")
        .expect("remote rcep totals appear under the worker-1 label");
    assert_eq!(rcep.1.throughput, SCRAPE_TUPLES, "the merged view carries the full remote count");
    assert!(
        merged.iter().any(|(w, c)| *w == Some(0) && c.component == "src"),
        "local rows are tagged worker 0 once remote rows exist"
    );
}
