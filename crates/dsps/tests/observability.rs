//! Acceptance suite for the tracing/observability layer: end-to-end
//! completion latency histograms (both delivery modes), queue-occupancy
//! gauges, and monitor-thread shutdown behavior with tracing enabled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tms_dsps::runtime::RuntimeConfig;
use tms_dsps::{
    Bolt, Emitter, Grouping, LocalCluster, MonitorConfig, Parallelism, ReliabilityConfig, Spout,
    TopologyBuilder,
};

#[derive(Clone)]
struct Msg {
    value: u64,
}

struct RangeSpout {
    next: u64,
    end: u64,
}

impl Spout<Msg> for RangeSpout {
    fn next(&mut self) -> Option<Msg> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        Some(Msg { value: v })
    }
}

struct Forward;
impl Bolt<Msg> for Forward {
    fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
        e.emit(msg);
    }
}

struct NullSink;
impl Bolt<Msg> for NullSink {
    fn process(&mut self, _msg: Msg, _e: &mut dyn Emitter<Msg>) {}
}

fn cluster() -> LocalCluster {
    LocalCluster::new(tms_dsps::scheduler::ClusterSpec {
        nodes: 2,
        slots_per_node: 2,
        cores_per_node: 2,
    })
    .unwrap()
}

/// Tracing on, with a monitor window far longer than the run: windows come
/// only from the shutdown flush, so the test also covers that path.
fn traced_monitor() -> Option<MonitorConfig> {
    Some(MonitorConfig {
        window: Duration::from_secs(3600),
        tracing: true,
        ..MonitorConfig::default()
    })
}

#[test]
fn at_most_once_tracing_records_completion_at_the_sink() {
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 100 }))
        .add_bolt("mid", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(Forward)
        })
        .add_bolt("sink", Parallelism::of(2), vec![("mid", Grouping::Shuffle)], |_| {
            Box::new(NullSink)
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig { monitor: traced_monitor(), ..RuntimeConfig::default() };
    let metrics = cluster().submit(t, cfg).unwrap().join().unwrap();
    let totals = metrics.totals();
    let sink = totals.iter().find(|c| c.component == "sink").unwrap();
    assert_eq!(
        sink.e2e.count(),
        100,
        "every tuple's end-to-end latency lands at the terminal bolt"
    );
    assert!(sink.e2e.mean().unwrap() > Duration::ZERO);
    assert!(sink.e2e.p50().unwrap() <= sink.e2e.p99().unwrap());
    // The emit-time stamp survived the intermediate hop, and non-terminal
    // components recorded nothing.
    let mid = totals.iter().find(|c| c.component == "mid").unwrap();
    assert!(mid.e2e.is_empty(), "only the end of the tuple's path records e2e");
    let src = totals.iter().find(|c| c.component == "src").unwrap();
    assert!(src.e2e.is_empty(), "at-most-once mode records at the sink, not the spout");
}

#[test]
fn tracing_off_records_no_completion_latency() {
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 50 }))
        .add_bolt("sink", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(NullSink)
        })
        .build()
        .unwrap();
    let metrics = cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
    for w in metrics.totals() {
        assert!(w.e2e.is_empty(), "{}: tracing is opt-in", w.component);
        assert_eq!(w.queue_capacity, 0, "{}: no gauges registered without tracing", w.component);
    }
}

#[test]
fn e2e_latency_under_replay_is_measured_from_first_emit() {
    // The bolt panics on the first sight of value 7; the spout replays it
    // after the 100 ms ack timeout. The replayed tuple's completion
    // latency must cover the whole retry history (>= the ack timeout),
    // not just the final successful attempt (~microseconds).
    let tripped = Arc::new(AtomicBool::new(false));
    struct OnceBomb {
        tripped: Arc<AtomicBool>,
    }
    impl Bolt<Msg> for OnceBomb {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            if msg.value == 7 && !self.tripped.swap(true, Ordering::SeqCst) {
                panic!("first 7 is fatal");
            }
            e.emit(msg);
        }
    }
    let tripped_f = tripped.clone();
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 20 }))
        .add_bolt("bomb", Parallelism::of(1), vec![("src", Grouping::Shuffle)], move |_| {
            Box::new(OnceBomb { tripped: tripped_f.clone() })
        })
        .add_bolt("sink", Parallelism::of(1), vec![("bomb", Grouping::Shuffle)], |_| {
            Box::new(NullSink)
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        monitor: traced_monitor(),
        reliability: Some(ReliabilityConfig {
            ack_timeout: Duration::from_millis(100),
            max_retries: 10,
            backoff: 1.5,
            ..ReliabilityConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let metrics = cluster().submit(t, cfg).unwrap().join().unwrap();
    let totals = metrics.totals();
    let src = totals.iter().find(|c| c.component == "src").unwrap();
    assert_eq!(src.acked, 20);
    assert!(src.replayed >= 1, "the poisoned tuple must have been replayed");
    assert_eq!(
        src.e2e.count(),
        20,
        "reliability mode records one completion latency per acked root"
    );
    assert!(
        src.e2e.quantile(1.0).unwrap() >= Duration::from_millis(100),
        "the replayed root's latency spans the ack timeout, not just the last attempt: {:?}",
        src.e2e.quantile(1.0)
    );
    // Sinks don't double-record in reliability mode.
    let sink = totals.iter().find(|c| c.component == "sink").unwrap();
    assert!(sink.e2e.is_empty(), "reliability mode records spout-side only");
}

#[test]
fn queue_gauges_expose_backlog_mid_run() {
    // A slow sink behind a tiny channel: the spout fills the channel, and
    // a mid-run sample must see the backlog and the channel capacity.
    struct SlowSink;
    impl Bolt<Msg> for SlowSink {
        fn process(&mut self, _msg: Msg, _e: &mut dyn Emitter<Msg>) {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 2000 }))
        .add_bolt("sink", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(SlowSink)
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        channel_capacity: 8,
        monitor: traced_monitor(),
        ..RuntimeConfig::default()
    };
    let handle = cluster().submit(t, cfg).unwrap();
    let metrics = handle.metrics().clone();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut saw_backlog = false;
    while Instant::now() < deadline {
        let windows = metrics.sample();
        if let Some(sink) = windows.iter().find(|w| w.component == "sink") {
            assert_eq!(sink.queue_capacity, 8, "gauge reports the configured capacity");
            assert!(sink.queue_depth <= 8, "occupancy cannot exceed capacity");
            assert!(sink.queue_depth_max <= sink.queue_depth);
            if sink.queue_depth > 0 {
                saw_backlog = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.join().unwrap();
    assert!(saw_backlog, "a saturated channel must show up in the gauge");
}

#[test]
fn monitor_with_tracing_joins_promptly_and_flushes_a_partial_window() {
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 200 }))
        .add_bolt("sink", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(NullSink)
        })
        .build()
        .unwrap();
    // A 1-hour window: without prompt shutdown + flush, this test would
    // either hang for the window or end with an empty history.
    let cfg = RuntimeConfig { monitor: traced_monitor(), ..RuntimeConfig::default() };
    let started = Instant::now();
    let metrics = cluster().submit(t, cfg).unwrap().join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "join must not wait out the monitor window"
    );
    let history = metrics.history();
    assert!(!history.is_empty(), "the shutdown flush recorded the tail");
    assert!(history.iter().all(|w| w.partial), "flush windows are marked partial");
    let sink = history.iter().find(|w| w.component == "sink").unwrap();
    assert_eq!(sink.at, Duration::ZERO, "the only window starts at topology start");
    assert!(sink.len > Duration::ZERO);
    assert_eq!(sink.e2e.count(), 200, "flushed windows carry the e2e histogram");
}
