//! Durability acceptance suite: snapshot + changelog recovery.
//!
//! The acceptance bar: a topology killed and resubmitted against the same
//! durability directory must resume from its persisted state and end
//! *byte-identical* to an uninterrupted run — in both delivery modes
//! (at-most-once and at-least-once), with and without the micro-batched
//! data plane. A supervised post-panic restart must restore the task's
//! persisted state instead of rebuilding it empty. And the changelog must
//! survive torn tails and corrupt records by truncating to the longest
//! valid prefix (property-tested).

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tms_dsps::durability::{read_frames, DurabilityConfig, StateStore};
use tms_dsps::runtime::{BatchConfig, LocalCluster, ReliabilityConfig, RuntimeConfig};
use tms_dsps::scheduler::ClusterSpec;
use tms_dsps::topology::{Parallelism, TopologyBuilder};
use tms_dsps::{Bolt, Emitter, Grouping, Spout};

struct RangeSpout {
    next: u64,
    end: u64,
}
impl Spout<u64> for RangeSpout {
    fn next(&mut self) -> Option<u64> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        Some(v)
    }
}

/// The stateful bolt under test: a float accumulator whose low mantissa
/// bits depend on the exact sequence of values folded in — any recovery
/// that replays the wrong records, in the wrong order, or loses some,
/// produces different state bytes.
///
/// Changelog record: the 8 LE bytes of the incoming value. Snapshot:
/// `[seen: u64 LE][sum: f64 bits LE]`.
struct Acc {
    seen: u64,
    sum: f64,
    pending: Vec<Vec<u8>>,
    /// Panics once while processing this value (restart-recovery tests).
    poison: Option<(u64, Arc<AtomicBool>)>,
    /// Telemetry: `seen` as of the last `restore_state` call.
    restored_seen: Option<Arc<AtomicU64>>,
}

impl Acc {
    fn fold(&mut self, v: u64) {
        self.seen += 1;
        self.sum += (v as f64).sqrt();
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.seen.to_le_bytes());
        out.extend_from_slice(&self.sum.to_bits().to_le_bytes());
        out
    }
}

impl Bolt<u64> for Acc {
    fn process(&mut self, v: u64, _e: &mut dyn Emitter<u64>) {
        if let Some((poison, fired)) = &self.poison {
            if v == *poison && !fired.swap(true, Ordering::SeqCst) {
                panic!("poisoned tuple {v}");
            }
        }
        self.fold(v);
        self.pending.push(v.to_le_bytes().to_vec());
    }

    fn snapshot_state(&mut self) -> Option<Vec<u8>> {
        Some(self.state_bytes())
    }

    fn drain_changelog(&mut self, out: &mut Vec<Vec<u8>>) {
        out.append(&mut self.pending);
    }

    fn restore_state(&mut self, snapshot: Option<&[u8]>, changelog: &[Vec<u8>]) {
        if let Some(s) = snapshot {
            self.seen = u64::from_le_bytes(s[0..8].try_into().unwrap());
            self.sum = f64::from_bits(u64::from_le_bytes(s[8..16].try_into().unwrap()));
        }
        for rec in changelog {
            self.fold(u64::from_le_bytes(rec[..8].try_into().unwrap()));
        }
        if let Some(t) = &self.restored_seen {
            t.store(self.seen, Ordering::SeqCst);
        }
    }
}

fn cluster() -> LocalCluster {
    LocalCluster::new(ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 2 }).unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tms-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_reliability() -> ReliabilityConfig {
    ReliabilityConfig {
        ack_timeout: Duration::from_secs(5),
        max_retries: 5,
        backoff: 1.5,
        max_pending: 256,
        max_task_restarts: 3,
    }
}

/// Runs `range` through a single-task Acc bolt persisting into `dir`.
fn run_segment(
    range: std::ops::Range<u64>,
    dir: &PathBuf,
    reliability: Option<ReliabilityConfig>,
    batch: Option<BatchConfig>,
) {
    let (start, end) = (range.start, range.end);
    let t = TopologyBuilder::new("recovery")
        .add_spout("src", Parallelism::of(1), move |_| {
            Box::new(RangeSpout { next: start, end })
        })
        .add_bolt("acc", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(Acc { seen: 0, sum: 0.0, pending: Vec::new(), poison: None, restored_seen: None })
                as Box<dyn Bolt<u64>>
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        reliability,
        batch,
        durability: Some(DurabilityConfig {
            dir: dir.clone(),
            // Small enough that snapshots and compaction actually happen
            // mid-run, not only at EOS.
            snapshot_every: 64,
            fsync: false,
        }),
        ..RuntimeConfig::default()
    };
    cluster().submit(t, cfg).unwrap().join().unwrap();
}

/// The persisted end state of the Acc task in `dir` — after a clean EOS
/// this is exactly the final snapshot (the changelog was compacted away).
fn final_state(dir: &PathBuf) -> Vec<u8> {
    let cfg = DurabilityConfig { dir: dir.clone(), snapshot_every: 64, fsync: false };
    let mut store = StateStore::open(&cfg, "acc", 0).unwrap();
    let (snapshot, changelog) = store.take_recovered().expect("state must exist after a run");
    assert!(changelog.is_empty(), "EOS snapshot must have compacted the changelog");
    snapshot.expect("EOS must leave a snapshot")
}

/// Tentpole acceptance: kill-and-restart (here: drain, then resubmit the
/// rest of the stream against the same durability directory) ends in
/// state byte-identical to the uninterrupted run — across both delivery
/// modes and both data planes.
#[test]
fn resumed_run_is_byte_identical_to_uninterrupted() {
    let combos: [(&str, Option<ReliabilityConfig>, Option<BatchConfig>); 4] = [
        ("amo", None, None),
        ("amo-batched", None, Some(BatchConfig::default())),
        ("alo", Some(fast_reliability()), None),
        ("alo-batched", Some(fast_reliability()), Some(BatchConfig::default())),
    ];
    for (tag, reliability, batch) in combos {
        let full_dir = tmp_dir(&format!("full-{tag}"));
        run_segment(0..1000, &full_dir, reliability, batch);
        let expected = final_state(&full_dir);

        let split_dir = tmp_dir(&format!("split-{tag}"));
        run_segment(0..400, &split_dir, reliability, batch);
        run_segment(400..1000, &split_dir, reliability, batch);
        let resumed = final_state(&split_dir);

        assert_eq!(
            resumed, expected,
            "[{tag}] resumed state must be byte-identical to the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&full_dir);
        let _ = std::fs::remove_dir_all(&split_dir);
    }
}

/// A mid-stream snapshotless interruption: state left as snapshot +
/// changelog tail (no clean EOS compaction) must replay to the same
/// state. Simulated by appending changelog records through the store API
/// directly, as a crashed run would have left them.
#[test]
fn changelog_tail_replays_into_restored_state() {
    let dir = tmp_dir("tail");
    let cfg = DurabilityConfig { dir: dir.clone(), snapshot_every: 1 << 30, fsync: false };
    {
        // A "crashed" first run: 300 records appended, never snapshotted.
        let mut store = StateStore::open(&cfg, "acc", 0).unwrap();
        for v in 0..300u64 {
            store.append(&v.to_le_bytes()).unwrap();
        }
    }
    // Resume: the bolt must fold the replayed tail before new tuples.
    run_segment(300..1000, &dir, None, None);
    let got = final_state(&dir);

    let full_dir = tmp_dir("tail-full");
    run_segment(0..1000, &full_dir, None, None);
    let expected = final_state(&full_dir);

    assert_eq!(got, expected, "changelog replay must reconstruct the pre-crash state exactly");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&full_dir);
}

/// Satellite acceptance: a supervised post-panic restart restores the
/// task's persisted state — the old factory re-invocation restarted it
/// empty, silently dropping everything accumulated before the panic.
#[test]
fn supervised_restart_restores_persisted_state() {
    let dir = tmp_dir("restart");
    let fired = Arc::new(AtomicBool::new(false));
    let restored_seen = Arc::new(AtomicU64::new(u64::MAX));
    let (f, r) = (fired.clone(), restored_seen.clone());
    let t = TopologyBuilder::new("recovery")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 1000 }))
        .add_bolt("acc", Parallelism::of(1), vec![("src", Grouping::Shuffle)], move |_| {
            Box::new(Acc {
                seen: 0,
                sum: 0.0,
                pending: Vec::new(),
                poison: Some((700, f.clone())),
                restored_seen: Some(r.clone()),
            }) as Box<dyn Bolt<u64>>
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        reliability: Some(fast_reliability()),
        durability: Some(DurabilityConfig {
            dir: dir.clone(),
            snapshot_every: 64,
            fsync: false,
        }),
        ..RuntimeConfig::default()
    };
    let handle = cluster().submit(t, cfg).unwrap();
    let metrics = handle.metrics().clone();
    handle.join().unwrap();
    assert!(fired.load(Ordering::SeqCst), "the poisoned tuple must have panicked once");
    let totals = metrics.totals();
    let acc = totals.iter().find(|c| c.component == "acc").unwrap();
    assert_eq!(acc.restarted, 1, "exactly one supervised restart");

    // The restart restored real state: tuple 700 panicked, so at least
    // the 700 tuples before it (and possibly a few delivered after) were
    // already folded when the supervisor rebuilt the task.
    let restored = restored_seen.load(Ordering::SeqCst);
    assert!(
        restored >= 700 && restored < 1000,
        "restart must restore the pre-panic state, got seen={restored}"
    );

    // And nothing was lost or double-counted: the poisoned tuple replays
    // (it was never acked), everything else folds exactly once.
    let (snapshot, _) = {
        let cfg = DurabilityConfig { dir: dir.clone(), snapshot_every: 64, fsync: false };
        StateStore::open(&cfg, "acc", 0).unwrap().take_recovered().unwrap()
    };
    let s = snapshot.unwrap();
    let seen = u64::from_le_bytes(s[0..8].try_into().unwrap());
    let sum = f64::from_bits(u64::from_le_bytes(s[8..16].try_into().unwrap()));
    assert_eq!(seen, 1000, "every tuple folded exactly once despite the panic");
    let expected: f64 = (0..1000u64).map(|v| (v as f64).sqrt()).sum();
    assert!(
        (sum - expected).abs() < 1e-6,
        "sum must cover the full multiset (got {sum}, want ~{expected})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    /// Changelog robustness: however the tail is torn or corrupted, open
    /// recovers exactly the longest valid record prefix, truncates the
    /// rest, and appends cleanly afterwards.
    #[test]
    fn torn_or_corrupt_changelog_recovers_valid_prefix(
        records in prop::collection::vec(prop::collection::vec(0u8..=255, 0..40), 0..20),
        cut in 0usize..200,
        flip in prop::option::of((0usize..2000, 1u8..=255)),
    ) {
        let dir = tmp_dir("prop");
        let cfg = DurabilityConfig { dir: dir.clone(), snapshot_every: 1 << 30, fsync: false };
        {
            let mut store = StateStore::open(&cfg, "acc", 0).unwrap();
            for r in &records {
                store.append(r).unwrap();
            }
        }
        let log = dir.join("acc-0/changelog.bin");
        let mut bytes = std::fs::read(&log).unwrap();
        // Tear: drop `cut` bytes off the tail (capped at the file size).
        let torn_len = bytes.len().saturating_sub(cut);
        bytes.truncate(torn_len);
        // Corrupt: XOR one byte somewhere in what remains.
        if let Some((pos, mask)) = flip {
            if !bytes.is_empty() {
                let p = pos % bytes.len();
                bytes[p] ^= mask;
            }
        }
        std::fs::write(&log, &bytes).unwrap();

        // The reference: decode the valid prefix of the damaged bytes.
        let (expected, _) = read_frames(&bytes);

        let mut store = StateStore::open(&cfg, "acc", 0).unwrap();
        let recovered = store.take_recovered().map(|(_, l)| l).unwrap_or_default();
        prop_assert_eq!(&recovered, &expected);
        prop_assert!(recovered.len() <= records.len());
        // Every recovered record is a prefix of the originals, in order,
        // except possibly one corrupted-in-place record that still
        // checksums — impossible: CRC mismatch drops it. So strict prefix
        // unless the flip hit bytes past the valid prefix.
        // Appends after recovery land on a clean boundary:
        store.append(b"after-recovery").unwrap();
        drop(store);
        let mut store = StateStore::open(&cfg, "acc", 0).unwrap();
        let (_, recs) = store.take_recovered().unwrap();
        prop_assert_eq!(recs.last().map(|r| r.as_slice()), Some(&b"after-recovery"[..]));
        prop_assert_eq!(recs.len(), expected.len() + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
