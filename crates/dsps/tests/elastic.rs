//! Elastic re-partitioning acceptance suite: the closed control loop over
//! the DSPS runtime, driven through the traffic system built on top of it.
//!
//! The scenarios follow the same pattern: bootstrap from a spatially
//! uniform history (so the start-up plan balances for uniformity), then
//! replay a *hotspot* live stream that concentrates most traffic on
//! regions the plan gave to one engine. The rebalancer must notice the
//! imbalance, re-run the partitioning on observed rates, and migrate rule
//! partitions between live engines — no topology restart, and (without
//! faults) exactly the detections a never-migrated run produces.

use std::collections::BTreeSet;
use std::time::Duration;
use tms_core::rules::LocationSelector;
use tms_core::system::StartupPlan;
use tms_core::topology::TopologyParallelism;
use tms_core::{ElasticConfig, RuleSpec, TrafficSystem};
use tms_geo::{GeoPoint, RegionId, DUBLIN_BBOX};
use tms_sim::HotspotSpec;
use tms_traffic::{Attribute, BusTrace, FleetConfig, FleetGenerator, DAY_MS, HOUR_MS};

const IMBALANCE_BOUND: f64 = 1.5;

fn aggressive_elastic() -> ElasticConfig {
    ElasticConfig {
        imbalance_bound: IMBALANCE_BOUND,
        check_interval: Duration::from_millis(40),
        cooldown: Duration::from_millis(80),
        drain_timeout: Duration::from_secs(2),
        max_moves_per_cycle: 8,
        min_observed: 100,
    }
}

fn multi_task_parallelism() -> TopologyParallelism {
    // Multi-task stages are safe for the differential scenarios: the
    // offline job reduces partial aggregates in canonical partition order
    // (byte-identical thresholds at any task count) and the splitter
    // resequences tuples into the spout's global order before the engines.
    // The splitter itself stays single-task — the elastic drain barrier's
    // FIFO argument needs one routing task.
    TopologyParallelism {
        spout_tasks: 2,
        preprocess_tasks: 2,
        tracker_tasks: 2,
        splitter_tasks: 1,
        esper_tasks: 1, // overridden by the engine count at run time
    }
}

fn small_history() -> (Vec<BusTrace>, Vec<GeoPoint>) {
    let g = FleetGenerator::new(FleetConfig::small(17), 0).unwrap();
    let seeds = g.route_seed_points();
    let traces: Vec<BusTrace> = g.take_while(|t| t.timestamp_ms < 9 * HOUR_MS).collect();
    (traces, seeds)
}

fn leaves_rule() -> Vec<RuleSpec> {
    let mut rule =
        RuleSpec::new("delay-leaves", Attribute::Delay, LocationSelector::QuadtreeLeaves, 10);
    rule.s = 0.5;
    vec![rule]
}

/// Day-1 live traffic with an incident (so runs produce detections).
fn live_stream() -> Vec<BusTrace> {
    let cfg = FleetConfig::small(17);
    let probe = FleetGenerator::new(cfg.clone(), 1).unwrap();
    let center = probe.routes()[0].points[probe.routes()[0].points.len() / 2];
    let incident = tms_traffic::Incident {
        center,
        radius_m: 1500.0,
        start_ms: DAY_MS + 7 * HOUR_MS,
        end_ms: DAY_MS + 9 * HOUR_MS,
        severity: 0.03,
    };
    FleetGenerator::with_incidents(cfg, 1, vec![incident])
        .unwrap()
        .take_while(|t| t.timestamp_ms < DAY_MS + 9 * HOUR_MS)
        .collect()
}

/// Regions the start-up plan routed to the grouping's first engine, with
/// a GPS point inside each — the hotspot targets. Concentrating the live
/// stream on them makes engine 0 the hot engine by construction, whatever
/// the (history-balanced) plan decided.
fn hotspot_targets(sys: &TrafficSystem, plan: &StartupPlan, max: usize) -> Vec<GeoPoint> {
    let quadtree = &sys.artifacts.spatial.quadtree;
    let route = &plan.split_plan.routes[0];
    let mut regions: Vec<&String> =
        route.table.iter().filter(|(_, &e)| e == 0).map(|(r, _)| r).collect();
    regions.sort();
    regions
        .iter()
        .take(max)
        .filter_map(|r| {
            let id: u32 = r.strip_prefix('R')?.parse().ok()?;
            Some(quadtree.region(RegionId(id))?.bbox.center())
        })
        .collect()
}

/// Rewrites the stream so `hot_share` of the tuples land on the hotspot
/// targets (deterministically, via [`HotspotSpec::pick`]); the rest keep
/// their original (uniform) positions.
fn skew_stream(live: Vec<BusTrace>, targets: &[GeoPoint]) -> Vec<BusTrace> {
    let spec = HotspotSpec { hot_share: 0.8, hot_regions: targets.len(), total_rate: 1000.0 };
    let slots = targets.len() + 1; // the extra slot keeps the original position
    live.into_iter()
        .enumerate()
        .map(|(i, mut t)| {
            let slot = spec.pick(i, slots);
            if slot < targets.len() {
                t.position = targets[slot];
            }
            t
        })
        .collect()
}

fn sorted_detections(report: &tms_core::system::RunReport) -> Vec<(String, String, u64)> {
    let mut out: Vec<(String, String, u64)> = report
        .detections
        .iter()
        .map(|d| (d.rule.clone(), d.location.clone(), d.timestamp_ms))
        .collect();
    out.sort();
    out
}

/// Tentpole acceptance: a hotspot stream drives the observed imbalance
/// over the bound; the rebalancer migrates partitions between the live
/// engines and plans the load back under the bound — without a topology
/// restart.
#[test]
fn hotspot_skew_triggers_rebalance_without_restart() {
    let (history, seeds) = small_history();
    let config = tms_core::system::SystemConfig {
        parallelism: multi_task_parallelism(),
        elastic: Some(aggressive_elastic()),
        ..Default::default()
    };
    let sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
    let plan = sys.startup_plan(&leaves_rule(), 2).unwrap();
    let targets = hotspot_targets(&sys, &plan, 4);
    assert!(targets.len() >= 2, "need at least two movable hot regions, got {}", targets.len());
    let live = skew_stream(live_stream(), &targets);

    let report = sys.run(live, &plan, None).unwrap();
    let stats = report.elastic.expect("elastic run reports migration stats");
    assert!(stats.decisions >= 1, "the hotspot must trigger a rebalance: {stats:?}");
    assert!(stats.completed >= 1, "at least one migration must complete: {stats:?}");
    assert!(
        stats.post_imbalance <= IMBALANCE_BOUND,
        "the re-planned assignment must fall under the bound: {stats:?}"
    );
    assert!(
        stats.cycles_to_converge.is_some() || stats.observed_imbalance <= IMBALANCE_BOUND,
        "the observed imbalance must come back under the bound: {stats:?}"
    );
    assert!(stats.last_pause_ms >= 0.0 && stats.max_pause_ms >= stats.last_pause_ms);
    // No topology restart: migrations happen on the live engines.
    for m in &report.metrics {
        assert_eq!(m.restarted, 0, "{} must not restart during rebalancing", m.component);
    }
}

/// Differential acceptance: with no faults injected, a run that migrates
/// partitions mid-stream detects *exactly* what a never-migrated run
/// detects — the handoff ships window, accumulator, and threshold state
/// losslessly.
#[test]
fn forced_migration_matches_never_migrated_run() {
    let (history, seeds) = small_history();
    let config = tms_core::system::SystemConfig {
        parallelism: multi_task_parallelism(),
        ..Default::default()
    };
    let mut sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
    let plan = sys.startup_plan(&leaves_rule(), 2).unwrap();
    let targets = hotspot_targets(&sys, &plan, 4);
    assert!(targets.len() >= 2, "need at least two movable hot regions");
    let live = skew_stream(live_stream(), &targets);

    let baseline = sys.run(live.clone(), &plan, None).unwrap();
    assert!(baseline.elastic.is_none(), "baseline runs without the rebalancer");

    sys.config.elastic = Some(aggressive_elastic());
    let migrated = sys.run(live, &plan, None).unwrap();
    let stats = migrated.elastic.expect("elastic stats");
    assert!(stats.completed >= 1, "the hotspot must force at least one migration: {stats:?}");

    let expected = sorted_detections(&baseline);
    let got = sorted_detections(&migrated);
    assert!(!expected.is_empty(), "the incident must trigger detections");
    assert_eq!(got, expected, "migration must not change what the system detects");
}

/// Chaos acceptance: migrations under 1% injected panics + 1% transport
/// drops with at-least-once recovery. No root may fail, the migration
/// machinery must actually run, and after deduplication the detections
/// must largely agree with a failure-free elastic run (replays duplicate
/// window insertions, so borderline crossings may shift — exact equality
/// is not achievable under at-least-once).
#[test]
fn chaos_migration_run_recovers_and_matches_after_dedup() {
    let (history, seeds) = small_history();
    let config = tms_core::system::SystemConfig {
        parallelism: multi_task_parallelism(),
        elastic: Some(aggressive_elastic()),
        ..Default::default()
    };
    let mut sys = TrafficSystem::bootstrap(DUBLIN_BBOX, &seeds, &history, config).unwrap();
    let plan = sys.startup_plan(&leaves_rule(), 2).unwrap();
    let targets = hotspot_targets(&sys, &plan, 4);
    let live = skew_stream(live_stream(), &targets);

    let clean = sys.run(live.clone(), &plan, None).unwrap();
    assert!(clean.elastic.expect("elastic stats").completed >= 1);

    sys.config.reliability = Some(tms_dsps::ReliabilityConfig {
        ack_timeout: Duration::from_millis(500),
        max_retries: 20,
        backoff: 1.5,
        max_pending: 256,
        max_task_restarts: 1000,
    });
    sys.config.chaos = Some(tms_dsps::FaultConfig {
        panic_p: 0.01,
        drop_p: 0.01,
        delay: None,
        seed: 0x7EA_5EED,
    });
    // Sample every tuple tree: the chaos run must yield complete lineage
    // traces even across restarts, replays and live migrations.
    sys.config.monitor = Some(tms_dsps::MonitorConfig {
        window: Duration::from_millis(200),
        tracing: true,
        // Sample everything, with rings sized so the startup burst
        // cannot overflow them between monitor drains (a dropped span
        // orphans its children and fails the connectivity bar below).
        lineage: Some(tms_dsps::LineageConfig {
            ring_capacity: 1 << 17,
            ..tms_dsps::LineageConfig::full()
        }),
        ..tms_dsps::MonitorConfig::default()
    });
    let chaotic = sys.run(live, &plan, None).unwrap();
    let stats = chaotic.elastic.expect("elastic stats");
    assert!(
        stats.completed + stats.aborted >= 1,
        "the migration machinery must be exercised under faults: {stats:?}"
    );
    let reader = chaotic
        .metrics
        .iter()
        .find(|m| m.component == "busReader")
        .expect("spout metrics present");
    assert!(reader.acked > 0, "reliability was on: roots must be acked");
    assert_eq!(reader.failed, 0, "no root may exhaust its replay budget");
    assert!(!chaotic.detections.is_empty(), "detections must survive the faults");

    // Chaos observability: recovery kept pace with the injections.
    let injected_panics: u64 = chaotic.metrics.iter().map(|m| m.injected_panics).sum();
    let restarted: u64 = chaotic.metrics.iter().map(|m| m.restarted).sum();
    assert!(injected_panics > 0, "the chaos schedule must have fired panics");
    assert!(
        restarted >= injected_panics,
        "restarts ({restarted}) must cover injected panics ({injected_panics})"
    );

    // Lineage completeness under adversity: trees assemble connected, at
    // least one crosses a restart via a replay span, and the run's flight
    // recorder shows the control-plane activity (restarts + migrations)
    // those trees lived through.
    assert!(
        chaotic.events.iter().any(|e| e.kind == tms_dsps::FlightKind::TaskRestart),
        "restarts must land in the flight recorder"
    );
    assert!(
        chaotic.events.iter().any(|e| e.kind == tms_dsps::FlightKind::MigrationCompleted),
        "completed migrations must land in the flight recorder"
    );
    let summaries = tms_dsps::lineage::summarize(&chaotic.traces);
    assert!(!summaries.is_empty(), "sampled spans must have been exported");
    let path = chaotic.critical_path.as_ref().expect("lineage run attributes the critical path");
    assert_eq!(path.dropped_spans, 0, "rings sized for the run must not drop spans");
    let connected = summaries.iter().filter(|s| s.connected).count();
    assert_eq!(
        connected,
        summaries.len(),
        "every sampled tree must assemble connected under chaos + migration"
    );
    assert!(
        summaries.iter().any(|s| s.replays > 0),
        "at least one tree must cross a restart via a replay span"
    );
    assert!(path.traces > 0 && path.bottleneck.is_some());
    assert!(
        path.components.iter().any(|c| c.component == "esper"),
        "the engines must appear in the attribution: {path:?}"
    );

    // The adversity-crossing trees must survive export: render the run's
    // spans as Chrome trace_event JSON and check the interesting content
    // made it through (grammar-level validation of the same renderer
    // lives in the lineage suite).
    let chrome =
        tms_dsps::lineage::render_chrome_trace(&chaotic.traces, &chaotic.trace_components);
    assert!(chrome.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(chrome.ends_with("]}"));
    assert!(chrome.contains("\"name\":\"esper\""), "engine tasks must be named threads");
    assert!(chrome.contains(":replay\""), "the replayed hops must appear in the export");
    assert!(chrome.contains(":spout_emit\"") && chrome.contains(":process\""));
    assert!(!chrome.contains("\"?:"), "every exported span's task must resolve to a component");

    // Replays duplicate window insertions, which inflates aggregates and
    // fires *extra* borderline crossings at new timestamps. So: the
    // failure-free detections must survive (timestamp-level recall), and
    // the *places* flagged must agree in both directions — duplicates
    // shift when a crossing fires, not where congestion is.
    let clean_set: BTreeSet<_> = sorted_detections(&clean).into_iter().collect();
    let chaos_set: BTreeSet<_> = sorted_detections(&chaotic).into_iter().collect();
    let overlap = clean_set.intersection(&chaos_set).count() as f64;
    let recall = overlap / clean_set.len() as f64;
    assert!(
        recall >= 0.5,
        "deduped detections must retain the failure-free run's events \
         (recall {recall:.2}, clean {}, chaos {})",
        clean_set.len(),
        chaos_set.len()
    );
    let places = |set: &BTreeSet<(String, String, u64)>| -> BTreeSet<(String, String)> {
        set.iter().map(|(r, l, _)| (r.clone(), l.clone())).collect()
    };
    let clean_places = places(&clean_set);
    let chaos_places = places(&chaos_set);
    let place_overlap = clean_places.intersection(&chaos_places).count() as f64;
    let place_recall = place_overlap / clean_places.len() as f64;
    let place_precision = place_overlap / chaos_places.len() as f64;
    assert!(
        place_recall >= 0.5 && place_precision >= 0.5,
        "the flagged locations must largely agree \
         (recall {place_recall:.2}, precision {place_precision:.2})"
    );
}
