//! Acceptance suite for the causal observability layer: sampled
//! tuple-lineage traces that assemble into connected trees (even across
//! restarts and replays), critical-path attribution that names the real
//! bottleneck, the control-plane flight recorder, and the `/trace` +
//! `/events` exposition routes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tms_dsps::lineage::summarize;
use tms_dsps::runtime::RuntimeConfig;
use tms_dsps::{
    Bolt, Emitter, FlightKind, Grouping, LineageConfig, LocalCluster, MonitorConfig, Parallelism,
    ReliabilityConfig, SpanKind, Spout, TopologyBuilder,
};

#[derive(Clone)]
struct Msg {
    value: u64,
}

struct RangeSpout {
    next: u64,
    end: u64,
}

impl Spout<Msg> for RangeSpout {
    fn next(&mut self) -> Option<Msg> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        Some(Msg { value: v })
    }
}

struct Forward;
impl Bolt<Msg> for Forward {
    fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
        e.emit(msg);
    }
}

struct NullSink;
impl Bolt<Msg> for NullSink {
    fn process(&mut self, _msg: Msg, _e: &mut dyn Emitter<Msg>) {}
}

/// A deliberately throttled relay: sleeps before forwarding, so it must
/// come out of the critical-path report as the bottleneck.
struct Throttled {
    delay: Duration,
}
impl Bolt<Msg> for Throttled {
    fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
        std::thread::sleep(self.delay);
        e.emit(msg);
    }
}

fn cluster() -> LocalCluster {
    LocalCluster::new(tms_dsps::scheduler::ClusterSpec {
        nodes: 2,
        slots_per_node: 2,
        cores_per_node: 2,
    })
    .unwrap()
}

/// Tracing + sample-everything lineage, long window (flush-only).
fn lineage_monitor() -> Option<MonitorConfig> {
    Some(MonitorConfig {
        window: Duration::from_secs(3600),
        tracing: true,
        lineage: Some(LineageConfig::full()),
        ..MonitorConfig::default()
    })
}

// ---- A minimal JSON well-formedness checker -------------------------------
// The vendored serde_json is render-only, so the exported Chrome trace is
// validated with a tiny recursive-descent parser: strict enough to catch
// unbalanced brackets, bad escapes, trailing commas and bare tokens.

fn json_value(b: &[u8], mut i: usize) -> Result<usize, String> {
    i = skip_ws(b, i);
    match b.get(i) {
        Some(b'{') => {
            i = skip_ws(b, i + 1);
            if b.get(i) == Some(&b'}') {
                return Ok(i + 1);
            }
            loop {
                i = json_string(b, skip_ws(b, i))?;
                i = skip_ws(b, i);
                if b.get(i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                i = json_value(b, i + 1)?;
                i = skip_ws(b, i);
                match b.get(i) {
                    Some(b',') => i += 1,
                    Some(b'}') => return Ok(i + 1),
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            i = skip_ws(b, i + 1);
            if b.get(i) == Some(&b']') {
                return Ok(i + 1);
            }
            loop {
                i = json_value(b, i)?;
                i = skip_ws(b, i);
                match b.get(i) {
                    Some(b',') => i += 1,
                    Some(b']') => return Ok(i + 1),
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => json_string(b, i),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = i;
            while b.get(i).is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                i += 1;
            }
            let tok = std::str::from_utf8(&b[start..i]).unwrap_or("");
            tok.parse::<f64>().map_err(|_| format!("bad number {tok:?} at byte {start}"))?;
            Ok(i)
        }
        _ => {
            for lit in ["true", "false", "null"] {
                if b[i..].starts_with(lit.as_bytes()) {
                    return Ok(i + lit.len());
                }
            }
            Err(format!("unexpected token at byte {i}"))
        }
    }
}

fn json_string(b: &[u8], i: usize) -> Result<usize, String> {
    if b.get(i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    let mut i = i + 1;
    loop {
        match b.get(i) {
            Some(b'"') => return Ok(i + 1),
            Some(b'\\') => {
                match b.get(i + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                    Some(b'u') => i += 6,
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            Some(_) => i += 1,
            None => return Err("unterminated string".into()),
        }
    }
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while b.get(i).is_some_and(|c| c.is_ascii_whitespace()) {
        i += 1;
    }
    i
}

fn assert_valid_json(s: &str) {
    let b = s.as_bytes();
    match json_value(b, 0) {
        Ok(end) => assert_eq!(
            skip_ws(b, end),
            b.len(),
            "trailing garbage after JSON document: {:?}",
            &s[end.min(s.len())..]
        ),
        Err(e) => panic!("invalid JSON ({e}):\n{s}"),
    }
}

// ---------------------------------------------------------------------------

#[test]
fn lineage_off_leaves_no_collector_and_trace_route_dark() {
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 2000 }))
        .add_bolt("sink", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(NullSink)
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        monitor: Some(MonitorConfig {
            window: Duration::from_millis(50),
            tracing: true,
            expose: Some(0),
            ..MonitorConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let handle = cluster().submit(t, cfg).unwrap();
    assert!(handle.trace_collector().is_none(), "lineage stays opt-in");
    assert!(handle.take_traces().is_empty());

    let addr = handle.scrape_addr().expect("expose binds");
    let get = |path: &str| -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    let trace = get("/trace");
    assert!(trace.starts_with("HTTP/1.1 404"), "{trace}");
    assert!(trace.contains("lineage tracing is off"), "{trace}");
    let missing = get("/definitely-not-a-route");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    for route in ["/metrics", "/json", "/trace", "/trace.jsonl", "/events"] {
        assert!(missing.contains(route), "404 must index route {route}:\n{missing}");
    }
    // The flight recorder is always on, even without lineage.
    let events = get("/events");
    assert!(events.starts_with("HTTP/1.1 200"), "{events}");

    handle.join().unwrap();
}

#[test]
fn critical_path_names_the_throttled_bolt_as_bottleneck() {
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 400 }))
        .add_bolt("relay", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(Forward)
        })
        .add_bolt("throttled", Parallelism::of(1), vec![("relay", Grouping::Shuffle)], |_| {
            Box::new(Throttled { delay: Duration::from_micros(500) })
        })
        .add_bolt("sink", Parallelism::of(1), vec![("throttled", Grouping::Shuffle)], |_| {
            Box::new(NullSink)
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig { monitor: lineage_monitor(), ..RuntimeConfig::default() };
    let handle = cluster().submit(t, cfg).unwrap();
    let collector = handle.trace_collector().expect("lineage on").clone();
    handle.join().unwrap();

    let report = collector.critical_path();
    assert_eq!(report.traces, 400, "sample_rate 1.0 samples every tree");
    assert_eq!(report.completed, 400, "at-most-once completion lands at the sink");
    assert_eq!(report.dropped_spans, 0, "rings must be big enough for this run");
    assert_eq!(
        report.bottleneck.as_deref(),
        Some("throttled"),
        "the deliberately throttled bolt must be attributed: {report:?}"
    );
    assert_eq!(report.components[0].component, "throttled", "components sort bottleneck-first");
    let of = |name: &str| report.components.iter().find(|c| c.component == name).unwrap();
    assert!(
        of("throttled").compute_ns > of("relay").compute_ns,
        "sleep time must dominate the relay's forwarding: {report:?}"
    );
    assert!(of("throttled").tuples == 400 && of("relay").tuples == 400);
    assert!(!report.edges.is_empty(), "per-edge queue waits must be attributed");
    assert!(
        report.edges.iter().any(|e| e.from == "relay" && e.to == "throttled"),
        "the congested edge must appear: {:?}",
        report.edges
    );

    // Every sampled tree assembled into one connected tree.
    let summaries = collector.summaries();
    assert_eq!(summaries.len(), 400);
    for s in &summaries {
        assert!(s.connected, "tree {s:?} must have one root and no orphans");
        assert!(s.spans >= 5, "spout emit + 3 hops (queue+process) + completion: {s:?}");
    }

    // Both exports are well-formed.
    let chrome = collector.render_chrome_json();
    assert_valid_json(&chrome);
    assert!(chrome.contains("\"traceEvents\""), "chrome trace envelope");
    assert!(chrome.contains("\"thread_name\""), "task naming metadata");
    assert!(chrome.contains("\"process\""), "span kind names exported");
    for line in collector.render_jsonl().lines() {
        assert_valid_json(line);
    }
}

#[test]
fn adversity_trees_stay_connected_across_restart_and_replay() {
    // The bolt panics the first time it sees value 7: the supervisor
    // restarts the task and the spout replays the tuple. With every tree
    // sampled, the replayed tree must still assemble connected — the
    // replay span re-parents the second attempt onto the first.
    let tripped = Arc::new(AtomicBool::new(false));
    struct OnceBomb {
        tripped: Arc<AtomicBool>,
    }
    impl Bolt<Msg> for OnceBomb {
        fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
            if msg.value == 7 && !self.tripped.swap(true, Ordering::SeqCst) {
                panic!("first 7 is fatal");
            }
            e.emit(msg);
        }
    }
    let tripped_f = tripped.clone();
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 50 }))
        .add_bolt("bomb", Parallelism::of(1), vec![("src", Grouping::Shuffle)], move |_| {
            Box::new(OnceBomb { tripped: tripped_f.clone() })
        })
        .add_bolt("sink", Parallelism::of(2), vec![("bomb", Grouping::Shuffle)], |_| {
            Box::new(NullSink)
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        monitor: lineage_monitor(),
        reliability: Some(ReliabilityConfig {
            ack_timeout: Duration::from_millis(100),
            max_retries: 10,
            backoff: 1.5,
            ..ReliabilityConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let handle = cluster().submit(t, cfg).unwrap();
    let collector = handle.trace_collector().expect("lineage on").clone();
    let flight = handle.flight_recorder().clone();
    handle.join().unwrap();

    assert!(tripped.load(Ordering::SeqCst), "the bomb must have gone off");
    assert!(
        !flight.events_of(FlightKind::TaskRestart).is_empty(),
        "the restart must land in the flight recorder: {:?}",
        flight.events()
    );
    assert!(
        !flight.events_of(FlightKind::Eos).is_empty(),
        "the spout's EOS must land in the flight recorder"
    );

    let spans = collector.take_spans();
    assert!(spans.iter().any(|s| s.kind == SpanKind::Replay), "the replay must be traced");
    let summaries = summarize(&spans);
    assert_eq!(summaries.len(), 50, "every root was sampled");
    for s in &summaries {
        assert!(s.connected, "adversity must not orphan tree {s:?}");
    }
    let replayed: Vec<_> = summaries.iter().filter(|s| s.replays > 0).collect();
    assert!(
        !replayed.is_empty(),
        "at least one tree crosses the restart via a replay span"
    );
    // Chrome export still well-formed after the adversity run (spans were
    // taken above, so re-render from a fresh drain of whatever remains).
    assert_valid_json(&collector.render_chrome_json());
}

#[test]
fn scrape_routes_serve_concurrently_and_survive_hanging_clients() {
    struct SlowSink;
    impl Bolt<Msg> for SlowSink {
        fn process(&mut self, _msg: Msg, _e: &mut dyn Emitter<Msg>) {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    let t = TopologyBuilder::new("t")
        .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 8000 }))
        .add_bolt("sink", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(SlowSink)
        })
        .build()
        .unwrap();
    let cfg = RuntimeConfig {
        monitor: Some(MonitorConfig {
            window: Duration::from_millis(50),
            tracing: true,
            expose: Some(0),
            lineage: Some(LineageConfig::full()),
            ..MonitorConfig::default()
        }),
        ..RuntimeConfig::default()
    };
    let handle = cluster().submit(t, cfg).unwrap();
    let addr = handle.scrape_addr().expect("expose binds");

    // A client that connects and never sends a request: the 500 ms read
    // timeout must cut it off instead of wedging the monitor thread.
    let hang = TcpStream::connect(addr).expect("hang client connects");

    let started = Instant::now();
    let workers: Vec<_> = ["/metrics", "/json", "/trace", "/trace.jsonl", "/events"]
        .into_iter()
        .map(|path| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
                let mut out = String::new();
                s.read_to_string(&mut out).unwrap();
                (path, out)
            })
        })
        .collect();
    for w in workers {
        let (path, resp) = w.join().unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "{path} mid-run:\n{resp}");
        match path {
            "/trace" => assert!(resp.contains("\"traceEvents\""), "{resp}"),
            "/trace.jsonl" => assert!(resp.contains("application/jsonl"), "{resp}"),
            "/events" => assert!(resp.contains("\"events\""), "{resp}"),
            _ => {}
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "a hanging client must not wedge the scrape loop"
    );
    drop(hang);
    let collector = handle.trace_collector().expect("lineage on").clone();
    handle.join().unwrap();

    // Post-run: the collector still serves a full export.
    let report = collector.critical_path();
    assert!(report.traces > 0 && report.completed > 0);
    assert_eq!(report.bottleneck.as_deref(), Some("sink"));
}
