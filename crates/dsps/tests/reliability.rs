//! Chaos integration tests for the at-least-once reliability layer.
//!
//! The acceptance bar: with seeded probabilistic panics and message drops
//! injected, a topology running with recovery enabled must produce — after
//! deduplication — exactly the output of a failure-free run. With recovery
//! disabled the same faults must fail fast.

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;
use tms_dsps::runtime::{LocalCluster, ReliabilityConfig, RuntimeConfig};
use tms_dsps::scheduler::ClusterSpec;
use tms_dsps::topology::{Parallelism, TopologyBuilder};
use tms_dsps::{chaos_wrap, Bolt, BoltContext, DspsError, Emitter, FaultConfig, Grouping, Spout};

const TUPLES: u64 = 1000;

#[derive(Clone)]
struct Msg {
    key: u64,
    value: u64,
}

struct RangeSpout {
    next: u64,
    end: u64,
}
impl Spout<Msg> for RangeSpout {
    fn next(&mut self) -> Option<Msg> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        Some(Msg { key: v % 13, value: v })
    }
}

/// The pipeline under test: 2 spout tasks → 2 transform tasks → 1 sink.
/// `fault` wraps the transform in a `ChaosBolt` (panics) and arms
/// transport drops; `reliability` arms the acker/replay/supervisor.
fn run_pipeline(
    reliability: Option<ReliabilityConfig>,
    fault: Option<FaultConfig>,
) -> (Result<Arc<tms_dsps::MetricsHub>, DspsError>, Vec<u64>) {
    let collected: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    struct Sink {
        collected: Arc<Mutex<Vec<u64>>>,
    }
    impl Bolt<Msg> for Sink {
        fn prepare(&mut self, _ctx: BoltContext) {}
        fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
            self.collected.lock().push(msg.value);
        }
    }

    let transform = |_: usize| -> Box<dyn Bolt<Msg>> {
        struct Triple;
        impl Bolt<Msg> for Triple {
            fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
                e.emit(Msg { key: msg.key, value: msg.value * 3 });
            }
        }
        Box::new(Triple)
    };
    let chaotic: Box<dyn Fn(usize) -> Box<dyn Bolt<Msg>> + Send + Sync> = match fault {
        Some(f) => Box::new(chaos_wrap(transform, f)),
        None => Box::new(transform),
    };

    let sink_collected = collected.clone();
    let half = TUPLES / 2;
    let t = TopologyBuilder::new("chaos")
        .add_spout("src", Parallelism::of(2), move |ti| {
            Box::new(RangeSpout { next: ti as u64 * half, end: (ti as u64 + 1) * half })
        })
        .add_bolt("triple", Parallelism::of(2), vec![("src", Grouping::Shuffle)], move |ti| {
            chaotic(ti)
        })
        .add_bolt("sink", Parallelism::of(1), vec![("triple", Grouping::Shuffle)], move |_| {
            Box::new(Sink { collected: sink_collected.clone() }) as Box<dyn Bolt<Msg>>
        })
        .build()
        .unwrap();

    let cluster =
        LocalCluster::new(ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 2 }).unwrap();
    let cfg = RuntimeConfig { reliability, fault, ..RuntimeConfig::default() };
    let handle = cluster.submit(t, cfg).unwrap();
    let metrics = handle.metrics().clone();
    let result = handle.join().map(|_| metrics);
    let values = collected.lock().clone();
    (result, values)
}

fn chaos_faults() -> FaultConfig {
    FaultConfig {
        panic_p: 0.01,
        drop_p: 0.01,
        delay: None,
        seed: 0x7EA_5EED,
    }
}

fn recovery() -> ReliabilityConfig {
    ReliabilityConfig {
        ack_timeout: Duration::from_millis(250),
        max_retries: 20,
        backoff: 1.5,
        max_pending: 256,
        // Expected panics ≈ panic_p · tuples; give the supervisor ample
        // headroom so the run never exhausts a task's budget.
        max_task_restarts: 200,
    }
}

#[test]
fn chaos_run_with_recovery_matches_failure_free_run() {
    // Baseline: no faults, no reliability.
    let (baseline_result, baseline_values) = run_pipeline(None, None);
    baseline_result.expect("failure-free run must succeed");
    let baseline: BTreeSet<u64> = baseline_values.iter().copied().collect();
    assert_eq!(baseline.len() as u64, TUPLES, "baseline delivers everything exactly once");

    // Chaos: seeded panics + drops, recovery on.
    let (chaos_result, chaos_values) = run_pipeline(Some(recovery()), Some(chaos_faults()));
    let metrics = chaos_result.expect("recovery must absorb the injected faults");
    let deduped: BTreeSet<u64> = chaos_values.iter().copied().collect();
    assert_eq!(
        deduped, baseline,
        "after dedup, the chaos run must equal the failure-free run"
    );
    // At-least-once: duplicates are allowed, losses are not.
    assert!(chaos_values.len() as u64 >= TUPLES);

    let totals = metrics.totals();
    let src = totals.iter().find(|c| c.component == "src").unwrap();
    let triple = totals.iter().find(|c| c.component == "triple").unwrap();
    assert_eq!(src.acked, TUPLES, "every root eventually acked");
    assert_eq!(src.failed, 0, "no root may exhaust its replay budget");
    assert!(src.replayed > 0, "injected faults must have forced replays");
    assert!(triple.restarted > 0, "injected panics must have forced restarts");
    let dropped: u64 = totals.iter().map(|c| c.dropped).sum();
    assert!(dropped > 0, "injected drops must have been recorded");

    // Chaos observability: the runtime attributes every injection, and
    // recovery must have kept pace — restarts cover the injected panics,
    // and every injected drop also landed in the transit-loss counter.
    assert!(triple.injected_panics > 0, "the injection counter must see the panics");
    assert!(
        triple.restarted >= triple.injected_panics,
        "recovered restarts ({}) must cover injected panics ({})",
        triple.restarted,
        triple.injected_panics
    );
    let injected_drops: u64 = totals.iter().map(|c| c.injected_drops).sum();
    assert!(injected_drops > 0, "the injection counter must see the drops");
    assert!(
        dropped >= injected_drops,
        "transit losses ({dropped}) must include the injected drops ({injected_drops})"
    );
    assert_eq!(
        totals.iter().map(|c| c.injected_latency).sum::<u64>(),
        0,
        "no latency was injected in this scenario"
    );
}

#[test]
fn chaos_run_without_recovery_fails_fast() {
    let (result, _) = run_pipeline(None, Some(chaos_faults()));
    match result {
        Err(DspsError::TaskPanicked { component, reason, .. }) => {
            assert_eq!(component, "triple");
            assert!(reason.contains("chaos"), "the injected panic surfaces: {reason}");
        }
        Ok(_) => panic!("fail-fast mode must surface the injected panic"),
        Err(other) => panic!("expected TaskPanicked, got {other}"),
    }
}

#[test]
fn replay_after_timeout_delivers_exactly_the_missing_tuples() {
    // Drop-only chaos (no panics): every lost delivery must be healed by
    // an ack-timeout replay, and only the lost tuples are re-emitted in
    // any volume — the duplicate overhead stays bounded by the replay
    // count the spout reports.
    let faults = FaultConfig { panic_p: 0.0, drop_p: 0.02, delay: None, seed: 42 };
    let (result, values) = run_pipeline(Some(recovery()), Some(faults));
    let metrics = result.expect("drop-only chaos must be fully healed");
    let deduped: BTreeSet<u64> = values.iter().copied().collect();
    let expected: BTreeSet<u64> = (0..TUPLES).map(|v| v * 3).collect();
    assert_eq!(deduped, expected, "every tuple delivered at least once");

    let totals = metrics.totals();
    let src = totals.iter().find(|c| c.component == "src").unwrap();
    assert!(src.replayed > 0, "drops must have forced replays");
    assert_eq!(src.failed, 0);
    let triple = totals.iter().find(|c| c.component == "triple").unwrap();
    assert_eq!(triple.restarted, 0, "no panics were injected");
    assert_eq!(triple.injected_panics, 0, "drop-only chaos injects no panics");
    let injected_drops: u64 = totals.iter().map(|c| c.injected_drops).sum();
    assert!(injected_drops > 0, "drop injections must be attributed");
    assert!(
        src.replayed >= injected_drops / 2,
        "replays ({}) must keep pace with injected drops ({injected_drops})",
        src.replayed
    );
    // Each replay re-sends one root through the pipeline, so the sink
    // sees at most one extra copy per replay.
    assert!(
        (values.len() as u64) <= TUPLES + src.replayed,
        "sink duplicates ({}) exceed replay count ({})",
        values.len() as u64 - TUPLES,
        src.replayed
    );
}
