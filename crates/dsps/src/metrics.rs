//! Per-task metrics and the Nimbus-style monitor.
//!
//! Section 5 of the paper: "we enhanced Storm with an extra monitor thread
//! per worker processor, that periodically (every 40 seconds) reports
//! these metrics for each bolt's task to the Nimbus node. The Nimbus
//! aggregates these data to compute the final monitor metrics per bolt."
//!
//! Here every task owns a set of atomic counters ([`TaskCounters`]); the
//! [`MetricsHub`] plays Nimbus: on demand (or from a monitor thread with a
//! fixed window) it snapshots the counters and produces per-component
//! windows of the two metrics the evaluation reports — **throughput**
//! (tuples processed per window) and **average processing latency** per
//! tuple.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Atomic counters owned by one task.
#[derive(Debug, Default)]
pub struct TaskCounters {
    /// Tuples processed (bolts) or emitted (spouts).
    pub processed: AtomicU64,
    /// Tuples emitted downstream.
    pub emitted: AtomicU64,
    /// Cumulative processing time in nanoseconds.
    pub busy_ns: AtomicU64,
}

impl TaskCounters {
    /// Records the processing of one tuple that took `elapsed`.
    pub fn record(&self, elapsed: Duration) {
        self.processed.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one downstream emission.
    pub fn record_emit(&self) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Sampling window. The paper uses 40 s.
    pub window: Duration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { window: Duration::from_secs(40) }
    }
}

/// One sampled window for one component, aggregated over its tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentWindow {
    /// The component's name.
    pub component: String,
    /// Window start, relative to topology start.
    pub at: Duration,
    /// Tuples processed by all tasks during the window.
    pub throughput: u64,
    /// Average processing latency per tuple during the window, if any
    /// tuple was processed.
    pub avg_latency: Option<Duration>,
    /// Tuples emitted during the window.
    pub emitted: u64,
}

#[derive(Debug)]
struct TaskEntry {
    component: String,
    counters: Arc<TaskCounters>,
    last_processed: u64,
    last_emitted: u64,
    last_busy_ns: u64,
}

/// The Nimbus-side collector.
#[derive(Debug)]
pub struct MetricsHub {
    started: Instant,
    tasks: Mutex<Vec<TaskEntry>>,
    history: Mutex<Vec<ComponentWindow>>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        MetricsHub {
            started: Instant::now(),
            tasks: Mutex::new(Vec::new()),
            history: Mutex::new(Vec::new()),
        }
    }

    /// Registers a task's counters under its component name.
    pub fn register_task(&self, component: &str) -> Arc<TaskCounters> {
        let counters = Arc::new(TaskCounters::default());
        self.tasks.lock().push(TaskEntry {
            component: component.to_string(),
            counters: counters.clone(),
            last_processed: 0,
            last_emitted: 0,
            last_busy_ns: 0,
        });
        counters
    }

    /// Samples one window: per-component deltas since the previous sample.
    /// Appends to the history and returns the fresh windows.
    pub fn sample(&self) -> Vec<ComponentWindow> {
        let at = self.started.elapsed();
        let mut tasks = self.tasks.lock();
        // component → (throughput, emitted, busy_ns)
        let mut per_component: std::collections::BTreeMap<String, (u64, u64, u64)> =
            std::collections::BTreeMap::new();
        for t in tasks.iter_mut() {
            let processed = t.counters.processed.load(Ordering::Relaxed);
            let emitted = t.counters.emitted.load(Ordering::Relaxed);
            let busy = t.counters.busy_ns.load(Ordering::Relaxed);
            let entry = per_component.entry(t.component.clone()).or_default();
            entry.0 += processed - t.last_processed;
            entry.1 += emitted - t.last_emitted;
            entry.2 += busy - t.last_busy_ns;
            t.last_processed = processed;
            t.last_emitted = emitted;
            t.last_busy_ns = busy;
        }
        let windows: Vec<ComponentWindow> = per_component
            .into_iter()
            .map(|(component, (throughput, emitted, busy_ns))| ComponentWindow {
                component,
                at,
                throughput,
                emitted,
                avg_latency: busy_ns
                    .checked_div(throughput)
                    .map(Duration::from_nanos),
            })
            .collect();
        self.history.lock().extend(windows.iter().cloned());
        windows
    }

    /// Every window sampled so far.
    pub fn history(&self) -> Vec<ComponentWindow> {
        self.history.lock().clone()
    }

    /// Lifetime totals per component (independent of windows).
    pub fn totals(&self) -> Vec<ComponentWindow> {
        let at = self.started.elapsed();
        let tasks = self.tasks.lock();
        let mut per_component: std::collections::BTreeMap<String, (u64, u64, u64)> =
            std::collections::BTreeMap::new();
        for t in tasks.iter() {
            let entry = per_component.entry(t.component.clone()).or_default();
            entry.0 += t.counters.processed.load(Ordering::Relaxed);
            entry.1 += t.counters.emitted.load(Ordering::Relaxed);
            entry.2 += t.counters.busy_ns.load(Ordering::Relaxed);
        }
        per_component
            .into_iter()
            .map(|(component, (throughput, emitted, busy_ns))| ComponentWindow {
                component,
                at,
                throughput,
                emitted,
                avg_latency: busy_ns
                    .checked_div(throughput)
                    .map(Duration::from_nanos),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_report_deltas_not_totals() {
        let hub = MetricsHub::new();
        let c = hub.register_task("esper");
        c.record(Duration::from_millis(2));
        c.record(Duration::from_millis(4));
        let w1 = hub.sample();
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].throughput, 2);
        assert_eq!(w1[0].avg_latency, Some(Duration::from_millis(3)));
        // Second window with no work: throughput 0, no latency.
        let w2 = hub.sample();
        assert_eq!(w2[0].throughput, 0);
        assert_eq!(w2[0].avg_latency, None);
        // One more tuple appears only in the third window.
        c.record(Duration::from_millis(6));
        let w3 = hub.sample();
        assert_eq!(w3[0].throughput, 1);
        assert_eq!(w3[0].avg_latency, Some(Duration::from_millis(6)));
    }

    #[test]
    fn tasks_of_one_component_aggregate() {
        let hub = MetricsHub::new();
        let a = hub.register_task("esper");
        let b = hub.register_task("esper");
        let other = hub.register_task("splitter");
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(3));
        other.record(Duration::from_millis(10));
        let w = hub.sample();
        assert_eq!(w.len(), 2);
        let esper = w.iter().find(|c| c.component == "esper").unwrap();
        assert_eq!(esper.throughput, 2);
        assert_eq!(esper.avg_latency, Some(Duration::from_millis(2)));
    }

    #[test]
    fn totals_and_history_accumulate() {
        let hub = MetricsHub::new();
        let c = hub.register_task("b");
        c.record(Duration::from_millis(1));
        hub.sample();
        c.record(Duration::from_millis(1));
        hub.sample();
        assert_eq!(hub.history().len(), 2);
        let totals = hub.totals();
        assert_eq!(totals[0].throughput, 2);
    }

    #[test]
    fn emitted_counter() {
        let hub = MetricsHub::new();
        let c = hub.register_task("b");
        c.record_emit();
        c.record_emit();
        let w = hub.sample();
        assert_eq!(w[0].emitted, 2);
    }
}
