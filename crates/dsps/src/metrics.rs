//! Per-task metrics and the Nimbus-style monitor.
//!
//! Section 5 of the paper: "we enhanced Storm with an extra monitor thread
//! per worker processor, that periodically (every 40 seconds) reports
//! these metrics for each bolt's task to the Nimbus node. The Nimbus
//! aggregates these data to compute the final monitor metrics per bolt."
//!
//! Here every task owns a set of atomic counters ([`TaskCounters`]); the
//! [`MetricsHub`] plays Nimbus: on demand (or from a monitor thread with a
//! fixed window) it snapshots the counters and produces per-component
//! windows of the two metrics the evaluation reports — **throughput**
//! (tuples processed per window) and **average processing latency** per
//! tuple.
//!
//! With tracing enabled ([`MonitorConfig::tracing`]) each window also
//! carries an **end-to-end completion latency histogram** (spout emit →
//! tuple-tree completion, or sink processing in at-most-once mode) as a
//! fixed-bucket log-scale [`LatencyHistogram`] with p50/p95/p99, plus
//! **queue-occupancy gauges** over the tasks' input channels so a hot
//! executor is visible before it saturates.

use crate::lineage::LineageConfig;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of log₂ latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds, so 48 buckets span 1 ns to ~78 hours.
pub const LATENCY_BUCKETS: usize = 48;

/// History entries the hub retains by default. Each sample appends one
/// entry per component, so for the seven-component Figure 8 topology this
/// keeps roughly 6.5 hours of the paper's 40 s windows.
pub const DEFAULT_RETENTION: usize = 4096;

/// The bucket a latency in nanoseconds falls into: `floor(log2(ns))`,
/// clamped to the last bucket.
fn bucket_of(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
}

/// A log-scale latency histogram with lock-free recording, owned by one
/// task. Snapshot into a [`LatencyHistogram`] to merge or query.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A plain (mergeable, queryable) copy of the current contents.
    pub fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket log-scale latency distribution: the snapshot form of
/// [`AtomicHistogram`] that windows and totals carry.
///
/// Quantiles are conservative: [`quantile`](Self::quantile) returns the
/// *upper bound* of the bucket holding the requested rank, so the reported
/// value is never below the true quantile and at most 2× above it (the
/// buckets are powers of two). The mean is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    sum_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; LATENCY_BUCKETS], sum_ns: 0 }
    }
}

impl LatencyHistogram {
    /// Records one latency sample (non-atomic; for building histograms
    /// outside the hot path).
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[bucket_of(ns)] += 1;
        self.sum_ns += ns;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Exact mean latency, if any sample was recorded.
    pub fn mean(&self) -> Option<Duration> {
        let n = self.count();
        (n > 0).then(|| Duration::from_nanos(self.sum_ns / n))
    }

    /// The `q`-quantile (`q` in `[0, 1]`, clamped into that range).
    ///
    /// Exact contract: the requested rank is `max(1, ceil(q · count))`,
    /// and the reported value is the **upper bound** `2^(i+1)` ns of the
    /// bucket `i` holding that rank — never below the true quantile and
    /// at most 2× above it (buckets are powers of two). Two edge cases
    /// follow directly from that contract:
    ///
    /// * `q = 0.0` asks for rank 1, so it reports the first non-empty
    ///   bucket's upper bound — *not* the true minimum sample, which may
    ///   be up to 2× smaller. There is no minimum tracker; treat the
    ///   result as a ≤2× overestimate of the minimum.
    /// * Bucket 0 covers `[1, 2)` ns and sub-nanosecond samples clamp to
    ///   1 ns on record, so any rank landing in bucket 0 reports 2 ns,
    ///   even for a `Duration::ZERO` sample.
    ///
    /// `q = 1.0` reports the last non-empty bucket's upper bound
    /// (`2^48` ns ≈ 78 h when everything sits in the final bucket).
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Duration::from_nanos(1u64 << (i + 1)));
            }
        }
        None
    }

    /// Median latency (bucket upper bound).
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.5)
    }

    /// 95th percentile latency (bucket upper bound).
    pub fn p95(&self) -> Option<Duration> {
        self.quantile(0.95)
    }

    /// 99th percentile latency (bucket upper bound).
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }

    /// Adds another histogram's samples into this one (the Nimbus-side
    /// aggregation across the tasks of a component).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum_ns += other.sum_ns;
    }

    /// Samples recorded since `last` (per-window delta): the exact
    /// inverse of [`merge`](Self::merge) — `a.merge(&b); a.delta(&b)`
    /// recovers `a`'s buckets and `sum_ns` bit-for-bit. When `last` is
    /// not a prefix of `self` (a counter reset, e.g. a restarted task),
    /// the subtraction saturates at zero instead of underflowing.
    pub fn delta(&self, last: &LatencyHistogram) -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(last.buckets[i])),
            sum_ns: self.sum_ns.saturating_sub(last.sum_ns),
        }
    }

    /// Builds a histogram from raw parts: 48 log₂ bucket counts (bucket
    /// `i` = samples in `[2^i, 2^(i+1))` ns) plus the exact nanosecond
    /// sum. This is how externally-collected histograms with the same
    /// bucket shape (e.g. the CEP engine's per-statement eval profiles)
    /// enter the metrics pipeline.
    pub fn from_parts(buckets: [u64; LATENCY_BUCKETS], sum_ns: u64) -> Self {
        LatencyHistogram { buckets, sum_ns }
    }

    /// The raw bucket counts (bucket `i` = samples in `[2^i, 2^(i+1))` ns).
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// The exact sum of all recorded samples, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }
}

/// Atomic counters owned by one task.
#[derive(Debug, Default)]
pub struct TaskCounters {
    /// Tuples processed by the task's `process` call (bolts only; spout
    /// emission is accounted separately under `emitted`).
    pub processed: AtomicU64,
    /// Tuples emitted downstream.
    pub emitted: AtomicU64,
    /// Cumulative processing time in nanoseconds.
    pub busy_ns: AtomicU64,
    /// Deliveries lost in transit: sends to a closed channel (the
    /// receiving task died) plus injected fault drops.
    pub dropped: AtomicU64,
    /// Direct emissions whose target task index was out of range for the
    /// edge: a routing bug in the emitting bolt (the delivery is dropped
    /// on that edge instead of aliasing onto `task % count`).
    pub misrouted: AtomicU64,
    /// Spout roots whose whole tuple tree completed (at-least-once mode).
    pub acked: AtomicU64,
    /// Spout roots abandoned after exhausting their replay budget.
    pub failed: AtomicU64,
    /// Replays emitted after an ack timeout.
    pub replayed: AtomicU64,
    /// Supervised restarts of this task after a panic.
    pub restarted: AtomicU64,
    /// Fault-injection panics that fired in this task ([`fault`](crate::fault)).
    pub injected_panics: AtomicU64,
    /// Fault-injection latency sleeps that fired in this task.
    pub injected_latency: AtomicU64,
    /// Fault-injection deliveries dropped on this task's outbound edges.
    pub injected_drops: AtomicU64,
    /// End-to-end completion latency: spout emit → tuple-tree completion
    /// (recorded by the spout in reliability mode) or spout emit → sink
    /// processing (recorded by terminal bolts in at-most-once mode).
    /// Only populated when tracing is enabled.
    pub e2e: AtomicHistogram,
}

impl TaskCounters {
    /// Records the processing of one tuple that took `elapsed`.
    pub fn record(&self, elapsed: Duration) {
        self.processed.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one downstream emission.
    pub fn record_emit(&self) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one delivery lost in transit.
    pub fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one out-of-range direct emission.
    pub fn record_misrouted(&self) {
        self.misrouted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fully-acked spout root.
    pub fn record_acked(&self) {
        self.acked.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one spout root given up on.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one replayed spout root.
    pub fn record_replayed(&self) {
        self.replayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one supervised task restart.
    pub fn record_restarted(&self) {
        self.restarted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` fault-injected panics observed in this task.
    pub fn record_injected_panics(&self, n: u64) {
        self.injected_panics.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` fault-injected latency sleeps observed in this task.
    pub fn record_injected_latency(&self, n: u64) {
        self.injected_latency.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one fault-injected outbound drop.
    pub fn record_injected_drop(&self) {
        self.injected_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one end-to-end completion latency sample (tracing mode).
    pub fn record_completion(&self, latency: Duration) {
        self.e2e.record(latency);
    }
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Sampling window. The paper uses 40 s.
    pub window: Duration,
    /// Opt-in per-tuple tracing: end-to-end latency histograms and
    /// queue-occupancy gauges. Off by default — with it off the runtime
    /// records no timestamps and touches no gauge.
    pub tracing: bool,
    /// History entries (one per component per sample) the hub retains;
    /// older windows are evicted ring-buffer style.
    pub retention: usize,
    /// Opt-in rule-level CEP profiling: per-statement eval-time
    /// histograms, rates and path counters, sampled into each window's
    /// [`ComponentWindow::rules`] breakdown. Off by default — with it
    /// off the engines take no eval timestamps.
    pub profiling: bool,
    /// Opt-in metrics exposition: `Some(port)` binds a loopback
    /// `TcpListener` (port 0 = ephemeral) polled by the monitor thread,
    /// serving the Prometheus text format on `/metrics` and a JSON
    /// snapshot on `/json`. `None` (the default) binds nothing.
    pub expose: Option<u16>,
    /// Opt-in causal tuple-lineage tracing ([`lineage`](crate::lineage)):
    /// a deterministic spout-side sampler stamps a fraction of tuple trees
    /// and every hop records a span, exported on `/trace` and through
    /// [`TopologyHandle::take_traces`](crate::runtime::TopologyHandle::take_traces).
    /// `None` (the default) records nothing and adds nothing to the hot
    /// path.
    pub lineage: Option<LineageConfig>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: Duration::from_secs(40),
            tracing: false,
            retention: DEFAULT_RETENTION,
            profiling: false,
            expose: None,
            lineage: None,
        }
    }
}

/// One sampled window for one component, aggregated over its tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentWindow {
    /// The component's name.
    pub component: String,
    /// Window start, relative to topology start (the previous sample's
    /// end; `0` for the first window).
    pub at: Duration,
    /// Window duration: the period this sample actually covers.
    pub len: Duration,
    /// True for the shutdown flush window, which may cover less than a
    /// full monitor period and must not be compared 1:1 with full ones.
    pub partial: bool,
    /// Tuples processed by all tasks during the window.
    pub throughput: u64,
    /// Average processing latency per tuple during the window, if any
    /// tuple was processed.
    pub avg_latency: Option<Duration>,
    /// Tuples emitted during the window.
    pub emitted: u64,
    /// Deliveries lost in transit (closed channels, injected drops).
    pub dropped: u64,
    /// Direct emissions to an out-of-range task index (dropped, counted).
    pub misrouted: u64,
    /// Spout roots fully acked (at-least-once mode).
    pub acked: u64,
    /// Spout roots abandoned after exhausting replays.
    pub failed: u64,
    /// Replays emitted after ack timeouts.
    pub replayed: u64,
    /// Supervised task restarts after panics.
    pub restarted: u64,
    /// Fault-injection panics that fired in the component's tasks.
    pub injected_panics: u64,
    /// Fault-injection latency sleeps that fired in the component's tasks.
    pub injected_latency: u64,
    /// Fault-injection drops on the component's outbound edges.
    pub injected_drops: u64,
    /// End-to-end completion latencies recorded during the window
    /// (tracing mode only; empty otherwise).
    pub e2e: LatencyHistogram,
    /// Tuples sitting in the component's task input channels at sample
    /// time, summed over tasks (tracing mode only; gauge, not a delta).
    pub queue_depth: u64,
    /// Deepest single task input channel at sample time (tracing mode).
    pub queue_depth_max: u64,
    /// Total capacity of the component's input channels (tracing mode;
    /// zero for spouts, which have no input channel).
    pub queue_capacity: u64,
    /// Per-rule CEP profiles recorded during the window (profiling mode
    /// only; empty otherwise). Counters and histograms are window deltas,
    /// `window_len` and `threshold_age` are gauges read at sample time.
    pub rules: Vec<RuleProfile>,
}

/// One rule's (statement's) profile on one engine instance, as carried by
/// a [`ComponentWindow`]. In window samples the counters and the `eval`
/// histogram are deltas over the window; in [`MetricsHub::totals`] they
/// are lifetime cumulatives. `window_len` and `threshold_age` are always
/// point-in-time gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleProfile {
    /// The rule (or statement) name.
    pub rule: String,
    /// Which engine instance (task index) of the component ran it.
    pub engine: usize,
    /// Events routed into the statement's windows.
    pub events_in: u64,
    /// Condition evaluations performed.
    pub evals: u64,
    /// Evaluations that produced at least one output row (matches).
    pub firings: u64,
    /// Output rows produced.
    pub rows_out: u64,
    /// Eval wall-time distribution (same 48-bucket log₂ shape as `e2e`).
    pub eval: LatencyHistogram,
    /// Evaluations served from a shared cluster's bank/index state.
    pub path_shared: u64,
    /// Evaluations served by the delta-maintained incremental path.
    pub path_incremental: u64,
    /// Evaluations served by the anchor fast path.
    pub path_anchor: u64,
    /// Evaluations that fell back to a full window rescan.
    pub path_rescan: u64,
    /// Events currently buffered across the statement's windows (gauge).
    pub window_len: u64,
    /// Age of the thresholds the rule is currently using (Section 4.3.1),
    /// if the rule is dynamic and has fetched thresholds at least once.
    pub threshold_age: Option<Duration>,
}

impl RuleProfile {
    /// Counters and histogram recorded since `last` (per-window delta);
    /// gauges pass through unchanged. Saturates at zero if a counter went
    /// backwards (a restarted engine).
    fn delta(&self, last: &RuleProfile) -> RuleProfile {
        RuleProfile {
            rule: self.rule.clone(),
            engine: self.engine,
            events_in: self.events_in.saturating_sub(last.events_in),
            evals: self.evals.saturating_sub(last.evals),
            firings: self.firings.saturating_sub(last.firings),
            rows_out: self.rows_out.saturating_sub(last.rows_out),
            eval: self.eval.delta(&last.eval),
            path_shared: self.path_shared.saturating_sub(last.path_shared),
            path_incremental: self.path_incremental.saturating_sub(last.path_incremental),
            path_anchor: self.path_anchor.saturating_sub(last.path_anchor),
            path_rescan: self.path_rescan.saturating_sub(last.path_rescan),
            window_len: self.window_len,
            threshold_age: self.threshold_age,
        }
    }
}

/// A callback the hub polls at sample time for a component's current
/// *cumulative* per-rule profiles (the hub computes window deltas itself).
/// Registered by engine-hosting bolts once their engines exist.
pub type ProfileSource = Arc<dyn Fn() -> Vec<RuleProfile> + Send + Sync>;

/// The counter values a window is computed from.
#[derive(Debug, Default, Clone)]
struct Snapshot {
    processed: u64,
    emitted: u64,
    busy_ns: u64,
    dropped: u64,
    misrouted: u64,
    acked: u64,
    failed: u64,
    replayed: u64,
    restarted: u64,
    injected_panics: u64,
    injected_latency: u64,
    injected_drops: u64,
    e2e: LatencyHistogram,
}

impl Snapshot {
    fn read(counters: &TaskCounters) -> Self {
        Snapshot {
            processed: counters.processed.load(Ordering::Relaxed),
            emitted: counters.emitted.load(Ordering::Relaxed),
            busy_ns: counters.busy_ns.load(Ordering::Relaxed),
            dropped: counters.dropped.load(Ordering::Relaxed),
            misrouted: counters.misrouted.load(Ordering::Relaxed),
            acked: counters.acked.load(Ordering::Relaxed),
            failed: counters.failed.load(Ordering::Relaxed),
            replayed: counters.replayed.load(Ordering::Relaxed),
            restarted: counters.restarted.load(Ordering::Relaxed),
            injected_panics: counters.injected_panics.load(Ordering::Relaxed),
            injected_latency: counters.injected_latency.load(Ordering::Relaxed),
            injected_drops: counters.injected_drops.load(Ordering::Relaxed),
            e2e: counters.e2e.snapshot(),
        }
    }

    fn delta(&self, last: &Snapshot) -> Snapshot {
        Snapshot {
            processed: self.processed - last.processed,
            emitted: self.emitted - last.emitted,
            busy_ns: self.busy_ns - last.busy_ns,
            dropped: self.dropped - last.dropped,
            misrouted: self.misrouted - last.misrouted,
            acked: self.acked - last.acked,
            failed: self.failed - last.failed,
            replayed: self.replayed - last.replayed,
            restarted: self.restarted - last.restarted,
            injected_panics: self.injected_panics - last.injected_panics,
            injected_latency: self.injected_latency - last.injected_latency,
            injected_drops: self.injected_drops - last.injected_drops,
            e2e: self.e2e.delta(&last.e2e),
        }
    }

    fn add(&mut self, other: &Snapshot) {
        self.processed += other.processed;
        self.emitted += other.emitted;
        self.busy_ns += other.busy_ns;
        self.dropped += other.dropped;
        self.misrouted += other.misrouted;
        self.acked += other.acked;
        self.failed += other.failed;
        self.replayed += other.replayed;
        self.restarted += other.restarted;
        self.injected_panics += other.injected_panics;
        self.injected_latency += other.injected_latency;
        self.injected_drops += other.injected_drops;
        self.e2e.merge(&other.e2e);
    }

    fn into_window(
        self,
        component: String,
        at: Duration,
        len: Duration,
        partial: bool,
    ) -> ComponentWindow {
        ComponentWindow {
            component,
            at,
            len,
            partial,
            throughput: self.processed,
            avg_latency: self.busy_ns.checked_div(self.processed).map(Duration::from_nanos),
            emitted: self.emitted,
            dropped: self.dropped,
            misrouted: self.misrouted,
            acked: self.acked,
            failed: self.failed,
            replayed: self.replayed,
            restarted: self.restarted,
            injected_panics: self.injected_panics,
            injected_latency: self.injected_latency,
            injected_drops: self.injected_drops,
            e2e: self.e2e,
            queue_depth: 0,
            queue_depth_max: 0,
            queue_capacity: 0,
            rules: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct TaskEntry {
    component: String,
    counters: Arc<TaskCounters>,
    last: Snapshot,
}

/// One task input channel's occupancy gauge. The hub deliberately holds a
/// plain counter rather than a channel handle: a cloned `Sender`/`Receiver`
/// would keep the channel alive past its task's death and break the
/// runtime's disconnect detection.
#[derive(Debug)]
struct QueueGauge {
    component: String,
    depth: Arc<AtomicI64>,
    capacity: u64,
}

/// One registered [`ProfileSource`] plus the last cumulative profiles seen
/// from it, keyed by `(rule, engine)`, for window-delta computation.
struct ProfileEntry {
    component: String,
    source: ProfileSource,
    last: BTreeMap<(String, usize), RuleProfile>,
}

impl std::fmt::Debug for ProfileEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileEntry")
            .field("component", &self.component)
            .field("last", &self.last)
            .finish_non_exhaustive()
    }
}

/// A callback polled at render time for a component's current gauge
/// values, as `(metric name, value)` pairs. Names are suffixes: a pair
/// `("rebalances_total", 3.0)` renders as `tms_rebalances_total`.
pub type GaugeSource = Arc<dyn Fn() -> Vec<(String, f64)> + Send + Sync>;

/// One registered [`GaugeSource`] under its component name.
struct GaugeEntry {
    component: String,
    source: GaugeSource,
}

impl std::fmt::Debug for GaugeEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaugeEntry")
            .field("component", &self.component)
            .finish_non_exhaustive()
    }
}

/// The Nimbus-side collector.
#[derive(Debug)]
pub struct MetricsHub {
    started: Instant,
    tasks: Mutex<Vec<TaskEntry>>,
    queues: Mutex<Vec<QueueGauge>>,
    profiles: Mutex<Vec<ProfileEntry>>,
    gauges: Mutex<Vec<GaugeEntry>>,
    history: Mutex<VecDeque<ComponentWindow>>,
    retention: usize,
    /// End of the previous sample — the next window's start.
    last_end: Mutex<Duration>,
    /// Latest cumulative totals pushed by each remote worker process
    /// (multi-process runs only; empty in a single-process topology).
    remote: Mutex<BTreeMap<usize, Vec<ComponentWindow>>>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        Self::new()
    }
}

/// One Prometheus counter family: (metric name, help text, field reader).
type MetricSpec<T> = (&'static str, &'static str, fn(&T) -> u64);

impl MetricsHub {
    /// Creates an empty hub with the default history retention.
    pub fn new() -> Self {
        Self::with_retention(DEFAULT_RETENTION)
    }

    /// Creates an empty hub keeping at most `retention` history entries.
    pub fn with_retention(retention: usize) -> Self {
        MetricsHub {
            started: Instant::now(),
            tasks: Mutex::new(Vec::new()),
            queues: Mutex::new(Vec::new()),
            profiles: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            history: Mutex::new(VecDeque::new()),
            retention: retention.max(1),
            last_end: Mutex::new(Duration::ZERO),
            remote: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers a task's counters under its component name.
    pub fn register_task(&self, component: &str) -> Arc<TaskCounters> {
        let counters = Arc::new(TaskCounters::default());
        self.tasks.lock().push(TaskEntry {
            component: component.to_string(),
            counters: counters.clone(),
            last: Snapshot::default(),
        });
        counters
    }

    /// Registers one task input channel's occupancy counter (tracing
    /// mode): the runtime increments `depth` on send and decrements on
    /// receive; the hub reads it as a gauge at sample time.
    pub fn register_queue(&self, component: &str, depth: Arc<AtomicI64>, capacity: usize) {
        self.queues.lock().push(QueueGauge {
            component: component.to_string(),
            depth,
            capacity: capacity as u64,
        });
    }

    /// Registers a per-rule profile source under its component name
    /// (profiling mode). The source is polled at every sample for the
    /// component's cumulative profiles; the hub turns them into window
    /// deltas. One component may register several sources (one per
    /// engine-hosting task).
    pub fn register_profile_source(&self, component: &str, source: ProfileSource) {
        self.profiles.lock().push(ProfileEntry {
            component: component.to_string(),
            source,
            last: BTreeMap::new(),
        });
    }

    /// Registers a custom gauge source under a component name. The source
    /// is polled at every exposition render; each `(name, value)` pair it
    /// returns becomes a `tms_<name>{component="..."}` gauge sample. Used
    /// by subsystems with state the task counters cannot express (e.g. the
    /// elastic rebalancer's migration counters).
    pub fn register_gauges(&self, component: &str, source: GaugeSource) {
        self.gauges.lock().push(GaugeEntry { component: component.to_string(), source });
    }

    /// Polls every gauge source: `metric name → [(component, value)]`,
    /// deterministically ordered.
    fn custom_gauges(&self) -> BTreeMap<String, Vec<(String, f64)>> {
        let mut out: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
        for entry in self.gauges.lock().iter() {
            for (name, value) in (entry.source)() {
                out.entry(name).or_default().push((entry.component.clone(), value));
            }
        }
        out
    }

    /// Polls every profile source and returns per-component rule profiles.
    /// With `deltas` set, counters are per-window deltas and each entry's
    /// `last` state advances; otherwise cumulative profiles are returned
    /// and no state changes.
    fn rule_profiles(&self, deltas: bool) -> BTreeMap<String, Vec<RuleProfile>> {
        let mut out: BTreeMap<String, Vec<RuleProfile>> = BTreeMap::new();
        for entry in self.profiles.lock().iter_mut() {
            let current = (entry.source)();
            let dest = out.entry(entry.component.clone()).or_default();
            for p in current {
                let key = (p.rule.clone(), p.engine);
                if deltas {
                    let windowed = match entry.last.get(&key) {
                        Some(last) => p.delta(last),
                        None => p.clone(),
                    };
                    entry.last.insert(key, p);
                    dest.push(windowed);
                } else {
                    dest.push(p);
                }
            }
        }
        out
    }

    /// Per-component `(depth sum, depth max, capacity sum)` right now.
    fn queue_gauges(&self) -> BTreeMap<String, (u64, u64, u64)> {
        let mut out: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        for g in self.queues.lock().iter() {
            let d = g.depth.load(Ordering::Relaxed).max(0) as u64;
            let e = out.entry(g.component.clone()).or_default();
            e.0 += d;
            e.1 = e.1.max(d);
            e.2 += g.capacity;
        }
        out
    }

    /// Samples one window: per-component deltas since the previous sample.
    /// Appends to the history and returns the fresh windows.
    pub fn sample(&self) -> Vec<ComponentWindow> {
        self.sample_inner(false)
    }

    /// Samples the final, possibly short window at shutdown; its windows
    /// are marked [`ComponentWindow::partial`].
    pub fn flush_sample(&self) -> Vec<ComponentWindow> {
        self.sample_inner(true)
    }

    fn sample_inner(&self, partial: bool) -> Vec<ComponentWindow> {
        let now = self.started.elapsed();
        let at = {
            let mut last_end = self.last_end.lock();
            let at = *last_end;
            *last_end = now;
            at
        };
        let len = now.saturating_sub(at);
        let gauges = self.queue_gauges();
        let mut rules = self.rule_profiles(true);
        let mut tasks = self.tasks.lock();
        let mut per_component: BTreeMap<String, Snapshot> = BTreeMap::new();
        for t in tasks.iter_mut() {
            let now = Snapshot::read(&t.counters);
            per_component.entry(t.component.clone()).or_default().add(&now.delta(&t.last));
            t.last = now;
        }
        drop(tasks);
        let windows: Vec<ComponentWindow> = per_component
            .into_iter()
            .map(|(component, snap)| {
                let mut w = snap.into_window(component, at, len, partial);
                if let Some(&(depth, max, cap)) = gauges.get(&w.component) {
                    w.queue_depth = depth;
                    w.queue_depth_max = max;
                    w.queue_capacity = cap;
                }
                if let Some(r) = rules.remove(&w.component) {
                    w.rules = r;
                }
                w
            })
            .collect();
        let mut history = self.history.lock();
        history.extend(windows.iter().cloned());
        while history.len() > self.retention {
            history.pop_front();
        }
        windows
    }

    /// Every retained window, oldest first.
    pub fn history(&self) -> Vec<ComponentWindow> {
        self.history.lock().iter().cloned().collect()
    }

    /// Lifetime totals per component (independent of windows): one
    /// whole-run window starting at zero.
    pub fn totals(&self) -> Vec<ComponentWindow> {
        let len = self.started.elapsed();
        let gauges = self.queue_gauges();
        let mut rules = self.rule_profiles(false);
        let tasks = self.tasks.lock();
        let mut per_component: BTreeMap<String, Snapshot> = BTreeMap::new();
        for t in tasks.iter() {
            per_component
                .entry(t.component.clone())
                .or_default()
                .add(&Snapshot::read(&t.counters));
        }
        per_component
            .into_iter()
            .map(|(component, snap)| {
                let mut w = snap.into_window(component, Duration::ZERO, len, false);
                if let Some(&(depth, max, cap)) = gauges.get(&w.component) {
                    w.queue_depth = depth;
                    w.queue_depth_max = max;
                    w.queue_capacity = cap;
                }
                if let Some(r) = rules.remove(&w.component) {
                    w.rules = r;
                }
                w
            })
            .collect()
    }

    /// Replaces worker `worker`'s totals with a fresh cumulative snapshot
    /// (multi-process runs: workers push cumulative totals, so the latest
    /// snapshot supersedes earlier ones).
    pub fn ingest_remote_totals(&self, worker: usize, totals: Vec<ComponentWindow>) {
        self.remote.lock().insert(worker, totals);
    }

    /// Whole-topology totals: this process's components plus the latest
    /// totals each remote worker pushed. The worker id is `None` on every
    /// row of a single-process run (the common case) and `Some(id)` on
    /// every row of a multi-process run (`Some(0)` = the coordinator's own
    /// components), so expositions can label series without perturbing
    /// single-process output.
    pub fn merged_totals(&self) -> Vec<(Option<usize>, ComponentWindow)> {
        let remote = self.remote.lock();
        let local_tag = if remote.is_empty() { None } else { Some(0) };
        let mut out: Vec<(Option<usize>, ComponentWindow)> =
            self.totals().into_iter().map(|w| (local_tag, w)).collect();
        for (&worker, totals) in remote.iter() {
            out.extend(totals.iter().cloned().map(|w| (Some(worker), w)));
        }
        out
    }

    /// Renders the current lifetime totals in the Prometheus text
    /// exposition format (version 0.0.4), dependency-free. Histograms
    /// follow the cumulative `_bucket`/`_sum`/`_count` contract with
    /// `le` upper bounds in seconds; only non-empty buckets plus `+Inf`
    /// are emitted. In a multi-process run every series additionally
    /// carries a `worker` label; single-process output is unchanged.
    pub fn render_prometheus(&self) -> String {
        let totals: Vec<(String, ComponentWindow)> = self
            .merged_totals()
            .into_iter()
            .map(|(who, w)| {
                let mut labels = format!("component=\"{}\"", escape_label(&w.component));
                if let Some(id) = who {
                    labels.push_str(&format!(",worker=\"{id}\""));
                }
                (labels, w)
            })
            .collect();
        let mut out = String::with_capacity(4096);

        let counters: [MetricSpec<ComponentWindow>; 11] = [
            ("tms_processed_total", "Tuples processed", |w| w.throughput),
            ("tms_emitted_total", "Tuples emitted downstream", |w| w.emitted),
            ("tms_dropped_total", "Deliveries lost in transit", |w| w.dropped),
            ("tms_misrouted_total", "Direct emissions to an out-of-range task index", |w| {
                w.misrouted
            }),
            ("tms_acked_total", "Spout roots fully acked", |w| w.acked),
            ("tms_failed_total", "Spout roots abandoned after exhausting replays", |w| {
                w.failed
            }),
            ("tms_replayed_total", "Replays emitted after ack timeouts", |w| w.replayed),
            ("tms_restarted_total", "Supervised task restarts after panics", |w| w.restarted),
            ("tms_injected_panics_total", "Fault-injection panics fired", |w| {
                w.injected_panics
            }),
            ("tms_injected_latency_total", "Fault-injection latency sleeps fired", |w| {
                w.injected_latency
            }),
            ("tms_injected_drops_total", "Fault-injection deliveries dropped", |w| {
                w.injected_drops
            }),
        ];
        for (name, help, read) in counters {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (labels, w) in &totals {
                out.push_str(&format!("{name}{{{labels}}} {}\n", read(w)));
            }
        }

        out.push_str(
            "# HELP tms_queue_depth Tuples buffered in the component's input channels\n\
             # TYPE tms_queue_depth gauge\n",
        );
        for (labels, w) in &totals {
            out.push_str(&format!("tms_queue_depth{{{labels}}} {}\n", w.queue_depth));
        }
        out.push_str(
            "# HELP tms_queue_capacity Total capacity of the component's input channels\n\
             # TYPE tms_queue_capacity gauge\n",
        );
        for (labels, w) in &totals {
            out.push_str(&format!("tms_queue_capacity{{{labels}}} {}\n", w.queue_capacity));
        }

        out.push_str(
            "# HELP tms_e2e_latency_seconds End-to-end tuple completion latency\n\
             # TYPE tms_e2e_latency_seconds histogram\n",
        );
        for (labels, w) in &totals {
            if !w.e2e.is_empty() {
                render_histogram(&mut out, "tms_e2e_latency_seconds", labels, &w.e2e);
            }
        }

        let rule_counters: [MetricSpec<RuleProfile>; 8] = [
            ("tms_rule_events_in_total", "Events routed into the rule's windows", |r| {
                r.events_in
            }),
            ("tms_rule_evals_total", "Condition evaluations performed", |r| r.evals),
            ("tms_rule_firings_total", "Evaluations that produced output rows", |r| r.firings),
            ("tms_rule_rows_out_total", "Output rows produced", |r| r.rows_out),
            ("tms_rule_path_shared_total", "Evals served from shared cluster state", |r| {
                r.path_shared
            }),
            ("tms_rule_path_incremental_total", "Evals on the incremental path", |r| {
                r.path_incremental
            }),
            ("tms_rule_path_anchor_total", "Evals on the anchor fast path", |r| r.path_anchor),
            ("tms_rule_path_rescan_total", "Evals that fell back to a full rescan", |r| {
                r.path_rescan
            }),
        ];
        for (name, help, read) in rule_counters {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (labels, w) in &totals {
                for r in &w.rules {
                    out.push_str(&format!(
                        "{name}{{{labels},rule=\"{}\",engine=\"{}\"}} {}\n",
                        escape_label(&r.rule),
                        r.engine,
                        read(r)
                    ));
                }
            }
        }
        out.push_str(
            "# HELP tms_rule_window_events Events buffered in the rule's windows\n\
             # TYPE tms_rule_window_events gauge\n",
        );
        for (labels, w) in &totals {
            for r in &w.rules {
                out.push_str(&format!(
                    "tms_rule_window_events{{{labels},rule=\"{}\",engine=\"{}\"}} {}\n",
                    escape_label(&r.rule),
                    r.engine,
                    r.window_len
                ));
            }
        }
        out.push_str(
            "# HELP tms_rule_threshold_age_seconds Age of the thresholds the rule is using\n\
             # TYPE tms_rule_threshold_age_seconds gauge\n",
        );
        for (labels, w) in &totals {
            for r in &w.rules {
                if let Some(age) = r.threshold_age {
                    out.push_str(&format!(
                        "tms_rule_threshold_age_seconds{{{labels},rule=\"{}\",engine=\"{}\"}} {}\n",
                        escape_label(&r.rule),
                        r.engine,
                        age.as_secs_f64()
                    ));
                }
            }
        }
        out.push_str(
            "# HELP tms_rule_eval_seconds Rule condition evaluation wall time\n\
             # TYPE tms_rule_eval_seconds histogram\n",
        );
        for (labels, w) in &totals {
            for r in &w.rules {
                if !r.eval.is_empty() {
                    let labels = format!(
                        "{labels},rule=\"{}\",engine=\"{}\"",
                        escape_label(&r.rule),
                        r.engine
                    );
                    render_histogram(&mut out, "tms_rule_eval_seconds", &labels, &r.eval);
                }
            }
        }

        for (name, samples) in self.custom_gauges() {
            out.push_str(&format!(
                "# HELP tms_{name} Custom gauge\n# TYPE tms_{name} gauge\n"
            ));
            for (component, value) in samples {
                out.push_str(&format!(
                    "tms_{name}{{component=\"{}\"}} {value}\n",
                    escape_label(&component)
                ));
            }
        }
        out
    }

    /// Renders the current lifetime totals as a JSON snapshot (one object
    /// per component, rule profiles nested), dependency-free. In a
    /// multi-process run each component object additionally carries a
    /// `worker` key; single-process output is unchanged.
    pub fn render_json(&self) -> String {
        let totals = self.merged_totals();
        let mut out = String::with_capacity(2048);
        out.push_str("{\"uptime_s\":");
        out.push_str(&format!("{:.3}", self.started.elapsed().as_secs_f64()));
        out.push_str(",\"components\":[");
        for (i, (who, w)) in totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if let Some(id) = who {
                out.push_str(&format!("{{\"worker\":{id},"));
            } else {
                out.push('{');
            }
            out.push_str(&format!(
                "\"component\":{},\"processed\":{},\"emitted\":{},\"avg_latency_ns\":{},\
                 \"dropped\":{},\"misrouted\":{},\"acked\":{},\"failed\":{},\"replayed\":{},\
                 \"restarted\":{},\
                 \"injected_panics\":{},\"injected_latency\":{},\"injected_drops\":{},\
                 \"queue_depth\":{},\"queue_depth_max\":{},\"queue_capacity\":{},\
                 \"e2e\":{},\"rules\":[",
                json_string(&w.component),
                w.throughput,
                w.emitted,
                w.avg_latency.map_or(0, |d| d.as_nanos()),
                w.dropped,
                w.misrouted,
                w.acked,
                w.failed,
                w.replayed,
                w.restarted,
                w.injected_panics,
                w.injected_latency,
                w.injected_drops,
                w.queue_depth,
                w.queue_depth_max,
                w.queue_capacity,
                json_histogram(&w.e2e),
            ));
            for (j, r) in w.rules.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"rule\":{},\"engine\":{},\"events_in\":{},\"evals\":{},\
                     \"firings\":{},\"rows_out\":{},\"path_shared\":{},\"path_incremental\":{},\
                     \"path_anchor\":{},\"path_rescan\":{},\"window_events\":{},\
                     \"threshold_age_s\":{},\"eval\":{}}}",
                    json_string(&r.rule),
                    r.engine,
                    r.events_in,
                    r.evals,
                    r.firings,
                    r.rows_out,
                    r.path_shared,
                    r.path_incremental,
                    r.path_anchor,
                    r.path_rescan,
                    r.window_len,
                    r.threshold_age.map_or("null".to_string(), |d| format!("{:.3}", d.as_secs_f64())),
                    json_histogram(&r.eval),
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"gauges\":[");
        let mut first = true;
        for (name, samples) in self.custom_gauges() {
            for (component, value) in samples {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"component\":{},\"name\":{},\"value\":{}}}",
                    json_string(&component),
                    json_string(&name),
                    if value.is_finite() { format!("{value}") } else { "null".to_string() }
                ));
            }
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a Prometheus label value: backslash, double quote, newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders a quoted JSON string with backslash/quote/control escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a histogram as a compact JSON object: count, exact nanosecond
/// sum, and the non-empty log₂ buckets as `[bucket_index, count]` pairs.
fn json_histogram(h: &LatencyHistogram) -> String {
    let pairs: Vec<String> = h
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| format!("[{i},{n}]"))
        .collect();
    format!("{{\"count\":{},\"sum_ns\":{},\"log2_buckets\":[{}]}}", h.count(), h.sum_ns(), pairs.join(","))
}

/// Appends one Prometheus histogram (cumulative `_bucket` lines for the
/// non-empty buckets, `+Inf`, `_sum`, `_count`) with `le` bounds in
/// seconds.
fn render_histogram(out: &mut String, name: &str, labels: &str, h: &LatencyHistogram) {
    let mut cum = 0u64;
    for (i, &n) in h.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        cum += n;
        let le = (1u128 << (i + 1)) as f64 / 1e9;
        out.push_str(&format!("{name}_bucket{{{labels},le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{{labels},le=\"+Inf\"}} {cum}\n"));
    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", h.sum_ns() as f64 / 1e9));
    out.push_str(&format!("{name}_count{{{labels}}} {cum}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_report_deltas_not_totals() {
        let hub = MetricsHub::new();
        let c = hub.register_task("esper");
        c.record(Duration::from_millis(2));
        c.record(Duration::from_millis(4));
        let w1 = hub.sample();
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].throughput, 2);
        assert_eq!(w1[0].avg_latency, Some(Duration::from_millis(3)));
        // Second window with no work: throughput 0, no latency.
        let w2 = hub.sample();
        assert_eq!(w2[0].throughput, 0);
        assert_eq!(w2[0].avg_latency, None);
        // One more tuple appears only in the third window.
        c.record(Duration::from_millis(6));
        let w3 = hub.sample();
        assert_eq!(w3[0].throughput, 1);
        assert_eq!(w3[0].avg_latency, Some(Duration::from_millis(6)));
    }

    #[test]
    fn tasks_of_one_component_aggregate() {
        let hub = MetricsHub::new();
        let a = hub.register_task("esper");
        let b = hub.register_task("esper");
        let other = hub.register_task("splitter");
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(3));
        other.record(Duration::from_millis(10));
        let w = hub.sample();
        assert_eq!(w.len(), 2);
        let esper = w.iter().find(|c| c.component == "esper").unwrap();
        assert_eq!(esper.throughput, 2);
        assert_eq!(esper.avg_latency, Some(Duration::from_millis(2)));
    }

    #[test]
    fn totals_and_history_accumulate() {
        let hub = MetricsHub::new();
        let c = hub.register_task("b");
        c.record(Duration::from_millis(1));
        hub.sample();
        c.record(Duration::from_millis(1));
        hub.sample();
        assert_eq!(hub.history().len(), 2);
        let totals = hub.totals();
        assert_eq!(totals[0].throughput, 2);
    }

    #[test]
    fn emitted_counter() {
        let hub = MetricsHub::new();
        let c = hub.register_task("b");
        c.record_emit();
        c.record_emit();
        let w = hub.sample();
        assert_eq!(w[0].emitted, 2);
    }

    #[test]
    fn reliability_counters_flow_into_windows() {
        let hub = MetricsHub::new();
        let c = hub.register_task("spout");
        c.record_dropped();
        c.record_acked();
        c.record_acked();
        c.record_failed();
        c.record_replayed();
        c.record_restarted();
        let w = hub.sample();
        assert_eq!(w[0].dropped, 1);
        assert_eq!(w[0].acked, 2);
        assert_eq!(w[0].failed, 1);
        assert_eq!(w[0].replayed, 1);
        assert_eq!(w[0].restarted, 1);
        // Windows are deltas; totals are lifetime.
        let w2 = hub.sample();
        assert_eq!(w2[0].acked, 0);
        let totals = hub.totals();
        assert_eq!(totals[0].acked, 2);
        assert_eq!(totals[0].dropped, 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        // 90 fast samples at 1 ms, 10 slow ones at 1 s.
        for _ in 0..90 {
            h.record(Duration::from_millis(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_secs(1));
        }
        assert_eq!(h.count(), 100);
        // Quantiles report the holding bucket's upper bound: never below
        // the true value, at most 2x above.
        let p50 = h.p50().unwrap();
        assert!(p50 >= Duration::from_millis(1) && p50 <= Duration::from_millis(2), "{p50:?}");
        let p99 = h.p99().unwrap();
        assert!(p99 >= Duration::from_secs(1) && p99 <= Duration::from_secs(2), "{p99:?}");
        // p90 still falls in the fast bucket, p91 in the slow one.
        assert!(h.quantile(0.90).unwrap() <= Duration::from_millis(2));
        assert!(h.quantile(0.91).unwrap() >= Duration::from_secs(1));
        // The mean is exact, not bucketed.
        let mean = h.mean().unwrap();
        assert_eq!(mean, Duration::from_nanos((90 * 1_000_000 + 10 * 1_000_000_000) / 100));
    }

    #[test]
    fn histogram_extremes_clamp_to_the_bucket_range() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::ZERO); // below bucket 0 → clamped to [1, 2) ns
        h.record(Duration::from_secs(60 * 60 * 24 * 365)); // beyond the top bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn histogram_merges_across_tasks_of_one_component() {
        let hub = MetricsHub::new();
        let a = hub.register_task("spout");
        let b = hub.register_task("spout");
        for _ in 0..5 {
            a.record_completion(Duration::from_millis(1));
        }
        for _ in 0..5 {
            b.record_completion(Duration::from_secs(1));
        }
        let w = hub.sample();
        assert_eq!(w[0].e2e.count(), 10, "both tasks' histograms merge");
        assert!(w[0].e2e.quantile(0.4).unwrap() <= Duration::from_millis(2));
        assert!(w[0].e2e.quantile(0.9).unwrap() >= Duration::from_secs(1));
        // Direct merge agrees with the hub-side aggregation.
        let mut m = LatencyHistogram::default();
        for _ in 0..5 {
            m.record(Duration::from_millis(1));
        }
        let mut other = LatencyHistogram::default();
        for _ in 0..5 {
            other.record(Duration::from_secs(1));
        }
        m.merge(&other);
        assert_eq!(m, w[0].e2e);
    }

    #[test]
    fn e2e_histograms_window_as_deltas() {
        let hub = MetricsHub::new();
        let c = hub.register_task("spout");
        c.record_completion(Duration::from_millis(1));
        c.record_completion(Duration::from_millis(1));
        let w1 = hub.sample();
        assert_eq!(w1[0].e2e.count(), 2);
        c.record_completion(Duration::from_millis(8));
        let w2 = hub.sample();
        assert_eq!(w2[0].e2e.count(), 1, "windows carry only fresh samples");
        assert_eq!(hub.totals()[0].e2e.count(), 3, "totals carry everything");
    }

    #[test]
    fn windows_stamp_start_and_duration() {
        // Regression: `at` was documented as the window start but stamped
        // with the sample end. Starts must chain: each window begins where
        // the previous one ended.
        let hub = MetricsHub::new();
        hub.register_task("b");
        let w1 = hub.sample();
        assert_eq!(w1[0].at, Duration::ZERO, "first window starts at topology start");
        assert!(!w1[0].partial);
        std::thread::sleep(Duration::from_millis(5));
        let w2 = hub.sample();
        assert_eq!(w2[0].at, w1[0].len, "second window starts at the first one's end");
        assert!(w2[0].len >= Duration::from_millis(5));
        // Totals describe the whole run: start zero, duration = lifetime.
        let t = hub.totals();
        assert_eq!(t[0].at, Duration::ZERO);
        assert!(t[0].len >= w1[0].len + w2[0].len);
    }

    #[test]
    fn flush_sample_marks_windows_partial() {
        let hub = MetricsHub::new();
        let c = hub.register_task("b");
        c.record(Duration::from_millis(1));
        let regular = hub.sample();
        assert!(!regular[0].partial);
        c.record(Duration::from_millis(1));
        let flushed = hub.flush_sample();
        assert!(flushed[0].partial, "the shutdown flush must be distinguishable");
        assert_eq!(flushed[0].throughput, 1);
        let history = hub.history();
        assert_eq!(history.iter().filter(|w| w.partial).count(), 1);
    }

    #[test]
    fn history_retention_evicts_oldest_windows() {
        let hub = MetricsHub::with_retention(3);
        let c = hub.register_task("b");
        for i in 0..5u64 {
            c.record(Duration::from_millis(i + 1));
            hub.sample();
        }
        let history = hub.history();
        assert_eq!(history.len(), 3, "ring buffer keeps the newest entries");
        // The two oldest windows were evicted: the survivors are the ones
        // with the 3rd, 4th and 5th recorded latencies.
        let lats: Vec<_> = history.iter().map(|w| w.avg_latency.unwrap()).collect();
        assert_eq!(
            lats,
            vec![
                Duration::from_millis(3),
                Duration::from_millis(4),
                Duration::from_millis(5)
            ]
        );
        // Totals are unaffected by eviction.
        assert_eq!(hub.totals()[0].throughput, 5);
    }

    #[test]
    fn queue_gauges_aggregate_per_component() {
        let hub = MetricsHub::new();
        hub.register_task("sink");
        hub.register_task("src");
        let d1 = Arc::new(AtomicI64::new(0));
        let d2 = Arc::new(AtomicI64::new(0));
        hub.register_queue("sink", d1.clone(), 64);
        hub.register_queue("sink", d2.clone(), 64);
        d1.store(10, Ordering::Relaxed);
        d2.store(3, Ordering::Relaxed);
        let w = hub.sample();
        let sink = w.iter().find(|c| c.component == "sink").unwrap();
        assert_eq!(sink.queue_depth, 13);
        assert_eq!(sink.queue_depth_max, 10);
        assert_eq!(sink.queue_capacity, 128);
        let src = w.iter().find(|c| c.component == "src").unwrap();
        assert_eq!((src.queue_depth, src.queue_capacity), (0, 0), "spouts have no input queue");
        // Gauges, not deltas: an unchanged depth reads the same next window.
        let w2 = hub.sample();
        assert_eq!(w2.iter().find(|c| c.component == "sink").unwrap().queue_depth, 13);
    }

    #[test]
    fn quantile_boundary_q0_reports_first_nonempty_bucket_upper_bound() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_nanos(700)); // bucket 9: [512, 1024) ns
        h.record(Duration::from_millis(3));
        // q=0 is rank 1 — the bucket upper bound, NOT the true minimum.
        assert_eq!(h.quantile(0.0), Some(Duration::from_nanos(1024)));
    }

    #[test]
    fn quantile_boundary_q1_reports_last_nonempty_bucket_upper_bound() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_nanos(3)); // bucket 1: [2, 4) ns
        h.record(Duration::from_nanos(700)); // bucket 9
        assert_eq!(h.quantile(1.0), Some(Duration::from_nanos(1024)));
    }

    #[test]
    fn quantile_boundary_single_sample_every_q_reports_its_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_nanos(5)); // bucket 2: [4, 8) ns
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(Duration::from_nanos(8)), "q={q}");
        }
    }

    #[test]
    fn quantile_boundary_sub_ns_samples_report_2ns() {
        // Duration::ZERO clamps to 1 ns on record, landing in bucket 0
        // which covers [1, 2) ns — its upper bound is 2 ns.
        let mut h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile(0.0), Some(Duration::from_nanos(2)));
        assert_eq!(h.quantile(1.0), Some(Duration::from_nanos(2)));
    }

    #[test]
    fn quantile_boundary_all_in_last_bucket() {
        // Samples beyond 2^47 ns clamp into the final bucket, whose upper
        // bound is 2^48 ns (~78 h).
        let mut h = LatencyHistogram::default();
        for _ in 0..3 {
            h.record(Duration::from_secs(60 * 60 * 24 * 365));
        }
        let top = Duration::from_nanos(1u64 << LATENCY_BUCKETS);
        assert_eq!(h.quantile(0.0), Some(top));
        assert_eq!(h.quantile(0.5), Some(top));
        assert_eq!(h.quantile(1.0), Some(top));
    }

    #[test]
    fn rule_profiles_window_as_deltas_and_total_as_cumulative() {
        let hub = MetricsHub::new();
        hub.register_task("esper");
        let state = Arc::new(Mutex::new(RuleProfile {
            rule: "speeding".into(),
            engine: 0,
            events_in: 10,
            evals: 10,
            firings: 4,
            rows_out: 4,
            eval: {
                let mut h = LatencyHistogram::default();
                h.record(Duration::from_micros(2));
                h
            },
            path_shared: 0,
            path_incremental: 10,
            path_anchor: 0,
            path_rescan: 0,
            window_len: 7,
            threshold_age: Some(Duration::from_secs(30)),
        }));
        let src = state.clone();
        hub.register_profile_source("esper", Arc::new(move || vec![src.lock().clone()]));

        let w1 = hub.sample();
        let r1 = &w1[0].rules[0];
        assert_eq!((r1.events_in, r1.evals, r1.firings), (10, 10, 4));
        assert_eq!(r1.eval.count(), 1);
        assert_eq!(r1.window_len, 7);
        assert_eq!(r1.threshold_age, Some(Duration::from_secs(30)));

        // Advance the cumulative profile; the next window carries deltas,
        // gauges pass through.
        {
            let mut p = state.lock();
            p.events_in = 25;
            p.evals = 25;
            p.firings = 6;
            p.rows_out = 6;
            p.eval.record(Duration::from_micros(8));
            p.path_incremental = 25;
            p.window_len = 3;
            p.threshold_age = Some(Duration::from_secs(70));
        }
        let w2 = hub.sample();
        let r2 = &w2[0].rules[0];
        assert_eq!((r2.events_in, r2.evals, r2.firings, r2.rows_out), (15, 15, 2, 2));
        assert_eq!(r2.eval.count(), 1, "only the fresh eval sample");
        assert_eq!(r2.path_incremental, 15);
        assert_eq!(r2.window_len, 3, "gauge, not a delta");
        assert_eq!(r2.threshold_age, Some(Duration::from_secs(70)));

        // Totals stay cumulative and don't disturb the delta state.
        let t = hub.totals();
        assert_eq!(t[0].rules[0].events_in, 25);
        assert_eq!(t[0].rules[0].eval.count(), 2);
        let w3 = hub.sample();
        assert_eq!(w3[0].rules[0].events_in, 0, "no new events since w2");
    }

    #[test]
    fn rule_profiles_tolerate_counter_resets() {
        let hub = MetricsHub::new();
        hub.register_task("esper");
        let counter = Arc::new(AtomicU64::new(100));
        let c = counter.clone();
        hub.register_profile_source(
            "esper",
            Arc::new(move || {
                vec![RuleProfile {
                    rule: "r".into(),
                    engine: 0,
                    events_in: c.load(Ordering::Relaxed),
                    evals: 0,
                    firings: 0,
                    rows_out: 0,
                    eval: LatencyHistogram::default(),
                    path_shared: 0,
                    path_incremental: 0,
                    path_anchor: 0,
                    path_rescan: 0,
                    window_len: 0,
                    threshold_age: None,
                }]
            }),
        );
        hub.sample();
        counter.store(5, Ordering::Relaxed); // engine restarted, counters reset
        let w = hub.sample();
        assert_eq!(w[0].rules[0].events_in, 0, "saturates instead of underflowing");
    }

    #[test]
    fn prometheus_rendering_has_correct_histogram_semantics() {
        let hub = MetricsHub::new();
        let c = hub.register_task("esper");
        c.record(Duration::from_millis(1));
        c.record_emit();
        c.record_completion(Duration::from_nanos(3)); // bucket 1, le = 4e-9
        c.record_completion(Duration::from_nanos(3));
        c.record_completion(Duration::from_nanos(700)); // bucket 9, le = 1.024e-6
        let text = hub.render_prometheus();
        assert!(text.contains("# TYPE tms_processed_total counter"), "{text}");
        assert!(text.contains("tms_processed_total{component=\"esper\"} 1"), "{text}");
        assert!(text.contains("tms_emitted_total{component=\"esper\"} 1"), "{text}");
        // Cumulative buckets: 2 at le=4ns, 3 at le=1024ns, 3 at +Inf.
        assert!(text.contains("tms_e2e_latency_seconds_bucket{component=\"esper\",le=\"0.000000004\"} 2"), "{text}");
        assert!(
            text.contains("tms_e2e_latency_seconds_bucket{component=\"esper\",le=\"0.000001024\"} 3"),
            "{text}"
        );
        assert!(text.contains("tms_e2e_latency_seconds_bucket{component=\"esper\",le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("tms_e2e_latency_seconds_count{component=\"esper\"} 3"), "{text}");
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("tms_e2e_latency_seconds_sum{component=\"esper\"}"))
            .unwrap();
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((sum - 706e-9).abs() < 1e-12, "{sum_line}");
    }

    #[test]
    fn prometheus_rendering_includes_rule_profiles_and_escapes_labels() {
        let hub = MetricsHub::new();
        hub.register_task("esper");
        hub.register_profile_source(
            "esper",
            Arc::new(|| {
                vec![RuleProfile {
                    rule: "rule \"q\"".into(),
                    engine: 2,
                    events_in: 9,
                    evals: 9,
                    firings: 1,
                    rows_out: 1,
                    eval: {
                        let mut h = LatencyHistogram::default();
                        h.record(Duration::from_nanos(5));
                        h
                    },
                    path_shared: 0,
                    path_incremental: 9,
                    path_anchor: 0,
                    path_rescan: 0,
                    window_len: 4,
                    threshold_age: Some(Duration::from_secs(12)),
                }]
            }),
        );
        let text = hub.render_prometheus();
        assert!(
            text.contains(
                "tms_rule_events_in_total{component=\"esper\",rule=\"rule \\\"q\\\"\",engine=\"2\"} 9"
            ),
            "{text}"
        );
        assert!(
            text.contains("tms_rule_window_events{component=\"esper\",rule=\"rule \\\"q\\\"\",engine=\"2\"} 4"),
            "{text}"
        );
        assert!(
            text.contains(
                "tms_rule_threshold_age_seconds{component=\"esper\",rule=\"rule \\\"q\\\"\",engine=\"2\"} 12"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "tms_rule_eval_seconds_bucket{component=\"esper\",rule=\"rule \\\"q\\\"\",engine=\"2\",le=\"+Inf\"} 1"
            ),
            "{text}"
        );
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let hub = MetricsHub::new();
        let c = hub.register_task("esper");
        c.record(Duration::from_millis(1));
        hub.register_profile_source(
            "esper",
            Arc::new(|| {
                vec![RuleProfile {
                    rule: "a \"b\"\\c".into(),
                    engine: 0,
                    events_in: 1,
                    evals: 1,
                    firings: 0,
                    rows_out: 0,
                    eval: LatencyHistogram::default(),
                    path_shared: 0,
                    path_incremental: 0,
                    path_anchor: 1,
                    path_rescan: 0,
                    window_len: 1,
                    threshold_age: None,
                }]
            }),
        );
        let json = hub.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"components\":["), "{json}");
        assert!(json.contains("\"rule\":\"a \\\"b\\\"\\\\c\""), "{json}");
        assert!(json.contains("\"threshold_age_s\":null"), "{json}");
        assert!(json.contains("\"path_anchor\":1"), "{json}");
        assert!(json.contains("\"gauges\":[]"), "{json}");
    }

    #[test]
    fn custom_gauges_render_in_both_formats() {
        let hub = MetricsHub::new();
        hub.register_gauges(
            "splitter",
            Arc::new(|| {
                vec![
                    ("rebalances_total".to_string(), 3.0),
                    ("rebalance_post_imbalance".to_string(), 1.25),
                    ("rebalance_observed_imbalance".to_string(), f64::NAN),
                ]
            }),
        );
        let text = hub.render_prometheus();
        assert!(text.contains("# TYPE tms_rebalances_total gauge"), "{text}");
        assert!(text.contains("tms_rebalances_total{component=\"splitter\"} 3"), "{text}");
        assert!(
            text.contains("tms_rebalance_post_imbalance{component=\"splitter\"} 1.25"),
            "{text}"
        );
        let json = hub.render_json();
        assert!(
            json.contains(
                "{\"component\":\"splitter\",\"name\":\"rebalances_total\",\"value\":3}"
            ),
            "{json}"
        );
        assert!(
            json.contains(
                "{\"component\":\"splitter\",\"name\":\"rebalance_observed_imbalance\",\"value\":null}"
            ),
            "{json}"
        );
    }

    proptest::proptest! {
        /// Satellite: merge then delta round-trips exactly. For random
        /// sample sets `a` and `b`: `(a ∪ b).delta(b) == a` bucket-for-
        /// bucket and on `sum_ns`.
        #[test]
        fn merge_delta_round_trip(
            // Up to 2^50 ns per sample (well past the 2^47 top-bucket
            // clamp) × 64 samples stays clear of sum_ns overflow.
            a_ns in proptest::collection::vec(0u64..(1u64 << 50), 0..64),
            b_ns in proptest::collection::vec(0u64..(1u64 << 50), 0..64),
        ) {
            let mut a = LatencyHistogram::default();
            for &ns in &a_ns {
                a.record(Duration::from_nanos(ns));
            }
            let mut b = LatencyHistogram::default();
            for &ns in &b_ns {
                b.record(Duration::from_nanos(ns));
            }
            let mut merged = a.clone();
            merged.merge(&b);
            proptest::prop_assert_eq!(merged.count(), a.count() + b.count());
            let recovered = merged.delta(&b);
            proptest::prop_assert_eq!(&recovered, &a);
            proptest::prop_assert_eq!(recovered.sum_ns(), a.sum_ns());
            // And symmetrically for the other operand.
            proptest::prop_assert_eq!(&merged.delta(&a), &b);
        }
    }
}
