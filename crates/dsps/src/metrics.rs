//! Per-task metrics and the Nimbus-style monitor.
//!
//! Section 5 of the paper: "we enhanced Storm with an extra monitor thread
//! per worker processor, that periodically (every 40 seconds) reports
//! these metrics for each bolt's task to the Nimbus node. The Nimbus
//! aggregates these data to compute the final monitor metrics per bolt."
//!
//! Here every task owns a set of atomic counters ([`TaskCounters`]); the
//! [`MetricsHub`] plays Nimbus: on demand (or from a monitor thread with a
//! fixed window) it snapshots the counters and produces per-component
//! windows of the two metrics the evaluation reports — **throughput**
//! (tuples processed per window) and **average processing latency** per
//! tuple.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Atomic counters owned by one task.
#[derive(Debug, Default)]
pub struct TaskCounters {
    /// Tuples processed (bolts) or emitted (spouts).
    pub processed: AtomicU64,
    /// Tuples emitted downstream.
    pub emitted: AtomicU64,
    /// Cumulative processing time in nanoseconds.
    pub busy_ns: AtomicU64,
    /// Deliveries lost in transit: sends to a closed channel (the
    /// receiving task died) plus injected fault drops.
    pub dropped: AtomicU64,
    /// Spout roots whose whole tuple tree completed (at-least-once mode).
    pub acked: AtomicU64,
    /// Spout roots abandoned after exhausting their replay budget.
    pub failed: AtomicU64,
    /// Replays emitted after an ack timeout.
    pub replayed: AtomicU64,
    /// Supervised restarts of this task after a panic.
    pub restarted: AtomicU64,
}

impl TaskCounters {
    /// Records the processing of one tuple that took `elapsed`.
    pub fn record(&self, elapsed: Duration) {
        self.processed.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one downstream emission.
    pub fn record_emit(&self) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one delivery lost in transit.
    pub fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fully-acked spout root.
    pub fn record_acked(&self) {
        self.acked.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one spout root given up on.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one replayed spout root.
    pub fn record_replayed(&self) {
        self.replayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one supervised task restart.
    pub fn record_restarted(&self) {
        self.restarted.fetch_add(1, Ordering::Relaxed);
    }
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Sampling window. The paper uses 40 s.
    pub window: Duration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { window: Duration::from_secs(40) }
    }
}

/// One sampled window for one component, aggregated over its tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentWindow {
    /// The component's name.
    pub component: String,
    /// Window start, relative to topology start.
    pub at: Duration,
    /// Tuples processed by all tasks during the window.
    pub throughput: u64,
    /// Average processing latency per tuple during the window, if any
    /// tuple was processed.
    pub avg_latency: Option<Duration>,
    /// Tuples emitted during the window.
    pub emitted: u64,
    /// Deliveries lost in transit (closed channels, injected drops).
    pub dropped: u64,
    /// Spout roots fully acked (at-least-once mode).
    pub acked: u64,
    /// Spout roots abandoned after exhausting replays.
    pub failed: u64,
    /// Replays emitted after ack timeouts.
    pub replayed: u64,
    /// Supervised task restarts after panics.
    pub restarted: u64,
}

/// The counter values a window is computed from.
#[derive(Debug, Default, Clone, Copy)]
struct Snapshot {
    processed: u64,
    emitted: u64,
    busy_ns: u64,
    dropped: u64,
    acked: u64,
    failed: u64,
    replayed: u64,
    restarted: u64,
}

impl Snapshot {
    fn read(counters: &TaskCounters) -> Self {
        Snapshot {
            processed: counters.processed.load(Ordering::Relaxed),
            emitted: counters.emitted.load(Ordering::Relaxed),
            busy_ns: counters.busy_ns.load(Ordering::Relaxed),
            dropped: counters.dropped.load(Ordering::Relaxed),
            acked: counters.acked.load(Ordering::Relaxed),
            failed: counters.failed.load(Ordering::Relaxed),
            replayed: counters.replayed.load(Ordering::Relaxed),
            restarted: counters.restarted.load(Ordering::Relaxed),
        }
    }

    fn delta(&self, last: &Snapshot) -> Snapshot {
        Snapshot {
            processed: self.processed - last.processed,
            emitted: self.emitted - last.emitted,
            busy_ns: self.busy_ns - last.busy_ns,
            dropped: self.dropped - last.dropped,
            acked: self.acked - last.acked,
            failed: self.failed - last.failed,
            replayed: self.replayed - last.replayed,
            restarted: self.restarted - last.restarted,
        }
    }

    fn add(&mut self, other: &Snapshot) {
        self.processed += other.processed;
        self.emitted += other.emitted;
        self.busy_ns += other.busy_ns;
        self.dropped += other.dropped;
        self.acked += other.acked;
        self.failed += other.failed;
        self.replayed += other.replayed;
        self.restarted += other.restarted;
    }

    fn into_window(self, component: String, at: Duration) -> ComponentWindow {
        ComponentWindow {
            component,
            at,
            throughput: self.processed,
            avg_latency: self.busy_ns.checked_div(self.processed).map(Duration::from_nanos),
            emitted: self.emitted,
            dropped: self.dropped,
            acked: self.acked,
            failed: self.failed,
            replayed: self.replayed,
            restarted: self.restarted,
        }
    }
}

#[derive(Debug)]
struct TaskEntry {
    component: String,
    counters: Arc<TaskCounters>,
    last: Snapshot,
}

/// The Nimbus-side collector.
#[derive(Debug)]
pub struct MetricsHub {
    started: Instant,
    tasks: Mutex<Vec<TaskEntry>>,
    history: Mutex<Vec<ComponentWindow>>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        MetricsHub {
            started: Instant::now(),
            tasks: Mutex::new(Vec::new()),
            history: Mutex::new(Vec::new()),
        }
    }

    /// Registers a task's counters under its component name.
    pub fn register_task(&self, component: &str) -> Arc<TaskCounters> {
        let counters = Arc::new(TaskCounters::default());
        self.tasks.lock().push(TaskEntry {
            component: component.to_string(),
            counters: counters.clone(),
            last: Snapshot::default(),
        });
        counters
    }

    /// Samples one window: per-component deltas since the previous sample.
    /// Appends to the history and returns the fresh windows.
    pub fn sample(&self) -> Vec<ComponentWindow> {
        let at = self.started.elapsed();
        let mut tasks = self.tasks.lock();
        let mut per_component: std::collections::BTreeMap<String, Snapshot> =
            std::collections::BTreeMap::new();
        for t in tasks.iter_mut() {
            let now = Snapshot::read(&t.counters);
            per_component.entry(t.component.clone()).or_default().add(&now.delta(&t.last));
            t.last = now;
        }
        let windows: Vec<ComponentWindow> = per_component
            .into_iter()
            .map(|(component, snap)| snap.into_window(component, at))
            .collect();
        self.history.lock().extend(windows.iter().cloned());
        windows
    }

    /// Every window sampled so far.
    pub fn history(&self) -> Vec<ComponentWindow> {
        self.history.lock().clone()
    }

    /// Lifetime totals per component (independent of windows).
    pub fn totals(&self) -> Vec<ComponentWindow> {
        let at = self.started.elapsed();
        let tasks = self.tasks.lock();
        let mut per_component: std::collections::BTreeMap<String, Snapshot> =
            std::collections::BTreeMap::new();
        for t in tasks.iter() {
            per_component
                .entry(t.component.clone())
                .or_default()
                .add(&Snapshot::read(&t.counters));
        }
        per_component
            .into_iter()
            .map(|(component, snap)| snap.into_window(component, at))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_report_deltas_not_totals() {
        let hub = MetricsHub::new();
        let c = hub.register_task("esper");
        c.record(Duration::from_millis(2));
        c.record(Duration::from_millis(4));
        let w1 = hub.sample();
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].throughput, 2);
        assert_eq!(w1[0].avg_latency, Some(Duration::from_millis(3)));
        // Second window with no work: throughput 0, no latency.
        let w2 = hub.sample();
        assert_eq!(w2[0].throughput, 0);
        assert_eq!(w2[0].avg_latency, None);
        // One more tuple appears only in the third window.
        c.record(Duration::from_millis(6));
        let w3 = hub.sample();
        assert_eq!(w3[0].throughput, 1);
        assert_eq!(w3[0].avg_latency, Some(Duration::from_millis(6)));
    }

    #[test]
    fn tasks_of_one_component_aggregate() {
        let hub = MetricsHub::new();
        let a = hub.register_task("esper");
        let b = hub.register_task("esper");
        let other = hub.register_task("splitter");
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(3));
        other.record(Duration::from_millis(10));
        let w = hub.sample();
        assert_eq!(w.len(), 2);
        let esper = w.iter().find(|c| c.component == "esper").unwrap();
        assert_eq!(esper.throughput, 2);
        assert_eq!(esper.avg_latency, Some(Duration::from_millis(2)));
    }

    #[test]
    fn totals_and_history_accumulate() {
        let hub = MetricsHub::new();
        let c = hub.register_task("b");
        c.record(Duration::from_millis(1));
        hub.sample();
        c.record(Duration::from_millis(1));
        hub.sample();
        assert_eq!(hub.history().len(), 2);
        let totals = hub.totals();
        assert_eq!(totals[0].throughput, 2);
    }

    #[test]
    fn emitted_counter() {
        let hub = MetricsHub::new();
        let c = hub.register_task("b");
        c.record_emit();
        c.record_emit();
        let w = hub.sample();
        assert_eq!(w[0].emitted, 2);
    }

    #[test]
    fn reliability_counters_flow_into_windows() {
        let hub = MetricsHub::new();
        let c = hub.register_task("spout");
        c.record_dropped();
        c.record_acked();
        c.record_acked();
        c.record_failed();
        c.record_replayed();
        c.record_restarted();
        let w = hub.sample();
        assert_eq!(w[0].dropped, 1);
        assert_eq!(w[0].acked, 2);
        assert_eq!(w[0].failed, 1);
        assert_eq!(w[0].replayed, 1);
        assert_eq!(w[0].restarted, 1);
        // Windows are deltas; totals are lifetime.
        let w2 = hub.sample();
        assert_eq!(w2[0].acked, 0);
        let totals = hub.totals();
        assert_eq!(totals[0].acked, 2);
        assert_eq!(totals[0].dropped, 1);
    }
}
