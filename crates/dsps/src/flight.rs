//! Control-plane flight recorder: an always-on bounded ring of structured
//! events describing what the *control* plane did — task restarts,
//! durability snapshots/restores, changelog truncations, migration ticket
//! lifecycle, rebalance cycles, kappa threshold refreshes, chaos
//! injections — each stamped with a monotonic sequence number and
//! nanoseconds since the shared observability epoch, so events line up on
//! the same clock as lineage spans ([`lineage`](crate::lineage)).
//!
//! Unlike lineage tracing this is *not* opt-in: control-plane events are
//! rare (human-scale, not tuple-scale), so a mutexed `VecDeque` bounded at
//! a few thousand entries costs nothing measurable and is always there
//! when a run goes wrong. The ring keeps the **newest** events (the ones
//! near the failure); `dropped` counts evictions. On an executor's fatal
//! panic the runtime dumps the ring to stderr.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default ring capacity (events, not bytes).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// What happened. The set mirrors the runtime's control-plane verbs;
/// `Custom` lets embedders (e.g. the traffic system's kappa bolts) record
/// domain events on the same timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlightKind {
    /// A supervised bolt task restarted after a panic.
    TaskRestart,
    /// A durability snapshot was written.
    Snapshot,
    /// Recovered state was installed into a task (fresh submit or restart).
    Restore,
    /// A torn changelog tail was truncated at open.
    ChangelogTruncated,
    /// A migration ticket was posted.
    MigrationRequested,
    /// The router began draining a ticket.
    MigrationDraining,
    /// The source deposited the ticket's state (the commit point).
    MigrationDeposited,
    /// A drain timed out; the ticket aborted.
    MigrationAborted,
    /// The payload reached the destination's mailbox.
    MigrationCompleted,
    /// A rebalance controller observation/decision cycle.
    RebalanceCycle,
    /// A rebalance decision was taken.
    RebalanceDecision,
    /// An in-stream statistics refresh was published or applied.
    StatsRefresh,
    /// A fault-injection panic fired.
    ChaosPanic,
    /// End-of-stream reached a terminal point.
    Eos,
    /// Embedder-defined event.
    Custom,
}

impl FlightKind {
    /// Stable lower-snake name used by the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::TaskRestart => "task_restart",
            FlightKind::Snapshot => "snapshot",
            FlightKind::Restore => "restore",
            FlightKind::ChangelogTruncated => "changelog_truncated",
            FlightKind::MigrationRequested => "migration_requested",
            FlightKind::MigrationDraining => "migration_draining",
            FlightKind::MigrationDeposited => "migration_deposited",
            FlightKind::MigrationAborted => "migration_aborted",
            FlightKind::MigrationCompleted => "migration_completed",
            FlightKind::RebalanceCycle => "rebalance_cycle",
            FlightKind::RebalanceDecision => "rebalance_decision",
            FlightKind::StatsRefresh => "stats_refresh",
            FlightKind::ChaosPanic => "chaos_panic",
            FlightKind::Eos => "eos",
            FlightKind::Custom => "custom",
        }
    }

    /// The inverse of [`name`](FlightKind::name) — how events shipped
    /// across the wire by their stable name resolve back to a kind.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "task_restart" => FlightKind::TaskRestart,
            "snapshot" => FlightKind::Snapshot,
            "restore" => FlightKind::Restore,
            "changelog_truncated" => FlightKind::ChangelogTruncated,
            "migration_requested" => FlightKind::MigrationRequested,
            "migration_draining" => FlightKind::MigrationDraining,
            "migration_deposited" => FlightKind::MigrationDeposited,
            "migration_aborted" => FlightKind::MigrationAborted,
            "migration_completed" => FlightKind::MigrationCompleted,
            "rebalance_cycle" => FlightKind::RebalanceCycle,
            "rebalance_decision" => FlightKind::RebalanceDecision,
            "stats_refresh" => FlightKind::StatsRefresh,
            "chaos_panic" => FlightKind::ChaosPanic,
            "eos" => FlightKind::Eos,
            "custom" => FlightKind::Custom,
            _ => return None,
        })
    }
}

/// One recorded control-plane event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number, unique within a recorder (gaps mean the
    /// ring evicted events between dumps).
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch (shared with lineage spans).
    pub at_ns: u64,
    /// Event class.
    pub kind: FlightKind,
    /// Component the event concerns, or `""` for cluster-wide events.
    pub component: String,
    /// Global task index the event concerns, or `-1`.
    pub task: i64,
    /// Free-form human-readable detail.
    pub detail: String,
}

struct FlightInner {
    ring: VecDeque<FlightEvent>,
    dropped: u64,
}

/// The always-on recorder. Cheap to clone behind an `Arc`; `record` takes
/// one short mutex hold (events are rare by construction).
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    seq: AtomicU64,
    inner: Mutex<FlightInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FlightRecorder")
            .field("events", &inner.ring.len())
            .field("dropped", &inner.dropped)
            .finish_non_exhaustive()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY, Instant::now())
    }
}

impl FlightRecorder {
    /// Creates a recorder timing events against `epoch`.
    pub fn new(capacity: usize, epoch: Instant) -> Self {
        FlightRecorder {
            epoch,
            capacity: capacity.max(16),
            seq: AtomicU64::new(0),
            inner: Mutex::new(FlightInner { ring: VecDeque::new(), dropped: 0 }),
        }
    }

    /// The shared observability epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds since the epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one event; returns its sequence number.
    pub fn record(
        &self,
        kind: FlightKind,
        component: &str,
        task: i64,
        detail: impl Into<String>,
    ) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = FlightEvent {
            seq,
            at_ns: self.now_ns(),
            kind,
            component: component.to_string(),
            task,
            detail: detail.into(),
        };
        let mut inner = self.inner.lock();
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(event);
        seq
    }

    /// Merges an event recorded by another process (a remote worker's
    /// report), assigning it a fresh local sequence number but keeping
    /// its own timestamp. Worker epochs start at their own process boot,
    /// so cross-process timestamps are comparable only per worker —
    /// consumers group by worker before ordering by time.
    pub fn ingest(
        &self,
        at_ns: u64,
        kind: FlightKind,
        component: &str,
        task: i64,
        detail: impl Into<String>,
    ) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = FlightEvent {
            seq,
            at_ns,
            kind,
            component: component.to_string(),
            task,
            detail: detail.into(),
        };
        let mut inner = self.inner.lock();
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(event);
        seq
    }

    /// Events recorded so far (including any already evicted).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted by the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Retained events of one kind.
    pub fn events_of(&self, kind: FlightKind) -> Vec<FlightEvent> {
        self.inner
            .lock()
            .ring
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Renders the retained events as JSON:
    /// `{"dropped":N,"events":[{...},...]}`.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::with_capacity(64 + inner.ring.len() * 120);
        out.push_str(&format!("{{\"dropped\":{},\"events\":[", inner.dropped));
        for (i, e) in inner.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"at_ns\":{},\"kind\":\"{}\",\"component\":{},\
                 \"task\":{},\"detail\":{}}}",
                e.seq,
                e.at_ns,
                e.kind.name(),
                json_str(&e.component),
                e.task,
                json_str(&e.detail),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Dumps the ring to stderr — called by the runtime when an executor
    /// dies for good, so the control-plane history around the failure
    /// survives into logs.
    pub fn dump(&self, why: &str) {
        let inner = self.inner.lock();
        eprintln!(
            "== flight recorder dump ({why}; {} events, {} evicted) ==",
            inner.ring.len(),
            inner.dropped
        );
        for e in &inner.ring {
            eprintln!(
                "  #{:<6} {:>14}ns {:<20} component={} task={} {}",
                e.seq,
                e.at_ns,
                e.kind.name(),
                if e.component.is_empty() { "-" } else { &e.component },
                e.task,
                e.detail
            );
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotonic_and_survive_eviction() {
        let r = FlightRecorder::new(16, Instant::now());
        for i in 0..40 {
            let seq = r.record(FlightKind::RebalanceCycle, "ctl", -1, format!("cycle {i}"));
            assert_eq!(seq, i);
        }
        assert_eq!(r.recorded(), 40);
        assert_eq!(r.dropped(), 24);
        let events = r.events();
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().unwrap().seq, 24, "newest events are kept");
        assert_eq!(events.last().unwrap().seq, 39);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn timestamps_are_nondecreasing_against_the_epoch() {
        let r = FlightRecorder::default();
        r.record(FlightKind::Snapshot, "b", 3, "snap");
        std::thread::sleep(std::time::Duration::from_millis(2));
        r.record(FlightKind::Restore, "b", 3, "restore");
        let e = r.events();
        assert!(e[1].at_ns > e[0].at_ns);
    }

    #[test]
    fn json_export_escapes_and_lists_events() {
        let r = FlightRecorder::default();
        r.record(FlightKind::ChaosPanic, "esper", 7, "injected \"panic\"\n");
        let json = r.render_json();
        assert!(json.starts_with("{\"dropped\":0,\"events\":["));
        assert!(json.contains("\"kind\":\"chaos_panic\""));
        assert!(json.contains("\\\"panic\\\"\\n"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn events_of_filters_by_kind() {
        let r = FlightRecorder::default();
        r.record(FlightKind::TaskRestart, "a", 1, "");
        r.record(FlightKind::Snapshot, "a", 1, "");
        r.record(FlightKind::TaskRestart, "b", 2, "");
        assert_eq!(r.events_of(FlightKind::TaskRestart).len(), 2);
        assert_eq!(r.events_of(FlightKind::Snapshot).len(), 1);
        assert!(r.events_of(FlightKind::Eos).is_empty());
    }
}
