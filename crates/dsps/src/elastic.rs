//! Elastic migration coordination: the control-plane rendezvous between a
//! rebalancer thread, the routing task that pauses traffic, and the
//! stateful tasks that hand state over.
//!
//! The coordinator is deliberately generic: it knows nothing about rules,
//! regions or engines, only about *tickets* — a request to move some named
//! state from task `from` to task `to`. The protocol is commit-at-deposit:
//!
//! 1. the rebalancer posts a request ([`MigrationCoordinator::request`]);
//! 2. the router pops it ([`begin_next`](MigrationCoordinator::begin_next)),
//!    emits a drain barrier directly to the source task, and blocks on
//!    [`await_deposit`](MigrationCoordinator::await_deposit);
//! 3. the source task, on seeing the barrier *after* every earlier tuple
//!    (per-sender FIFO), extracts the state non-destructively and
//!    [`deposit`](MigrationCoordinator::deposit)s it — the deposit is the
//!    commit point: only a `true` return licenses the source to evict;
//! 4. the router wakes, posts the payload into the destination's
//!    [`post_install`](MigrationCoordinator::post_install) mailbox, swaps
//!    its routing table, and emits an install trigger to the destination;
//! 5. the destination absorbs the payload either on the install trigger or
//!    on its next processed message ([`take_installs`](MigrationCoordinator::take_installs)
//!    is polled at process start), whichever arrives first — so a dropped
//!    install trigger cannot lose state.
//!
//! If the barrier is lost in transit (fault injection) the router's wait
//! times out, the ticket is marked aborted, and a late deposit returns
//! `false`: the source keeps its state and nothing moved. The rebalancer
//! simply retries on a later cycle.

use crate::flight::{FlightKind, FlightRecorder};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// One requested migration: move the state described by `meta` from task
/// `from` to task `to`. `meta` is opaque to the coordinator.
#[derive(Debug)]
pub struct MigrationRequest<M> {
    /// Ticket id, unique within the coordinator.
    pub id: u64,
    /// Source task index.
    pub from: usize,
    /// Destination task index.
    pub to: usize,
    /// Caller-defined description of what moves.
    pub meta: M,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TicketState {
    /// Queued, not yet picked up by the router.
    Pending,
    /// Barrier emitted; the router is waiting for the deposit.
    Draining,
    /// State deposited (the commit point passed).
    Deposited,
    /// The drain timed out; a late deposit is refused.
    Aborted,
    /// Payload handed to the destination's mailbox.
    Completed,
}

struct TicketEntry<M, P> {
    request: Arc<MigrationRequest<M>>,
    state: TicketState,
    payload: Option<P>,
}

struct Inner<M, P> {
    queue: VecDeque<u64>,
    tickets: HashMap<u64, TicketEntry<M, P>>,
    /// Destination task index → deposited payloads awaiting absorption.
    mailboxes: HashMap<usize, Vec<(u64, P)>>,
}

/// Counter snapshot of a coordinator's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationStats {
    /// Migrations whose state reached the destination mailbox.
    pub completed: u64,
    /// Migrations aborted by a drain timeout.
    pub aborted: u64,
    /// Rebalance decisions taken by the controller (set via
    /// [`MigrationCoordinator::note_decision`]).
    pub decisions: u64,
    /// Routing pause of the most recent completed migration, ms.
    pub last_pause_ms: f64,
    /// Longest routing pause over the run, ms.
    pub max_pause_ms: f64,
    /// Planned imbalance after the latest rebalance decision (the
    /// controller's target; `NaN` until a decision was taken).
    pub post_imbalance: f64,
    /// Most recently observed imbalance (whatever the controller measured
    /// last; `NaN` until one was measured).
    pub observed_imbalance: f64,
    /// Controller check cycles from the first trigger until the observed
    /// imbalance fell back under the bound; `None` while unconverged.
    pub cycles_to_converge: Option<u64>,
}

const UNSET: u64 = u64::MAX;

/// The rendezvous object shared by the rebalancer, the router, and the
/// stateful tasks. `M` is the request metadata, `P` the deposited payload.
pub struct MigrationCoordinator<M, P> {
    inner: Mutex<Inner<M, P>>,
    deposited: Condvar,
    next_id: AtomicU64,
    /// Fast path for destinations: number of mailbox entries pending, so
    /// the per-message poll is one relaxed load when idle.
    pending_installs: AtomicU64,
    completed: AtomicU64,
    aborted: AtomicU64,
    decisions: AtomicU64,
    last_pause_ns: AtomicU64,
    max_pause_ns: AtomicU64,
    post_imbalance_bits: AtomicU64,
    observed_imbalance_bits: AtomicU64,
    cycles_to_converge: AtomicU64,
    /// Optional flight recorder: when attached, every ticket transition
    /// lands in the control-plane event log.
    recorder: Mutex<Option<Arc<FlightRecorder>>>,
    /// Optional redirect consulted before a payload lands in a local
    /// mailbox — the multi-process runtime's seam for shipping installs
    /// to a destination task living in another worker process.
    #[allow(clippy::type_complexity)]
    install_redirect: Mutex<Option<Box<dyn Fn(usize, u64, &P) -> bool + Send + Sync>>>,
}

impl<M, P> Default for MigrationCoordinator<M, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M, P> MigrationCoordinator<M, P> {
    /// Creates an idle coordinator.
    pub fn new() -> Self {
        MigrationCoordinator {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                tickets: HashMap::new(),
                mailboxes: HashMap::new(),
            }),
            deposited: Condvar::new(),
            next_id: AtomicU64::new(1),
            pending_installs: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
            last_pause_ns: AtomicU64::new(0),
            max_pause_ns: AtomicU64::new(0),
            post_imbalance_bits: AtomicU64::new(f64::NAN.to_bits()),
            observed_imbalance_bits: AtomicU64::new(f64::NAN.to_bits()),
            cycles_to_converge: AtomicU64::new(UNSET),
            recorder: Mutex::new(None),
            install_redirect: Mutex::new(None),
        }
    }

    /// Attaches a flight recorder: every ticket lifecycle transition
    /// (requested, draining, deposited, aborted, completed) becomes a
    /// control-plane event.
    pub fn set_recorder(&self, recorder: Arc<FlightRecorder>) {
        *self.recorder.lock() = Some(recorder);
    }

    fn flight(&self, kind: FlightKind, task: i64, detail: String) {
        // Clone the Arc out so the event is recorded without holding our
        // lock (the recorder takes its own).
        let recorder = self.recorder.lock().clone();
        if let Some(r) = recorder {
            r.record(kind, "elastic", task, detail);
        }
    }

    /// Posts a migration request; returns its ticket id.
    pub fn request(&self, from: usize, to: usize, meta: M) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let request = Arc::new(MigrationRequest { id, from, to, meta });
        let mut inner = self.inner.lock();
        inner.tickets.insert(
            id,
            TicketEntry { request, state: TicketState::Pending, payload: None },
        );
        inner.queue.push_back(id);
        drop(inner);
        self.flight(
            FlightKind::MigrationRequested,
            from as i64,
            format!("ticket {id}: task {from} -> task {to}"),
        );
        id
    }

    /// Pops the next pending request and marks it draining. The router
    /// calls this, emits the barrier, then [`Self::await_deposit`]s.
    pub fn begin_next(&self) -> Option<Arc<MigrationRequest<M>>> {
        let mut inner = self.inner.lock();
        let id = inner.queue.pop_front()?;
        let entry = inner.tickets.get_mut(&id).expect("queued ticket exists");
        entry.state = TicketState::Draining;
        let request = entry.request.clone();
        drop(inner);
        self.flight(
            FlightKind::MigrationDraining,
            request.from as i64,
            format!("ticket {id}: drain barrier to task {}", request.from),
        );
        Some(request)
    }

    /// Looks a ticket's request up by id (the source task resolves what
    /// to extract from the barrier's id alone, keeping control messages
    /// small).
    pub fn ticket(&self, id: u64) -> Option<Arc<MigrationRequest<M>>> {
        self.inner.lock().tickets.get(&id).map(|e| e.request.clone())
    }

    /// Deposits the extracted state for ticket `id`. Returns `true` when
    /// the deposit committed — only then may the caller evict the source
    /// copy. Returns `false` for an aborted (timed-out) or unknown ticket.
    pub fn deposit(&self, id: u64, payload: P) -> bool {
        let mut inner = self.inner.lock();
        let Some(entry) = inner.tickets.get_mut(&id) else { return false };
        if entry.state != TicketState::Draining {
            return false;
        }
        entry.state = TicketState::Deposited;
        entry.payload = Some(payload);
        let (from, to) = (entry.request.from, entry.request.to);
        self.deposited.notify_all();
        drop(inner);
        self.flight(
            FlightKind::MigrationDeposited,
            from as i64,
            format!("ticket {id}: state extracted from task {from} for task {to}"),
        );
        true
    }

    /// Waits for ticket `id`'s deposit. On success returns the payload;
    /// on timeout marks the ticket aborted (so a late deposit is refused)
    /// and returns `None`.
    pub fn await_deposit(&self, id: u64, timeout: Duration) -> Option<P> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            match inner.tickets.get_mut(&id) {
                None => return None,
                Some(entry) if entry.state == TicketState::Deposited => {
                    entry.state = TicketState::Completed;
                    return entry.payload.take();
                }
                Some(entry) => {
                    let now = Instant::now();
                    if now >= deadline {
                        entry.state = TicketState::Aborted;
                        let from = entry.request.from;
                        self.aborted.fetch_add(1, Ordering::Relaxed);
                        drop(inner);
                        self.flight(
                            FlightKind::MigrationAborted,
                            from as i64,
                            format!("ticket {id}: drain timed out after {timeout:?}"),
                        );
                        return None;
                    }
                    let (guard, _) = self
                        .deposited
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    inner = guard;
                }
            }
        }
    }

    /// Installs a redirect hook consulted before a payload lands in a
    /// local mailbox. Returning `true` claims the install (the hook
    /// shipped it to the destination's process — the multi-process
    /// runtime frames it onto a control link); returning `false` keeps
    /// the local mailbox path.
    pub fn set_install_redirect(
        &self,
        hook: impl Fn(usize, u64, &P) -> bool + Send + Sync + 'static,
    ) {
        *self.install_redirect.lock() = Some(Box::new(hook));
    }

    /// Posts a payload into destination `to`'s install mailbox (or hands
    /// it to the install redirect when one is set and claims it).
    pub fn post_install(&self, to: usize, id: u64, payload: P) {
        {
            let redirect = self.install_redirect.lock();
            if let Some(hook) = redirect.as_ref() {
                if hook(to, id, &payload) {
                    drop(redirect);
                    self.flight(
                        FlightKind::MigrationCompleted,
                        to as i64,
                        format!("ticket {id}: payload shipped to task {to}'s remote worker"),
                    );
                    return;
                }
            }
        }
        let mut inner = self.inner.lock();
        inner.mailboxes.entry(to).or_default().push((id, payload));
        self.pending_installs.fetch_add(1, Ordering::Release);
        drop(inner);
        self.flight(
            FlightKind::MigrationCompleted,
            to as i64,
            format!("ticket {id}: payload posted to task {to}'s install mailbox"),
        );
    }

    /// Drains destination `to`'s install mailbox. Cheap when idle: one
    /// relaxed atomic load guards the lock.
    pub fn take_installs(&self, to: usize) -> Vec<(u64, P)> {
        if self.pending_installs.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut inner = self.inner.lock();
        let taken = inner.mailboxes.remove(&to).unwrap_or_default();
        if !taken.is_empty() {
            self.pending_installs.fetch_sub(taken.len() as u64, Ordering::Release);
        }
        taken
    }

    /// Requests not yet handed to a destination (pending, draining, or
    /// deposited-but-unrouted). The rebalancer holds new decisions while
    /// this is non-zero.
    pub fn in_flight(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .tickets
            .values()
            .filter(|e| {
                matches!(
                    e.state,
                    TicketState::Pending | TicketState::Draining | TicketState::Deposited
                )
            })
            .count()
    }

    /// Records a completed migration and its routing pause.
    pub fn note_completed(&self, pause: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let ns = pause.as_nanos().min(u64::MAX as u128) as u64;
        self.last_pause_ns.store(ns, Ordering::Relaxed);
        self.max_pause_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a rebalance decision and its planned post-move imbalance.
    pub fn note_decision(&self, post_imbalance: f64) {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        self.post_imbalance_bits.store(post_imbalance.to_bits(), Ordering::Relaxed);
    }

    /// Records the controller's latest observed imbalance.
    pub fn note_observed_imbalance(&self, imbalance: f64) {
        self.observed_imbalance_bits.store(imbalance.to_bits(), Ordering::Relaxed);
    }

    /// Records how many controller cycles the first trigger took to fall
    /// back under the bound (first write wins).
    pub fn note_converged(&self, cycles: u64) {
        let _ = self.cycles_to_converge.compare_exchange(
            UNSET,
            cycles,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> MigrationStats {
        let cycles = self.cycles_to_converge.load(Ordering::Relaxed);
        MigrationStats {
            completed: self.completed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            decisions: self.decisions.load(Ordering::Relaxed),
            last_pause_ms: self.last_pause_ns.load(Ordering::Relaxed) as f64 / 1e6,
            max_pause_ms: self.max_pause_ns.load(Ordering::Relaxed) as f64 / 1e6,
            post_imbalance: f64::from_bits(self.post_imbalance_bits.load(Ordering::Relaxed)),
            observed_imbalance: f64::from_bits(
                self.observed_imbalance_bits.load(Ordering::Relaxed),
            ),
            cycles_to_converge: (cycles != UNSET).then_some(cycles),
        }
    }
}

impl<M, P> std::fmt::Debug for MigrationCoordinator<M, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigrationCoordinator")
            .field("stats", &self.stats())
            .field("in_flight", &self.in_flight())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    type Coord = MigrationCoordinator<Vec<String>, String>;

    #[test]
    fn happy_path_hands_the_payload_over() {
        let c = Arc::new(Coord::new());
        let id = c.request(0, 1, vec!["R1".into()]);
        assert_eq!(c.in_flight(), 1);

        let req = c.begin_next().expect("one pending request");
        assert_eq!(req.id, id);
        assert_eq!((req.from, req.to), (0, 1));
        assert_eq!(req.meta, vec!["R1".to_string()]);
        assert!(c.begin_next().is_none(), "queue drained");

        // Source side, from another thread (as in the real topology).
        let c2 = c.clone();
        let source = thread::spawn(move || {
            let req = c2.ticket(id).expect("ticket resolvable by id");
            assert_eq!(req.meta, vec!["R1".to_string()]);
            assert!(c2.deposit(id, "state".into()), "deposit commits");
        });
        let payload = c.await_deposit(id, Duration::from_secs(5)).expect("deposited");
        source.join().unwrap();
        assert_eq!(payload, "state");

        c.post_install(1, id, payload);
        assert!(c.take_installs(0).is_empty(), "wrong task sees nothing");
        assert_eq!(c.take_installs(1), vec![(id, "state".to_string())]);
        assert!(c.take_installs(1).is_empty(), "mailbox drained");
        assert_eq!(c.in_flight(), 0);

        c.note_completed(Duration::from_millis(3));
        let stats = c.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.aborted, 0);
        assert!(stats.last_pause_ms >= 3.0);
        assert!(stats.max_pause_ms >= stats.last_pause_ms);
    }

    #[test]
    fn timeout_aborts_and_refuses_the_late_deposit() {
        let c = Coord::new();
        let id = c.request(2, 3, vec![]);
        let _ = c.begin_next().unwrap();
        assert!(c.await_deposit(id, Duration::from_millis(20)).is_none());
        assert_eq!(c.stats().aborted, 1);
        assert!(!c.deposit(id, "late".into()), "late deposit is refused");
        assert_eq!(c.in_flight(), 0, "aborted tickets are not in flight");
        assert!(c.take_installs(3).is_empty());
    }

    #[test]
    fn ticket_lifecycle_lands_in_the_flight_recorder() {
        let recorder = Arc::new(FlightRecorder::default());
        let c = Coord::new();
        c.set_recorder(recorder.clone());

        let id = c.request(0, 1, vec!["R1".to_string()]);
        let _ = c.begin_next().unwrap();
        assert!(c.deposit(id, "state".into()));
        let payload = c.await_deposit(id, Duration::from_secs(5)).unwrap();
        c.post_install(1, id, payload);

        // A second ticket that drains into a timeout.
        let id2 = c.request(2, 3, vec![]);
        let _ = c.begin_next().unwrap();
        assert!(c.await_deposit(id2, Duration::from_millis(10)).is_none());

        for kind in [
            FlightKind::MigrationRequested,
            FlightKind::MigrationDraining,
            FlightKind::MigrationDeposited,
            FlightKind::MigrationCompleted,
            FlightKind::MigrationAborted,
        ] {
            assert!(
                !recorder.events_of(kind).is_empty(),
                "expected at least one {} event",
                kind.name()
            );
        }
        let requested = recorder.events_of(FlightKind::MigrationRequested);
        assert_eq!(requested.len(), 2);
        assert!(requested[0].detail.contains("task 0 -> task 1"), "{:?}", requested[0]);
        assert_eq!(requested[0].component, "elastic");
    }

    #[test]
    fn deposit_requires_a_draining_ticket() {
        let c = Coord::new();
        let id = c.request(0, 1, vec![]);
        assert!(!c.deposit(id, "early".into()), "pending tickets refuse deposits");
        assert!(!c.deposit(999, "ghost".into()), "unknown tickets refuse deposits");
        let _ = c.begin_next().unwrap();
        assert!(c.deposit(id, "ok".into()));
        assert!(!c.deposit(id, "twice".into()), "double deposit is refused");
    }

    #[test]
    fn decision_counters_and_convergence_are_tracked() {
        let c = Coord::new();
        let s = c.stats();
        assert!(s.post_imbalance.is_nan() && s.observed_imbalance.is_nan());
        assert_eq!(s.cycles_to_converge, None);
        c.note_observed_imbalance(3.5);
        c.note_decision(1.2);
        c.note_converged(4);
        c.note_converged(9); // first write wins
        let s = c.stats();
        assert_eq!(s.decisions, 1);
        assert_eq!(s.observed_imbalance, 3.5);
        assert_eq!(s.post_imbalance, 1.2);
        assert_eq!(s.cycles_to_converge, Some(4));
    }

    #[test]
    fn requests_are_served_in_order() {
        let c = Coord::new();
        let a = c.request(0, 1, vec![]);
        let b = c.request(1, 0, vec![]);
        assert_eq!(c.begin_next().unwrap().id, a);
        assert_eq!(c.begin_next().unwrap().id, b);
    }
}
