//! Seeded fault injection for chaos testing the reliability layer.
//!
//! Two injection points, split by what the at-least-once machinery can
//! heal:
//!
//! * **Message drops** happen inside the runtime's emitters (enable via
//!   [`RuntimeConfig::fault`](crate::runtime::RuntimeConfig)): the
//!   delivery is registered with the acker and then never sent, exactly
//!   like a network loss, so the spout's ack timeout replays it.
//! * **Panics and added latency** happen inside the bolt, via the
//!   [`ChaosBolt`] wrapper ([`chaos_wrap`]): a panic kills the task
//!   mid-tuple, exercising the supervisor restart path and the replay of
//!   the in-flight tuple.
//!
//! Everything is driven by seeded RNGs, so a chaos run is reproducible.

use crate::topology::{Bolt, BoltContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

thread_local! {
    // Injections fired on this executor thread since the last drain. A
    // ChaosBolt cannot reach the runtime's per-task counters (it only sees
    // the Bolt trait), so it tallies here and the runtime drains the cells
    // into the processing task's counters after every process() call.
    static INJECTED_PANICS: Cell<u64> = const { Cell::new(0) };
    static INJECTED_LATENCY: Cell<u64> = const { Cell::new(0) };
}

/// Takes (and resets) this thread's `(injected panics, injected latency
/// sleeps)` tallies.
pub(crate) fn take_injections() -> (u64, u64) {
    (INJECTED_PANICS.take(), INJECTED_LATENCY.take())
}

/// Fault injection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a [`ChaosBolt`] panics before processing a tuple.
    pub panic_p: f64,
    /// Probability that the runtime drops a data delivery in transit.
    pub drop_p: f64,
    /// Extra latency a [`ChaosBolt`] sleeps before processing a tuple.
    pub delay: Option<Duration>,
    /// Base RNG seed; every task derives its own deterministic stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { panic_p: 0.0, drop_p: 0.0, delay: None, seed: 0xC0FFEE }
    }
}

impl FaultConfig {
    /// A per-task RNG: decorrelates tasks (and restart incarnations)
    /// without losing determinism for a fixed seed.
    pub(crate) fn rng_for(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// A bolt wrapper injecting probabilistic panics and added latency.
pub struct ChaosBolt<T> {
    inner: Box<dyn Bolt<T>>,
    rng: StdRng,
    config: FaultConfig,
}

impl<T: Send> Bolt<T> for ChaosBolt<T> {
    fn prepare(&mut self, ctx: BoltContext) {
        self.inner.prepare(ctx);
    }

    fn process(&mut self, msg: T, emitter: &mut dyn crate::runtime::Emitter<T>) {
        if let Some(d) = self.config.delay {
            INJECTED_LATENCY.set(INJECTED_LATENCY.get() + 1);
            std::thread::sleep(d);
        }
        if self.config.panic_p > 0.0 && self.rng.random_bool(self.config.panic_p) {
            INJECTED_PANICS.set(INJECTED_PANICS.get() + 1);
            panic!("chaos: injected panic");
        }
        self.inner.process(msg, emitter);
    }

    fn finish(&mut self, emitter: &mut dyn crate::runtime::Emitter<T>) {
        self.inner.finish(emitter);
    }

    // Durability passes through to the wrapped bolt: fault injection must
    // not cost a task its persisted state.
    fn snapshot_state(&mut self) -> Option<Vec<u8>> {
        self.inner.snapshot_state()
    }

    fn drain_changelog(&mut self, out: &mut Vec<Vec<u8>>) {
        self.inner.drain_changelog(out);
    }

    fn restore_state(&mut self, snapshot: Option<&[u8]>, changelog: &[Vec<u8>]) {
        self.inner.restore_state(snapshot, changelog);
    }
}

/// Wraps a bolt factory so every produced task is a [`ChaosBolt`].
///
/// Each task gets its own RNG stream, re-derived on every factory
/// invocation — a restarted task draws a fresh schedule instead of
/// replaying the panic that killed it, which would otherwise pin an
/// unlucky task in a panic loop.
pub fn chaos_wrap<T: Send + 'static>(
    factory: impl Fn(usize) -> Box<dyn Bolt<T>> + Send + Sync + 'static,
    config: FaultConfig,
) -> impl Fn(usize) -> Box<dyn Bolt<T>> + Send + Sync + 'static {
    let incarnation = AtomicU64::new(0);
    move |task| {
        let inc = incarnation.fetch_add(1, Ordering::Relaxed);
        let rng = config.rng_for((task as u64) ^ (inc << 24));
        Box::new(ChaosBolt { inner: factory(task), rng, config })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Emitter;

    struct CountingBolt(u64);
    impl Bolt<u64> for CountingBolt {
        fn process(&mut self, msg: u64, _e: &mut dyn Emitter<u64>) {
            self.0 += msg;
        }
    }

    struct NullEmitter;
    impl Emitter<u64> for NullEmitter {
        fn emit(&mut self, _msg: u64) {}
        fn emit_direct(&mut self, _task: usize, _msg: u64) {}
    }

    #[test]
    fn zero_probabilities_never_interfere() {
        let factory = chaos_wrap(|_| Box::new(CountingBolt(0)), FaultConfig::default());
        let mut bolt = factory(0);
        let mut e = NullEmitter;
        for i in 0..1000 {
            bolt.process(i, &mut e);
        }
    }

    #[test]
    fn injected_panics_are_probabilistic_and_seeded() {
        let config = FaultConfig { panic_p: 0.05, seed: 7, ..FaultConfig::default() };
        let run = || {
            let factory = chaos_wrap(|_| Box::new(CountingBolt(0)), config);
            let mut bolt = factory(0);
            let mut survived = 0u32;
            for i in 0..1000 {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    bolt.process(i, &mut NullEmitter)
                }));
                if r.is_ok() {
                    survived += 1;
                }
            }
            survived
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same panic schedule");
        assert!(a < 1000, "5% panic rate must fire over 1000 tuples");
        assert!(a > 800, "panic rate must stay near 5%");
    }

    #[test]
    fn restart_incarnations_draw_fresh_schedules() {
        let config = FaultConfig { panic_p: 0.5, seed: 3, ..FaultConfig::default() };
        let factory = chaos_wrap(|_| Box::new(CountingBolt(0)), config);
        // Two incarnations of task 0: their first draws must not be
        // forever identical (else a restarted task replays its crash).
        let first_draws: Vec<bool> = (0..32)
            .map(|_| {
                let mut bolt = factory(0);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    bolt.process(1, &mut NullEmitter)
                }))
                .is_err()
            })
            .collect();
        assert!(first_draws.iter().any(|&p| p), "some incarnation panics");
        assert!(!first_draws.iter().all(|&p| p), "not every incarnation panics");
    }
}
