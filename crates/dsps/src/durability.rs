//! Durable bolt state: periodic snapshots plus an append-only changelog.
//!
//! Modeled on the snapshot/commitlog split of production stream stores:
//! each bolt task owns one directory holding a `snapshot.bin` (the full
//! serialized state as of some point) and a `changelog.bin` (CRC-framed
//! delta records appended since that snapshot). Recovery is replay:
//! restore the snapshot, then apply the changelog records in order.
//!
//! # On-disk format
//!
//! Both files are sequences of frames:
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! The CRC is the IEEE 802.3 polynomial over the payload only. A frame
//! whose length field runs past the end of the file, or whose CRC does
//! not match, marks the *torn tail* of an interrupted write: everything
//! before it is valid, everything from it on is discarded, and
//! [`StateStore::open`] truncates the changelog back to the valid prefix
//! so the next append starts from a clean boundary.
//!
//! # Compaction
//!
//! A snapshot writes the full state to `snapshot.tmp`, renames it over
//! `snapshot.bin` (atomic on POSIX), and then truncates the changelog:
//! the snapshot subsumes every delta before it. The changelog between
//! snapshots is bounded by [`DurabilityConfig::snapshot_every`] records.
//!
//! # Wiring
//!
//! Setting [`RuntimeConfig::durability`](crate::runtime::RuntimeConfig)
//! gives every bolt task a [`StateStore`]. After each processed tuple the
//! runtime drains the bolt's changelog records
//! ([`Bolt::drain_changelog`](crate::topology::Bolt::drain_changelog))
//! into the store, snapshots
//! ([`Bolt::snapshot_state`](crate::topology::Bolt::snapshot_state)) on
//! the configured cadence and at end-of-stream, and on any start —
//! fresh submit or supervised post-panic restart — hands the recovered
//! state back through
//! [`Bolt::restore_state`](crate::topology::Bolt::restore_state).
//! Stateless bolts keep the default no-op hooks and pay nothing but an
//! empty drain per tuple.

use crate::error::DspsError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE 802.3, reflected) over `data` — the frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Durability parameters, opt-in via
/// [`RuntimeConfig::durability`](crate::runtime::RuntimeConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Root directory; each bolt task persists under
    /// `<dir>/<component>-<task>/`.
    pub dir: PathBuf,
    /// Changelog records accumulated before the runtime takes the next
    /// snapshot (and compacts the changelog). Also the bound on replay
    /// length at recovery. 0 behaves as 1.
    pub snapshot_every: u64,
    /// Fsync file data on every snapshot (appends are flushed but not
    /// synced either way — the CRC framing bounds the damage of a torn
    /// append to the tail record).
    pub fsync: bool,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the default cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { dir: dir.into(), snapshot_every: 1024, fsync: false }
    }
}

/// Appends one CRC-framed record to a writer.
fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Decodes the valid frame prefix of `bytes`: the frames that parse and
/// checksum, plus the byte length of that prefix. Anything past the
/// returned length is a torn or corrupt tail.
pub fn read_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else { break };
        if crc32(payload) != crc {
            break;
        }
        frames.push(payload.to_vec());
        pos += 8 + len;
    }
    (frames, pos)
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> DspsError {
    DspsError::Durability { path: path.display().to_string(), reason: format!("{op}: {e}") }
}

/// A recovered task state: the latest snapshot (if any) plus the
/// changelog records appended after it, in append order.
pub type RecoveredState = (Option<Vec<u8>>, Vec<Vec<u8>>);

/// One bolt task's durable state: `snapshot.bin` + `changelog.bin` under
/// a per-(component, task) directory.
pub struct StateStore {
    dir: PathBuf,
    changelog: File,
    snapshot_every: u64,
    fsync: bool,
    records_since_snapshot: u64,
    /// Torn-tail bytes truncated away at open (0 on a clean log); the
    /// runtime reports them to the flight recorder.
    truncated_bytes: u64,
    /// State found on disk at open, consumed once by [`take_recovered`].
    ///
    /// [`take_recovered`]: StateStore::take_recovered
    recovered: Option<RecoveredState>,
}

impl StateStore {
    /// Opens (or creates) the store for one bolt task, reading any prior
    /// snapshot and replaying the changelog's valid prefix. A torn or
    /// corrupt changelog tail is truncated away here, so appends resume
    /// from a clean frame boundary.
    pub fn open(config: &DurabilityConfig, component: &str, task: usize) -> Result<Self, DspsError> {
        let dir = config.dir.join(format!("{component}-{task}"));
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "create_dir_all", e))?;

        let snap_path = dir.join("snapshot.bin");
        let snapshot = match std::fs::read(&snap_path) {
            Ok(bytes) => {
                // Written atomically via tmp+rename, but still validated:
                // a snapshot that fails its CRC is ignored wholesale (the
                // changelog was truncated when it was taken, so a corrupt
                // snapshot means recovery restarts empty rather than
                // restoring garbage).
                let (frames, _) = read_frames(&bytes);
                frames.into_iter().next()
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err(&snap_path, "read", e)),
        };

        let log_path = dir.join("changelog.bin");
        let mut changelog = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| io_err(&log_path, "open", e))?;
        let mut bytes = Vec::new();
        changelog.read_to_end(&mut bytes).map_err(|e| io_err(&log_path, "read", e))?;
        let (replayed, valid_len) = read_frames(&bytes);
        let truncated_bytes = (bytes.len() - valid_len) as u64;
        if valid_len < bytes.len() {
            // Torn tail from an interrupted append: drop it.
            changelog.set_len(valid_len as u64).map_err(|e| io_err(&log_path, "truncate", e))?;
            changelog
                .seek(std::io::SeekFrom::End(0))
                .map_err(|e| io_err(&log_path, "seek", e))?;
        }

        let records_since_snapshot = replayed.len() as u64;
        let recovered = if snapshot.is_some() || !replayed.is_empty() {
            Some((snapshot, replayed))
        } else {
            None
        };
        Ok(StateStore {
            dir,
            changelog,
            snapshot_every: config.snapshot_every.max(1),
            fsync: config.fsync,
            records_since_snapshot,
            truncated_bytes,
            recovered,
        })
    }

    /// Torn-tail bytes truncated from the changelog at open (0 when the
    /// log was clean).
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated_bytes
    }

    /// The state found on disk at open — `(snapshot, changelog records)`
    /// — or `None` when the store was empty. Consumed by the first call;
    /// the runtime hands it to [`Bolt::restore_state`] before the first
    /// tuple.
    ///
    /// [`Bolt::restore_state`]: crate::topology::Bolt::restore_state
    pub fn take_recovered(&mut self) -> Option<RecoveredState> {
        self.recovered.take()
    }

    /// Appends one changelog record (flushed, not synced).
    pub fn append(&mut self, record: &[u8]) -> Result<(), DspsError> {
        let path = self.dir.join("changelog.bin");
        write_frame(&mut self.changelog, record).map_err(|e| io_err(&path, "append", e))?;
        self.changelog.flush().map_err(|e| io_err(&path, "flush", e))?;
        self.records_since_snapshot += 1;
        Ok(())
    }

    /// Whether the changelog has grown enough that the runtime should take
    /// the next snapshot.
    pub fn snapshot_due(&self) -> bool {
        self.records_since_snapshot >= self.snapshot_every
    }

    /// The configured snapshot cadence.
    pub fn snapshot_every(&self) -> u64 {
        self.snapshot_every
    }

    /// Writes a full-state snapshot (tmp file + atomic rename) and
    /// compacts: the changelog truncates to empty, since the snapshot
    /// subsumes every record before it.
    pub fn snapshot(&mut self, state: &[u8]) -> Result<(), DspsError> {
        let tmp = self.dir.join("snapshot.tmp");
        let snap = self.dir.join("snapshot.bin");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, "create", e))?;
            write_frame(&mut f, state).map_err(|e| io_err(&tmp, "write", e))?;
            if self.fsync {
                f.sync_data().map_err(|e| io_err(&tmp, "fsync", e))?;
            }
        }
        std::fs::rename(&tmp, &snap).map_err(|e| io_err(&snap, "rename", e))?;
        let log_path = self.dir.join("changelog.bin");
        self.changelog.set_len(0).map_err(|e| io_err(&log_path, "truncate", e))?;
        self.changelog
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err(&log_path, "seek", e))?;
        self.records_since_snapshot = 0;
        Ok(())
    }

    /// Re-reads the durable state as of now — last snapshot plus the
    /// changelog records since — for restoring a *supervised restart*
    /// mid-run (the open-time recovery was already consumed).
    pub fn read_current(&mut self) -> Result<RecoveredState, DspsError> {
        let snap_path = self.dir.join("snapshot.bin");
        let snapshot = match std::fs::read(&snap_path) {
            Ok(bytes) => read_frames(&bytes).0.into_iter().next(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err(&snap_path, "read", e)),
        };
        let log_path = self.dir.join("changelog.bin");
        let bytes = std::fs::read(&log_path).map_err(|e| io_err(&log_path, "read", e))?;
        let (records, _) = read_frames(&bytes);
        Ok((snapshot, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tms-durability-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(tag: &str) -> DurabilityConfig {
        DurabilityConfig { dir: tmp_dir(tag), snapshot_every: 4, fsync: false }
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let c = cfg("roundtrip");
        {
            let mut s = StateStore::open(&c, "bolt", 0).unwrap();
            assert!(s.take_recovered().is_none(), "fresh store has no state");
            s.append(b"one").unwrap();
            s.append(b"two").unwrap();
        }
        let mut s = StateStore::open(&c, "bolt", 0).unwrap();
        let (snap, log) = s.take_recovered().unwrap();
        assert!(snap.is_none());
        assert_eq!(log, vec![b"one".to_vec(), b"two".to_vec()]);
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn snapshot_compacts_changelog() {
        let c = cfg("compact");
        {
            let mut s = StateStore::open(&c, "bolt", 1).unwrap();
            s.append(b"a").unwrap();
            s.append(b"b").unwrap();
            s.snapshot(b"state-after-b").unwrap();
            s.append(b"c").unwrap();
        }
        let log_len = std::fs::metadata(c.dir.join("bolt-1/changelog.bin")).unwrap().len();
        assert_eq!(log_len, 8 + 1, "compaction left exactly one framed record");
        let mut s = StateStore::open(&c, "bolt", 1).unwrap();
        let (snap, log) = s.take_recovered().unwrap();
        assert_eq!(snap.as_deref(), Some(&b"state-after-b"[..]));
        assert_eq!(log, vec![b"c".to_vec()]);
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn snapshot_cadence() {
        let c = cfg("cadence");
        let mut s = StateStore::open(&c, "bolt", 0).unwrap();
        for i in 0..3 {
            s.append(&[i]).unwrap();
            assert!(!s.snapshot_due());
        }
        s.append(&[3]).unwrap();
        assert!(s.snapshot_due(), "snapshot_every=4 reached");
        s.snapshot(b"s").unwrap();
        assert!(!s.snapshot_due());
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let c = cfg("torn");
        {
            let mut s = StateStore::open(&c, "bolt", 0).unwrap();
            s.append(b"good-1").unwrap();
            s.append(b"good-2").unwrap();
        }
        // Simulate a crash mid-append: a partial frame at the tail.
        let log = c.dir.join("bolt-0/changelog.bin");
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&[9, 0, 0, 0, 0xAA, 0xBB]).unwrap(); // header cut short
        drop(f);
        let mut s = StateStore::open(&c, "bolt", 0).unwrap();
        let (_, recs) = s.take_recovered().unwrap();
        assert_eq!(recs, vec![b"good-1".to_vec(), b"good-2".to_vec()]);
        // The torn bytes are gone: a fresh append lands on a clean boundary.
        s.append(b"good-3").unwrap();
        drop(s);
        let mut s = StateStore::open(&c, "bolt", 0).unwrap();
        let (_, recs) = s.take_recovered().unwrap();
        assert_eq!(recs.len(), 3);
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn corrupt_record_truncates_rest() {
        let c = cfg("corrupt");
        {
            let mut s = StateStore::open(&c, "bolt", 0).unwrap();
            s.append(b"keep").unwrap();
            s.append(b"flip").unwrap();
            s.append(b"lost").unwrap();
        }
        // Flip one payload byte of the middle record (frame 2 starts at
        // 8+4; its payload at 8+4+8).
        let log = c.dir.join("bolt-0/changelog.bin");
        let mut bytes = std::fs::read(&log).unwrap();
        bytes[8 + 4 + 8] ^= 0xFF;
        std::fs::write(&log, &bytes).unwrap();
        let mut s = StateStore::open(&c, "bolt", 0).unwrap();
        let (_, recs) = s.take_recovered().unwrap();
        assert_eq!(recs, vec![b"keep".to_vec()], "everything from the bad CRC on is dropped");
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn corrupt_snapshot_is_ignored() {
        let c = cfg("badsnap");
        {
            let mut s = StateStore::open(&c, "bolt", 0).unwrap();
            s.snapshot(b"full state").unwrap();
        }
        let snap = c.dir.join("bolt-0/snapshot.bin");
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&snap, &bytes).unwrap();
        let mut s = StateStore::open(&c, "bolt", 0).unwrap();
        assert!(s.take_recovered().is_none(), "a snapshot that fails its CRC must not restore");
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn read_current_sees_unconsumed_appends() {
        let c = cfg("current");
        let mut s = StateStore::open(&c, "bolt", 0).unwrap();
        s.snapshot(b"base").unwrap();
        s.append(b"delta").unwrap();
        let (snap, log) = s.read_current().unwrap();
        assert_eq!(snap.as_deref(), Some(&b"base"[..]));
        assert_eq!(log, vec![b"delta".to_vec()]);
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn empty_frame_roundtrip() {
        let c = cfg("empty");
        {
            let mut s = StateStore::open(&c, "bolt", 0).unwrap();
            s.append(b"").unwrap();
            s.append(b"x").unwrap();
        }
        let mut s = StateStore::open(&c, "bolt", 0).unwrap();
        let (_, recs) = s.take_recovered().unwrap();
        assert_eq!(recs, vec![Vec::new(), b"x".to_vec()]);
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    #[test]
    fn tasks_are_isolated() {
        let c = cfg("isolated");
        {
            let mut a = StateStore::open(&c, "bolt", 0).unwrap();
            let mut b = StateStore::open(&c, "bolt", 1).unwrap();
            a.append(b"from-0").unwrap();
            b.append(b"from-1").unwrap();
        }
        let mut a = StateStore::open(&c, "bolt", 0).unwrap();
        let (_, recs) = a.take_recovered().unwrap();
        assert_eq!(recs, vec![b"from-0".to_vec()]);
        let _ = std::fs::remove_dir_all(&c.dir);
    }
}
