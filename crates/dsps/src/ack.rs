//! The acker: Storm's XOR tuple-tree completion tracker (Section 2.1.1 of
//! the paper relies on Storm's "guaranteed message processing").
//!
//! Every spout root registers an entry. Each physical delivery derived
//! from that root XORs its fresh 64-bit tuple id into the entry *before*
//! the send, and XORs the same id again once the receiving task has
//! finished processing it. Ids pair up, so the accumulator returns to
//! zero exactly when every delivery in the tree has been produced and
//! processed — at which point the owning spout task is notified through
//! its completion channel and can drop the tuple from its pending buffer.
//!
//! The ordering argument for why a transient zero is impossible is
//! Storm's: a task registers all its output ids before acking its input
//! id, and an input id is always registered before the message is
//! delivered, so at any instant the accumulator holds the XOR of a
//! non-empty set of distinct pending ids until the true end of the tree.

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Instant;

/// The ack-operation interface executors and emitters talk to.
///
/// In a single process this is the [`Acker`] itself. In a multi-process
/// topology ([`net`](crate::net)) only the coordinator hosts the real
/// acker; workers hold a forwarder that frames each operation onto the
/// coordinator link. The XOR algebra is location-independent — operations
/// commute and the accumulator only reaches zero at the true end of the
/// tree — so forwarding introduces latency but no correctness change,
/// with one caveat the runtime designs around: `register` must reach the
/// acker before any `xor` for the same root, which is guaranteed by
/// pinning spout tasks to the coordinator process (registration is then a
/// direct call; a late registration racing a forwarded xor would orphan
/// the tree until the ack-timeout replay heals it).
pub(crate) trait AckSink: Send + Sync {
    fn register(&self, root: u64, spout: usize);
    fn xor(&self, root: u64, id: u64);
    fn xor_batch(&self, pairs: &[(u64, u64)]);
    fn seal(&self, root: u64);
    fn abandon(&self, root: u64);
}

impl AckSink for Acker {
    fn register(&self, root: u64, spout: usize) {
        Acker::register(self, root, spout);
    }
    fn xor(&self, root: u64, id: u64) {
        Acker::xor(self, root, id);
    }
    fn xor_batch(&self, pairs: &[(u64, u64)]) {
        Acker::xor_batch(self, pairs);
    }
    fn seal(&self, root: u64) {
        Acker::seal(self, root);
    }
    fn abandon(&self, root: u64) {
        Acker::abandon(self, root);
    }
}

#[derive(Debug)]
struct AckEntry {
    /// XOR of all registered-but-unacked delivery ids.
    xor: u64,
    /// Index of the owning spout task's completion channel.
    spout: usize,
}

/// The central completion tracker, shared by every emitter and executor.
///
/// A single mutex-guarded map is deliberate: correctness first, and the
/// critical section is a few arithmetic ops. Sharding by `root` hash is
/// the obvious next step if it ever shows up in profiles.
pub(crate) struct Acker {
    entries: Mutex<HashMap<u64, AckEntry>>,
    /// One unbounded completion channel per spout task, indexed by the
    /// spout task's global id. Unbounded so completing a tree can never
    /// block a bolt executor against a stalled spout. Each notification
    /// carries the instant the tree completed, so end-to-end latency is
    /// not inflated by however long the spout takes to drain the channel.
    completions: Vec<Sender<(u64, Instant)>>,
}

impl Acker {
    /// Creates a tracker delivering completions on the given channels.
    pub fn new(completions: Vec<Sender<(u64, Instant)>>) -> Self {
        Acker { entries: Mutex::new(HashMap::new()), completions }
    }

    /// Registers a fresh root owned by spout task `spout`.
    pub fn register(&self, root: u64, spout: usize) {
        self.entries.lock().insert(root, AckEntry { xor: 0, spout });
    }

    /// XORs one delivery id into the root's accumulator: called once when
    /// the delivery is produced and once when it has been processed. A
    /// zero accumulator completes the tree. Unknown roots (abandoned by a
    /// replay racing a late ack) are ignored.
    pub fn xor(&self, root: u64, id: u64) {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.get_mut(&root) {
            e.xor ^= id;
            if e.xor == 0 {
                let e = entries.remove(&root).expect("entry just accessed");
                drop(entries);
                let _ = self.completions[e.spout].send((root, Instant::now()));
            }
        }
    }

    /// Applies many (root, combined-id) pairs under a single lock
    /// acquisition — the batched data plane's amortization of the acker.
    /// Each pair's id may itself be the XOR of several delivery ids for
    /// that root (XOR is associative, so folding ids before the call is
    /// equivalent to applying them one by one; it can only *skip* transient
    /// intermediate accumulator states, never invent a spurious zero).
    /// Completion notifications are sent after the lock is released.
    pub fn xor_batch(&self, pairs: &[(u64, u64)]) {
        if pairs.is_empty() {
            return;
        }
        let mut completed: Vec<(usize, u64)> = Vec::new();
        {
            let mut entries = self.entries.lock();
            for &(root, id) in pairs {
                if let Some(e) = entries.get_mut(&root) {
                    e.xor ^= id;
                    if e.xor == 0 {
                        let e = entries.remove(&root).expect("entry just accessed");
                        completed.push((e.spout, root));
                    }
                }
            }
        }
        let done = Instant::now();
        for (spout, root) in completed {
            let _ = self.completions[spout].send((root, done));
        }
    }

    /// Completes the root if nothing was ever registered under it — the
    /// spout emitted into a topology with no matching route, so there is
    /// no tree to wait for. Also catches a tree that fully completed
    /// between the spout's sends and this call.
    pub fn seal(&self, root: u64) {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.get(&root) {
            if e.xor == 0 {
                let e = entries.remove(&root).expect("entry just accessed");
                drop(entries);
                let _ = self.completions[e.spout].send((root, Instant::now()));
            }
        }
    }

    /// Forgets a root (timeout replay or retry exhaustion). Late acks for
    /// the abandoned tree become no-ops.
    pub fn abandon(&self, root: u64) {
        self.entries.lock().remove(&root);
    }

    /// Number of in-flight roots (for tests).
    #[cfg(test)]
    pub fn in_flight(&self) -> usize {
        self.entries.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn acker() -> (Acker, crossbeam::channel::Receiver<(u64, Instant)>) {
        let (tx, rx) = unbounded();
        (Acker::new(vec![tx]), rx)
    }

    /// The completed root id, ignoring the completion timestamp.
    fn root_of(r: Result<(u64, Instant), crossbeam::channel::TryRecvError>) -> Option<u64> {
        r.ok().map(|(root, _)| root)
    }

    #[test]
    fn linear_tree_completes_when_every_hop_acks() {
        let (a, rx) = acker();
        a.register(100, 0);
        a.xor(100, 7); // spout → bolt1 delivery produced
        a.seal(100);
        assert!(rx.try_recv().is_err(), "tree still pending");
        a.xor(100, 9); // bolt1 → bolt2 delivery produced
        a.xor(100, 7); // bolt1 processed its input
        assert!(rx.try_recv().is_err(), "leaf still pending");
        a.xor(100, 9); // bolt2 processed its input
        assert_eq!(root_of(rx.try_recv()), Some(100));
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn fan_out_tree_waits_for_every_branch() {
        let (a, rx) = acker();
        a.register(1, 0);
        a.xor(1, 10);
        a.xor(1, 11); // two deliveries from the spout (All grouping)
        a.seal(1);
        a.xor(1, 10);
        assert!(rx.try_recv().is_err(), "second branch still pending");
        a.xor(1, 11);
        assert_eq!(root_of(rx.try_recv()), Some(1));
    }

    #[test]
    fn seal_completes_routeless_roots_immediately() {
        let (a, rx) = acker();
        a.register(5, 0);
        a.seal(5); // nothing was ever sent
        assert_eq!(root_of(rx.try_recv()), Some(5));
    }

    #[test]
    fn xor_batch_matches_sequential_application() {
        let (a, rx) = acker();
        a.register(1, 0);
        a.register(2, 0);
        // Root 1: two deliveries produced then acked as one combined value;
        // root 2: one delivery produced, acked in the same batch call.
        a.xor_batch(&[(1, 10 ^ 11), (2, 20)]);
        a.seal(1);
        a.seal(2);
        assert!(rx.try_recv().is_err(), "both trees still pending");
        a.xor_batch(&[(1, 10 ^ 11), (2, 20), (999, 5)]); // unknown root ignored
        assert_eq!(root_of(rx.try_recv()), Some(1));
        assert_eq!(root_of(rx.try_recv()), Some(2));
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn abandoned_roots_ignore_late_acks() {
        let (a, rx) = acker();
        a.register(5, 0);
        a.xor(5, 3);
        a.abandon(5);
        a.xor(5, 3); // late ack of the abandoned tree
        assert!(rx.try_recv().is_err());
        assert_eq!(a.in_flight(), 0);
    }
}
