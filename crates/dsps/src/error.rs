//! Error types for the stream processing runtime.

use std::fmt;

/// Errors produced by the stream processing runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum DspsError {
    /// A component name was declared twice.
    DuplicateComponent(String),
    /// A subscription referenced an unknown component.
    UnknownComponent(String),
    /// The topology graph has a cycle.
    Cycle {
        /// A component on the cycle.
        involving: String,
    },
    /// A component was declared with impossible parallelism.
    InvalidParallelism {
        /// The component.
        component: String,
        /// What went wrong.
        reason: String,
    },
    /// The topology has no spout, or a bolt has no subscription.
    InvalidTopology {
        /// What went wrong.
        reason: String,
    },
    /// The cluster was configured with impossible parameters.
    InvalidCluster {
        /// What went wrong.
        reason: String,
    },
    /// Not enough worker slots for the requested workers.
    InsufficientSlots {
        /// Workers requested.
        requested: usize,
        /// Slots available.
        available: usize,
    },
    /// A task panicked at runtime.
    TaskPanicked {
        /// The component.
        component: String,
        /// The task index.
        task: usize,
        /// The panic message.
        reason: String,
    },
    /// A supervised task kept panicking after exhausting its restart
    /// budget ([`ReliabilityConfig::max_task_restarts`](crate::runtime::ReliabilityConfig)).
    TaskRestartsExhausted {
        /// The component.
        component: String,
        /// The task index.
        task: usize,
        /// Restarts attempted before giving up.
        restarts: u32,
        /// The final panic message.
        reason: String,
    },
    /// A durable state store failed an I/O operation
    /// ([`durability`](crate::durability)).
    Durability {
        /// The file or directory involved.
        path: String,
        /// Operation and OS error text.
        reason: String,
    },
    /// The metrics exposition endpoint could not bind its socket
    /// ([`MonitorConfig::expose`](crate::metrics::MonitorConfig)).
    ExpositionBind {
        /// The requested loopback port (0 = ephemeral).
        port: u16,
        /// The OS error text.
        reason: String,
    },
    /// A wire frame failed validation (bad length, checksum mismatch,
    /// unknown tag or truncated payload) — see
    /// [`transport`](crate::transport).
    Frame {
        /// What went wrong.
        reason: String,
    },
    /// A transport-level socket operation failed.
    Transport {
        /// The peer involved (address or worker label).
        peer: String,
        /// Operation and OS error text.
        reason: String,
    },
    /// A worker process failed: could not be spawned, failed its
    /// handshake, or disconnected before reporting completion.
    Worker {
        /// The worker index.
        worker: usize,
        /// What went wrong.
        reason: String,
    },
    /// XML topology text failed to parse.
    XmlParse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// XML topology was well-formed but semantically invalid.
    XmlInvalid {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for DspsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspsError::DuplicateComponent(c) => write!(f, "duplicate component: {c}"),
            DspsError::UnknownComponent(c) => write!(f, "unknown component: {c}"),
            DspsError::Cycle { involving } => {
                write!(f, "topology contains a cycle involving {involving}")
            }
            DspsError::InvalidParallelism { component, reason } => {
                write!(f, "invalid parallelism for {component}: {reason}")
            }
            DspsError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            DspsError::InvalidCluster { reason } => write!(f, "invalid cluster: {reason}"),
            DspsError::InsufficientSlots { requested, available } => {
                write!(f, "requested {requested} workers but only {available} slots exist")
            }
            DspsError::TaskPanicked { component, task, reason } => {
                write!(f, "task {component}[{task}] panicked: {reason}")
            }
            DspsError::TaskRestartsExhausted { component, task, restarts, reason } => {
                write!(
                    f,
                    "task {component}[{task}] still panicking after {restarts} restarts: {reason}"
                )
            }
            DspsError::Durability { path, reason } => {
                write!(f, "durable state store failed at {path}: {reason}")
            }
            DspsError::ExpositionBind { port, reason } => {
                write!(f, "failed to bind metrics endpoint on 127.0.0.1:{port}: {reason}")
            }
            DspsError::Frame { reason } => write!(f, "invalid wire frame: {reason}"),
            DspsError::Transport { peer, reason } => {
                write!(f, "transport failure with {peer}: {reason}")
            }
            DspsError::Worker { worker, reason } => {
                write!(f, "worker {worker} failed: {reason}")
            }
            DspsError::XmlParse { line, reason } => {
                write!(f, "XML parse error at line {line}: {reason}")
            }
            DspsError::XmlInvalid { reason } => write!(f, "invalid XML topology: {reason}"),
        }
    }
}

impl std::error::Error for DspsError {}
