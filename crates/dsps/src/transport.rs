//! Zero-copy framed wire transport: the byte layer under the
//! multi-process runtime ([`net`](crate::net)).
//!
//! # Frame format
//!
//! Every message on a worker link is one frame:
//!
//! ```text
//! [len: u32 LE][crc32(tag + payload): u32 LE][tag: u8][payload: len-1 bytes]
//! ```
//!
//! `len` counts the tag byte plus the payload, so a frame occupies
//! `8 + len` bytes on the wire. The CRC is the same IEEE 802.3 polynomial
//! [`durability`](crate::durability) uses for its on-disk records — one
//! checksum discipline for everything that crosses a trust boundary. The
//! tag is a versioned message-type byte owned by the session layer
//! ([`net`](crate::net)); this module treats it as opaque.
//!
//! # Zero-copy discipline
//!
//! Encoding writes header + tag + payload into one [`BytesMut`] and
//! freezes it: the writer thread sends that view with a single
//! `write_all` and hands the allocation back to a [`BufferPool`], so the
//! steady state allocates nothing per frame. Decoding accumulates socket
//! reads in a [`BytesMut`] and yields each payload as a [`Bytes`] *view*
//! into the receive buffer ([`BytesMut::split_to`]) — torn and coalesced
//! reads reassemble without ever copying a payload byte.
//!
//! # Robustness
//!
//! A corrupt length field cannot be distinguished from a corrupt stream,
//! so the decoder rejects frames whose length is zero or exceeds
//! [`MAX_FRAME`] with a typed [`DspsError::Frame`] instead of attempting
//! resynchronization (TCP gives us no record boundaries to resync on; the
//! session layer tears the link down and lets the reliability layer
//! heal). CRC mismatches are rejected the same way.

use crate::error::DspsError;
use bytes::{Bytes, BytesMut};

pub use bytes::BufferPool;

/// Upper bound on the body (`tag + payload`) of a single frame: 64 MiB.
///
/// Large enough for any micro-batch the runtime ships (batches are
/// bounded by `BatchConfig::max_batch`), small enough that a corrupt
/// length field cannot make the decoder buffer gigabytes before the CRC
/// exposes the corruption.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Bytes of frame header preceding the body: `len` + `crc`.
const HEADER: usize = 8;

/// Encodes one frame into `buf` (which must be empty — acquire it from a
/// [`BufferPool`]) and freezes it into an immutable view ready for a
/// single `write_all`. `fill` writes the payload; the header is patched
/// in afterwards, so the payload is encoded exactly once and never
/// copied.
///
/// # Panics
/// When the body exceeds [`MAX_FRAME`] — an encoder-side bug, not a
/// network condition.
pub fn encode_frame(mut buf: BytesMut, tag: u8, fill: impl FnOnce(&mut BytesMut)) -> Bytes {
    debug_assert!(buf.is_empty(), "encode_frame needs a fresh buffer");
    buf.put_u32_le(0); // len, patched below
    buf.put_u32_le(0); // crc, patched below
    buf.put_u8(tag);
    fill(&mut buf);
    let body_len = buf.len() - HEADER;
    assert!(body_len <= MAX_FRAME, "frame body of {body_len} bytes exceeds MAX_FRAME");
    let m = buf.as_mut();
    let crc = crate::durability::crc32(&m[HEADER..]);
    m[0..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    m[4..8].copy_from_slice(&crc.to_le_bytes());
    buf.freeze()
}

/// One decoded frame: the session-layer tag and a zero-copy payload view
/// into the receive buffer.
#[derive(Debug)]
pub struct Frame {
    pub tag: u8,
    pub payload: Bytes,
}

/// Incremental frame decoder over an accumulating receive buffer.
///
/// Feed it socket reads with [`push`](FrameDecoder::push) in whatever
/// sizes the kernel hands back; [`next`](FrameDecoder::next) yields
/// complete frames in order, `Ok(None)` when more bytes are needed, and a
/// typed error on corruption (after which the decoder is poisoned — the
/// session layer must drop the link).
pub struct FrameDecoder {
    buf: BytesMut,
    max_frame: usize,
}

impl FrameDecoder {
    pub fn new() -> Self {
        FrameDecoder { buf: BytesMut::new(), max_frame: MAX_FRAME }
    }

    /// A decoder with a custom frame bound (tests).
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameDecoder { buf: BytesMut::new(), max_frame }
    }

    /// Appends raw socket bytes to the receive buffer.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.put_slice(data);
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next complete frame, if one is fully buffered.
    ///
    /// Deliberately named like `Iterator::next` but fallible — the
    /// `Result<Option<_>>` shape cannot implement the trait.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, DspsError> {
        if self.buf.len() < HEADER {
            return Ok(None);
        }
        let head = &self.buf[..HEADER];
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4-byte slice")) as usize;
        let crc = u32::from_le_bytes(head[4..8].try_into().expect("4-byte slice"));
        if len == 0 {
            return Err(DspsError::Frame { reason: "zero-length frame body".into() });
        }
        if len > self.max_frame {
            return Err(DspsError::Frame {
                reason: format!("frame body of {len} bytes exceeds the {} byte bound", self.max_frame),
            });
        }
        if self.buf.len() < HEADER + len {
            return Ok(None);
        }
        self.buf.advance(HEADER);
        let body = self.buf.split_to(len);
        if crate::durability::crc32(&body) != crc {
            return Err(DspsError::Frame { reason: "frame checksum mismatch".into() });
        }
        let tag = body[0];
        let payload = body.slice(1..body.len());
        Ok(Some(Frame { tag, payload }))
    }
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

/// A bounds-checked read cursor over a frame payload.
///
/// Every accessor returns [`DspsError::Frame`] on truncation instead of
/// panicking — a malformed payload from a peer must never take the
/// process down.
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DspsError> {
        if self.remaining() < n {
            return Err(DspsError::Frame {
                reason: format!("payload truncated: wanted {n} bytes, {} left", self.remaining()),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, DspsError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32_le(&mut self) -> Result<u32, DspsError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    pub fn u64_le(&mut self) -> Result<u64, DspsError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    pub fn i64_le(&mut self) -> Result<i64, DspsError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    pub fn f64_le(&mut self) -> Result<f64, DspsError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// A length-prefixed byte string (`u32 LE` count + bytes).
    pub fn bytes(&mut self) -> Result<&'a [u8], DspsError> {
        let n = self.u32_le()? as usize;
        self.take(n)
    }

    /// A length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DspsError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| DspsError::Frame { reason: "invalid UTF-8 in wire string".into() })
    }
}

/// Manual wire encoding for a message type.
///
/// The vendored serde shim can neither parse nor derive, so everything
/// that crosses a worker link implements this by hand, in the same style
/// as [`durability`](crate::durability)'s record framing: fixed-width LE
/// integers, `u32` length prefixes, field order is the format version.
pub trait WireCodec: Sized {
    fn encode(&self, buf: &mut BytesMut);
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError>;
}

impl WireCodec for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        r.u8()
    }
}

impl WireCodec for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        r.u32_le()
    }
}

impl WireCodec for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        r.u64_le()
    }
}

impl WireCodec for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        r.i64_le()
    }
}

impl WireCodec for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        r.f64_le()
    }
}

impl WireCodec for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(r.u8()? != 0)
    }
}

impl WireCodec for usize {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(r.u64_le()? as usize)
    }
}

impl WireCodec for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        r.string()
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        let n = r.u32_le()? as usize;
        // Guard the pre-allocation against a hostile count: each element
        // needs at least one byte of payload.
        if n > r.remaining() {
            return Err(DspsError::Frame {
                reason: format!("sequence claims {n} items with {} bytes left", r.remaining()),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            k => Err(DspsError::Frame { reason: format!("invalid Option discriminant {k}") }),
        }
    }
}

impl WireCodec for std::time::Duration {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.as_secs());
        buf.put_u32_le(self.subsec_nanos());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        let secs = r.u64_le()?;
        let nanos = r.u32_le()?;
        if nanos >= 1_000_000_000 {
            return Err(DspsError::Frame { reason: format!("invalid Duration nanos {nanos}") });
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Encodes a value as a standalone frame payload (convenience for
/// control messages that are a single codec value).
pub fn encode_value_frame<T: WireCodec>(pool: &BufferPool, tag: u8, value: &T) -> Bytes {
    encode_frame(pool.acquire(), tag, |buf| value.encode(buf))
}

/// Decodes a frame payload that is a single codec value, requiring the
/// payload to be fully consumed.
pub fn decode_value<T: WireCodec>(payload: &[u8]) -> Result<T, DspsError> {
    let mut r = WireReader::new(payload);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(DspsError::Frame {
            reason: format!("{} trailing bytes after payload", r.remaining()),
        });
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8, payload: &[u8]) -> Bytes {
        encode_frame(BytesMut::new(), tag, |b| b.put_slice(payload))
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = frame(7, b"hello world");
        let mut dec = FrameDecoder::new();
        dec.push(&f);
        let got = dec.next().unwrap().expect("one frame");
        assert_eq!(got.tag, 7);
        assert_eq!(&got.payload[..], b"hello world");
        assert!(dec.next().unwrap().is_none());
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn torn_and_coalesced_reads_reassemble() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&frame(1, b"alpha"));
        wire.extend_from_slice(&frame(2, b""));
        wire.extend_from_slice(&frame(3, &[0u8; 300]));
        // One byte at a time: worst-case torn reads.
        let mut dec = FrameDecoder::new();
        let mut tags = Vec::new();
        for b in &wire {
            dec.push(std::slice::from_ref(b));
            while let Some(f) = dec.next().unwrap() {
                tags.push((f.tag, f.payload.len()));
            }
        }
        assert_eq!(tags, vec![(1, 5), (2, 0), (3, 300)]);
        // Everything at once: coalesced.
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let mut tags = Vec::new();
        while let Some(f) = dec.next().unwrap() {
            tags.push((f.tag, f.payload.len()));
        }
        assert_eq!(tags, vec![(1, 5), (2, 0), (3, 300)]);
    }

    #[test]
    fn corrupt_crc_is_a_typed_error() {
        let f = frame(1, b"payload");
        let mut wire = f.to_vec();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        match dec.next() {
            Err(DspsError::Frame { reason }) => assert!(reason.contains("checksum")),
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        match dec.next() {
            Err(DspsError::Frame { reason }) => assert!(reason.contains("bound")),
            other => panic!("expected bound error, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert!(matches!(dec.next(), Err(DspsError::Frame { .. })));
    }

    #[test]
    fn payload_views_are_zero_copy_and_stable() {
        // Frames decoded earlier must stay valid while later pushes grow
        // the receive buffer (the aliasing contract with vendor bytes).
        let mut dec = FrameDecoder::new();
        dec.push(&frame(1, b"first"));
        let one = dec.next().unwrap().unwrap();
        dec.push(&frame(2, b"second"));
        let two = dec.next().unwrap().unwrap();
        assert_eq!(&one.payload[..], b"first");
        assert_eq!(&two.payload[..], b"second");
    }

    #[test]
    fn value_codecs_roundtrip() {
        let pool = BufferPool::default();
        let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "bb".into())];
        let f = encode_value_frame(&pool, 9, &v);
        let mut dec = FrameDecoder::new();
        dec.push(&f);
        let got = dec.next().unwrap().unwrap();
        assert_eq!(got.tag, 9);
        let back: Vec<(u64, String)> = decode_value(&got.payload).unwrap();
        assert_eq!(back, v);
        // Trailing garbage is an error, not a silent ignore.
        let mut with_junk = got.payload.to_vec();
        with_junk.push(0);
        assert!(matches!(
            decode_value::<Vec<(u64, String)>>(&with_junk),
            Err(DspsError::Frame { .. })
        ));
    }

    #[test]
    fn hostile_sequence_count_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        let frozen = buf.freeze();
        assert!(matches!(decode_value::<Vec<u64>>(&frozen), Err(DspsError::Frame { .. })));
    }

    #[test]
    fn option_and_duration_roundtrip() {
        let mut buf = BytesMut::new();
        Some(std::time::Duration::from_millis(1500)).encode(&mut buf);
        Option::<u64>::None.encode(&mut buf);
        let frozen = buf.freeze();
        let mut r = WireReader::new(&frozen);
        assert_eq!(
            Option::<std::time::Duration>::decode(&mut r).unwrap(),
            Some(std::time::Duration::from_millis(1500))
        );
        assert_eq!(Option::<u64>::decode(&mut r).unwrap(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn pooled_encode_recycles_after_write() {
        let pool = BufferPool::new(8);
        let f = encode_value_frame(&pool, 1, &42u64);
        // "Written to the socket": the view drains, the allocation goes
        // back on the shelf.
        assert!(pool.recycle(f));
        assert_eq!(pool.idle(), 1);
        let f2 = encode_value_frame(&pool, 1, &43u64);
        assert_eq!(pool.idle(), 0, "encode reused the pooled allocation");
        drop(f2);
    }

    /// Decodes the whole byte stream fed in the given chunks.
    fn decode_chunked<'a>(
        chunks: impl Iterator<Item = &'a [u8]>,
    ) -> Vec<(u8, Vec<u8>)> {
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for chunk in chunks {
            dec.push(chunk);
            while let Some(f) = dec.next().expect("valid stream decodes") {
                out.push((f.tag, f.payload.to_vec()));
            }
        }
        assert_eq!(dec.pending(), 0, "a complete stream leaves nothing buffered");
        out
    }

    proptest::proptest! {
        /// The decoder is delivery-boundary oblivious: however the TCP
        /// layer tears or coalesces a valid frame stream, the frame
        /// sequence that comes out is identical. Exhaustive over *every*
        /// two-chunk split of each generated stream, plus an arbitrary
        /// multi-chunk partition.
        #[test]
        fn any_split_of_a_valid_stream_decodes_identically(
            frames in proptest::collection::vec(
                (0u8..=255, proptest::collection::vec(0u8..=255, 0..48)),
                0..5,
            ),
            cuts in proptest::collection::vec(0usize..4096, 0..8),
        ) {
            let mut wire = Vec::new();
            for (tag, payload) in &frames {
                wire.extend_from_slice(&frame(*tag, payload));
            }
            let expected: Vec<(u8, Vec<u8>)> =
                frames.iter().map(|(t, p)| (*t, p.clone())).collect();

            // Fully coalesced.
            proptest::prop_assert_eq!(
                &decode_chunked(std::iter::once(&wire[..])), &expected);
            // Every two-chunk split: a torn read at each byte boundary.
            for i in 0..=wire.len() {
                let (a, b) = wire.split_at(i);
                proptest::prop_assert_eq!(
                    &decode_chunked([a, b].into_iter()), &expected);
            }
            // An arbitrary multi-chunk partition (possibly empty chunks).
            let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (wire.len() + 1)).collect();
            bounds.push(0);
            bounds.push(wire.len());
            bounds.sort_unstable();
            proptest::prop_assert_eq!(
                &decode_chunked(bounds.windows(2).map(|w| &wire[w[0]..w[1]])),
                &expected);
        }
    }
}
