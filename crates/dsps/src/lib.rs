//! A distributed stream processing runtime — the from-scratch stand-in for
//! Apache Storm (Section 2.1.1 of the paper, Figure 1).
//!
//! Applications are *topologies*: directed acyclic graphs whose nodes are
//! **spouts** (input sources) and **bolts** (processing steps) and whose
//! edges carry a stream of messages under a *grouping* discipline
//! (shuffle, fields, all, or direct). Each component runs as a number of
//! **tasks** (instances of the user code) executed by a number of
//! **executors** (threads); when `tasks > executors` the extra tasks share
//! an executor pseudo-parallelly, exactly as in Figure 1. Executors are
//! packed into **worker processes**, which a round-robin scheduler places
//! on the **nodes** of a (simulated) cluster — the paper follows [35] in
//! using one worker per node, which is this crate's default.
//!
//! The runtime executes everything in-process with real threads and
//! bounded channels (so saturation behaves like a real deployment's
//! backpressure) and terminates by end-of-stream propagation once every
//! spout is exhausted. Delivery is at-most-once by default; enabling
//! [`runtime::ReliabilityConfig`] turns on Storm's guaranteed message
//! processing — an XOR tuple-tree acker ([`ack`]), spout-side replay of
//! timed-out tuples, and supervised restart of panicked bolt tasks — for
//! at-least-once delivery. A seeded fault injector ([`fault`]) exercises
//! that machinery with probabilistic panics, drops and latency.
//!
//! A Nimbus-style [`metrics`] monitor samples per-task throughput and
//! processing latency on a fixed window (the paper uses 40 s windows;
//! tests use shorter ones) — these are the two metrics every figure of the
//! evaluation section reports. Opt-in tracing ([`MonitorConfig::tracing`])
//! adds end-to-end completion latency histograms (spout emit →
//! tuple-tree completion, with p50/p95/p99) and per-channel queue-depth
//! gauges to every sampled window.
//!
//! Topologies can also be described in XML ([`xml`]), the usability layer
//! the paper adds on top of Storm's Java builder API.

mod ack;
pub mod durability;
pub mod elastic;
pub mod error;
pub mod fault;
pub mod flight;
pub mod grouping;
pub mod lineage;
pub mod metrics;
pub mod net;
pub mod runtime;
pub mod scheduler;
pub mod topology;
pub mod transport;
pub mod xml;

/// Re-exported so downstream crates can implement [`WireCodec`] (whose
/// methods take [`bytes::BytesMut`]) without depending on the vendored
/// `bytes` crate directly.
pub use bytes;
pub use durability::{DurabilityConfig, StateStore};
pub use elastic::{MigrationCoordinator, MigrationRequest, MigrationStats};
pub use error::DspsError;
pub use fault::{chaos_wrap, ChaosBolt, FaultConfig};
pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use grouping::{hash_key, Grouping, KeyHasher, StableSipHasher13};
pub use lineage::{
    CriticalPathReport, LineageConfig, Span, SpanKind, TraceCollector, TraceContext, TraceSummary,
};
pub use metrics::{
    AtomicHistogram, ComponentWindow, LatencyHistogram, MetricsHub, MonitorConfig, ProfileSource,
    RuleProfile,
};
pub use net::DistributedCluster;
pub use runtime::{
    BatchConfig, Emitter, LocalCluster, ReliabilityConfig, RuntimeConfig, TopologyHandle,
};
pub use topology::{Bolt, BoltContext, Parallelism, Spout, Topology, TopologyBuilder};
pub use transport::{FrameDecoder, WireCodec, WireReader};
pub use xml::{parse_topology_xml, TopologySpec};
