//! Stream groupings: how an upstream task's emissions are distributed over
//! a downstream component's tasks.

use std::fmt;
use std::sync::Arc;

/// Key extractor for fields grouping: maps a message to a hashable key.
pub type FieldsKeyFn<T> = Arc<dyn Fn(&T) -> u64 + Send + Sync>;

/// A stream grouping (Section 2.1.1).
#[derive(Clone)]
pub enum Grouping<T> {
    /// Round-robin over the downstream tasks (Storm's shuffle grouping is
    /// random; round-robin gives the same balance deterministically).
    Shuffle,
    /// Hash of a message key picks the task: all messages with one key go
    /// to one task. This is how the AreaTracker keeps one quadtree per
    /// task coherent and how fields-partitioned state stays local.
    Fields(FieldsKeyFn<T>),
    /// Every downstream task receives every message — the *All Grouping*
    /// baseline of Figure 12/13 routes bus traces this way.
    All,
    /// The **emitting task** names the destination task index
    /// ([`crate::runtime::Emitter::emit_direct`]); used by the Splitter
    /// bolt to route each tuple to the Esper engine that owns its spatial
    /// region (Section 4.3.2).
    Direct,
}

impl<T> Grouping<T> {
    /// Fields grouping from a key function.
    pub fn fields(key: impl Fn(&T) -> u64 + Send + Sync + 'static) -> Self {
        Grouping::Fields(Arc::new(key))
    }

    /// Fields grouping that hashes the extracted key with a precomputed
    /// [`KeyHasher`]: the hasher state is built once when the grouping is
    /// declared and cloned per tuple, instead of re-running
    /// `DefaultHasher::new()`'s initialization on every emission. Produces
    /// exactly the same task assignment as `Grouping::fields(|m| hash_key(..))`.
    pub fn fields_hashed<K: std::hash::Hash>(
        extract: impl Fn(&T) -> K + Send + Sync + 'static,
    ) -> Self {
        let hasher = KeyHasher::new();
        Grouping::Fields(Arc::new(move |msg| hasher.hash(&extract(msg))))
    }
}

impl<T> fmt::Debug for Grouping<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Grouping::Shuffle => "Shuffle",
            Grouping::Fields(_) => "Fields",
            Grouping::All => "All",
            Grouping::Direct => "Direct",
        };
        f.write_str(s)
    }
}

/// Hashes an arbitrary `Hash` key for [`Grouping::fields`].
///
/// Builds a fresh [`StableSipHasher13`] per call; on per-tuple hot paths
/// prefer [`KeyHasher`] (or [`Grouping::fields_hashed`]), which clones a
/// precomputed hasher state and yields identical values.
pub fn hash_key<K: std::hash::Hash>(key: &K) -> u64 {
    use std::hash::Hasher;
    let mut h = StableSipHasher13::new();
    key.hash(&mut h);
    h.finish()
}

/// A self-contained SipHash-1-3 with pinned zero keys, implementing
/// `std::hash::Hasher`.
///
/// `std`'s `DefaultHasher` happens to be the same algorithm today, but its
/// documentation explicitly reserves the right to change between releases —
/// useless for anything that must hash identically across processes or
/// binary versions (stable routing of unknown regions, the multi-process
/// workers of ROADMAP item 2). This implementation is pinned by the
/// `stable_sip_hash_values_are_pinned` test: the bytes-to-u64 mapping is
/// part of the crate's public contract and may never change.
#[derive(Clone, Debug)]
pub struct StableSipHasher13 {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Pending input bytes, little-endian packed into the low `nbuf` bytes.
    buf: u64,
    nbuf: usize,
    /// Total bytes written, feeding the length byte of the final word.
    len: u64,
}

impl Default for StableSipHasher13 {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
const fn sipround(mut v: (u64, u64, u64, u64)) -> (u64, u64, u64, u64) {
    v.0 = v.0.wrapping_add(v.1);
    v.1 = v.1.rotate_left(13) ^ v.0;
    v.0 = v.0.rotate_left(32);
    v.2 = v.2.wrapping_add(v.3);
    v.3 = v.3.rotate_left(16) ^ v.2;
    v.0 = v.0.wrapping_add(v.3);
    v.3 = v.3.rotate_left(21) ^ v.0;
    v.2 = v.2.wrapping_add(v.1);
    v.1 = v.1.rotate_left(17) ^ v.2;
    v.2 = v.2.rotate_left(32);
    v
}

impl StableSipHasher13 {
    /// The initial state for the pinned zero keys (`k0 = k1 = 0`).
    pub const fn new() -> Self {
        // v_n = k ^ SipHash's "somepseudorandomlygeneratedbytes" constants.
        StableSipHasher13 {
            v0: 0x736f_6d65_7073_6575,
            v1: 0x646f_7261_6e64_6f6d,
            v2: 0x6c79_6765_6e65_7261,
            v3: 0x7465_6462_7974_6573,
            buf: 0,
            nbuf: 0,
            len: 0,
        }
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v3 ^= m;
        let v = sipround((self.v0, self.v1, self.v2, self.v3));
        (self.v0, self.v1, self.v2, self.v3) = v;
        self.v0 ^= m;
    }
}

impl std::hash::Hasher for StableSipHasher13 {
    fn write(&mut self, mut bytes: &[u8]) {
        self.len = self.len.wrapping_add(bytes.len() as u64);
        // Top up a partially filled word first.
        if self.nbuf > 0 {
            let take = (8 - self.nbuf).min(bytes.len());
            for &b in &bytes[..take] {
                self.buf |= (b as u64) << (8 * self.nbuf);
                self.nbuf += 1;
            }
            bytes = &bytes[take..];
            if self.nbuf == 8 {
                let m = self.buf;
                self.buf = 0;
                self.nbuf = 0;
                self.compress(m);
            }
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.compress(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        for &b in chunks.remainder() {
            self.buf |= (b as u64) << (8 * self.nbuf);
            self.nbuf += 1;
        }
    }

    fn finish(&self) -> u64 {
        // Final word: low bytes = pending input, top byte = total length.
        let m = self.buf | (self.len << 56);
        let mut v = (self.v0, self.v1, self.v2, self.v3);
        v.3 ^= m;
        v = sipround(v);
        v.0 ^= m;
        v.2 ^= 0xff;
        v = sipround(v);
        v = sipround(v);
        v = sipround(v);
        v.0 ^ v.1 ^ v.2 ^ v.3
    }
}

/// Reusable fixed-key SipHash state for fields grouping: constructed once,
/// cloned per key. Every instance starts from the same pinned
/// [`StableSipHasher13`] state, so the mapping from key to hash is
/// deterministic across tasks, processes and Rust releases — the property
/// stable routing relies on.
#[derive(Clone, Debug)]
pub struct KeyHasher {
    proto: StableSipHasher13,
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher {
    /// A hasher over the pinned initial state (`const`, so prototypes can
    /// live in statics).
    pub const fn new() -> Self {
        KeyHasher { proto: StableSipHasher13::new() }
    }

    /// Hashes `key` from the precomputed prototype state; `hash_key`-compatible.
    pub fn hash<K: std::hash::Hash>(&self, key: &K) -> u64 {
        use std::hash::Hasher;
        let mut h = self.proto.clone();
        key.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_grouping_is_deterministic() {
        let g: Grouping<String> = Grouping::fields(|s: &String| hash_key(s));
        let Grouping::Fields(f) = &g else { panic!() };
        assert_eq!(f(&"R1".to_string()), f(&"R1".to_string()));
        assert_ne!(f(&"R1".to_string()), f(&"R2".to_string()));
    }

    #[test]
    fn stable_sip_hash_values_are_pinned() {
        // The bytes-to-u64 mapping is a cross-process/cross-release
        // contract: unknown-region routing and fields grouping both
        // depend on it. These constants may never change.
        for (key, expected) in [
            ("", 0x3040_6ea5_23c5_3defu64),
            ("R1", 0xbcd2_7e2f_fc42_3144u64),
            ("a-much-longer-route-identifier", 0x3f9e_d68b_0375_4c16u64),
        ] {
            assert_eq!(hash_key(&key), expected, "str key {key:?}");
        }
        for (key, expected) in [(0u64, 0xbd60_acb6_58c7_9e45u64), (u64::MAX, 0x2f20_5be2_fec8_e38du64)] {
            assert_eq!(hash_key(&key), expected, "u64 key {key}");
        }
    }

    #[test]
    fn stable_sip_hash_streams_like_one_shot() {
        use std::hash::Hasher;
        // Split writes at every boundary must agree with one big write.
        let data: Vec<u8> = (0u8..64).collect();
        let mut whole = StableSipHasher13::new();
        whole.write(&data);
        let expected = whole.finish();
        for split in 0..data.len() {
            let mut h = StableSipHasher13::new();
            h.write(&data[..split]);
            h.write(&data[split..]);
            assert_eq!(h.finish(), expected, "split at {split}");
        }
    }

    #[test]
    fn key_hasher_matches_hash_key() {
        let kh = KeyHasher::new();
        for key in ["R1", "R2", "a-much-longer-route-identifier", ""] {
            assert_eq!(kh.hash(&key), hash_key(&key));
        }
        for key in [0u64, 1, 7, u64::MAX] {
            assert_eq!(kh.hash(&key), hash_key(&key));
        }
    }

    #[test]
    fn fields_hashed_matches_fields_with_hash_key() {
        let fast: Grouping<String> = Grouping::fields_hashed(|s: &String| s.clone());
        let slow: Grouping<String> = Grouping::fields(|s: &String| hash_key(s));
        let (Grouping::Fields(f), Grouping::Fields(g)) = (&fast, &slow) else { panic!() };
        for s in ["line-72", "line-9", "depot"] {
            assert_eq!(f(&s.to_string()), g(&s.to_string()));
        }
    }

    #[test]
    fn debug_names() {
        assert_eq!(format!("{:?}", Grouping::<u32>::Shuffle), "Shuffle");
        assert_eq!(format!("{:?}", Grouping::<u32>::All), "All");
        assert_eq!(format!("{:?}", Grouping::<u32>::Direct), "Direct");
    }
}
