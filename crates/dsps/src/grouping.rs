//! Stream groupings: how an upstream task's emissions are distributed over
//! a downstream component's tasks.

use std::fmt;
use std::sync::Arc;

/// Key extractor for fields grouping: maps a message to a hashable key.
pub type FieldsKeyFn<T> = Arc<dyn Fn(&T) -> u64 + Send + Sync>;

/// A stream grouping (Section 2.1.1).
#[derive(Clone)]
pub enum Grouping<T> {
    /// Round-robin over the downstream tasks (Storm's shuffle grouping is
    /// random; round-robin gives the same balance deterministically).
    Shuffle,
    /// Hash of a message key picks the task: all messages with one key go
    /// to one task. This is how the AreaTracker keeps one quadtree per
    /// task coherent and how fields-partitioned state stays local.
    Fields(FieldsKeyFn<T>),
    /// Every downstream task receives every message — the *All Grouping*
    /// baseline of Figure 12/13 routes bus traces this way.
    All,
    /// The **emitting task** names the destination task index
    /// ([`crate::runtime::Emitter::emit_direct`]); used by the Splitter
    /// bolt to route each tuple to the Esper engine that owns its spatial
    /// region (Section 4.3.2).
    Direct,
}

impl<T> Grouping<T> {
    /// Fields grouping from a key function.
    pub fn fields(key: impl Fn(&T) -> u64 + Send + Sync + 'static) -> Self {
        Grouping::Fields(Arc::new(key))
    }

    /// Fields grouping that hashes the extracted key with a precomputed
    /// [`KeyHasher`]: the hasher state is built once when the grouping is
    /// declared and cloned per tuple, instead of re-running
    /// `DefaultHasher::new()`'s initialization on every emission. Produces
    /// exactly the same task assignment as `Grouping::fields(|m| hash_key(..))`.
    pub fn fields_hashed<K: std::hash::Hash>(
        extract: impl Fn(&T) -> K + Send + Sync + 'static,
    ) -> Self {
        let hasher = KeyHasher::new();
        Grouping::Fields(Arc::new(move |msg| hasher.hash(&extract(msg))))
    }
}

impl<T> fmt::Debug for Grouping<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Grouping::Shuffle => "Shuffle",
            Grouping::Fields(_) => "Fields",
            Grouping::All => "All",
            Grouping::Direct => "Direct",
        };
        f.write_str(s)
    }
}

/// Hashes an arbitrary `Hash` key for [`Grouping::fields`].
///
/// Builds a fresh `DefaultHasher` per call; on per-tuple hot paths prefer
/// [`KeyHasher`] (or [`Grouping::fields_hashed`]), which clones a
/// precomputed hasher state and yields identical values.
pub fn hash_key<K: std::hash::Hash>(key: &K) -> u64 {
    use std::hash::{DefaultHasher, Hasher};
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Reusable SipHash state for fields grouping: constructed once, cloned
/// per key. An unkeyed `DefaultHasher` always starts from the same state,
/// so a clone of this prototype hashes identically to a fresh
/// `DefaultHasher::new()` — verified by `key_hasher_matches_hash_key`.
#[derive(Clone, Debug)]
pub struct KeyHasher {
    proto: std::hash::DefaultHasher,
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher {
    pub fn new() -> Self {
        KeyHasher { proto: std::hash::DefaultHasher::new() }
    }

    /// Hashes `key` from the precomputed prototype state; `hash_key`-compatible.
    pub fn hash<K: std::hash::Hash>(&self, key: &K) -> u64 {
        use std::hash::Hasher;
        let mut h = self.proto.clone();
        key.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_grouping_is_deterministic() {
        let g: Grouping<String> = Grouping::fields(|s: &String| hash_key(s));
        let Grouping::Fields(f) = &g else { panic!() };
        assert_eq!(f(&"R1".to_string()), f(&"R1".to_string()));
        assert_ne!(f(&"R1".to_string()), f(&"R2".to_string()));
    }

    #[test]
    fn key_hasher_matches_hash_key() {
        let kh = KeyHasher::new();
        for key in ["R1", "R2", "a-much-longer-route-identifier", ""] {
            assert_eq!(kh.hash(&key), hash_key(&key));
        }
        for key in [0u64, 1, 7, u64::MAX] {
            assert_eq!(kh.hash(&key), hash_key(&key));
        }
    }

    #[test]
    fn fields_hashed_matches_fields_with_hash_key() {
        let fast: Grouping<String> = Grouping::fields_hashed(|s: &String| s.clone());
        let slow: Grouping<String> = Grouping::fields(|s: &String| hash_key(s));
        let (Grouping::Fields(f), Grouping::Fields(g)) = (&fast, &slow) else { panic!() };
        for s in ["line-72", "line-9", "depot"] {
            assert_eq!(f(&s.to_string()), g(&s.to_string()));
        }
    }

    #[test]
    fn debug_names() {
        assert_eq!(format!("{:?}", Grouping::<u32>::Shuffle), "Shuffle");
        assert_eq!(format!("{:?}", Grouping::<u32>::All), "All");
        assert_eq!(format!("{:?}", Grouping::<u32>::Direct), "Direct");
    }
}
