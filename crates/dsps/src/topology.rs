//! Topology definition: spouts, bolts, parallelism, subscriptions.

use crate::error::DspsError;
use crate::grouping::Grouping;
use std::collections::{HashMap, HashSet};

/// Per-component parallelism (Figure 1): `tasks` instances of the user
/// code executed by `executors` threads. When `tasks > executors`, tasks
/// share executors pseudo-parallelly; `tasks < executors` is capped by
/// Storm to one executor per task, which we reject outright as a
/// configuration error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Instances of the user code.
    pub tasks: usize,
    /// Threads driving those instances.
    pub executors: usize,
}

impl Parallelism {
    /// `n` tasks on `n` executors — the "ideal" 1:1 configuration.
    pub fn of(n: usize) -> Self {
        Parallelism { tasks: n, executors: n }
    }

    fn validate(&self, component: &str) -> Result<(), DspsError> {
        if self.tasks == 0 || self.executors == 0 {
            return Err(DspsError::InvalidParallelism {
                component: component.to_string(),
                reason: "tasks and executors must be at least 1".into(),
            });
        }
        if self.executors > self.tasks {
            return Err(DspsError::InvalidParallelism {
                component: component.to_string(),
                reason: format!(
                    "executors ({}) cannot exceed tasks ({})",
                    self.executors, self.tasks
                ),
            });
        }
        Ok(())
    }
}

/// A spout: an input source feeding the topology.
///
/// `next` returns the next message or `None` when the source is exhausted,
/// at which point the runtime propagates end-of-stream downstream.
pub trait Spout<T>: Send {
    /// The next message, or `None` when the source is exhausted.
    fn next(&mut self) -> Option<T>;
}

/// Context passed to a bolt, carrying its task identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoltContext {
    /// Index of this task within its component, `0..tasks`.
    pub task_index: usize,
    /// Total tasks of this component.
    pub task_count: usize,
}

/// A bolt: a processing step.
pub trait Bolt<T>: Send {
    /// Called once before the first message.
    fn prepare(&mut self, _ctx: BoltContext) {}

    /// Processes one input message, emitting any number of outputs.
    fn process(&mut self, msg: T, emitter: &mut dyn crate::runtime::Emitter<T>);

    /// Called once when every upstream task has finished; a last chance to
    /// flush buffered state downstream.
    fn finish(&mut self, _emitter: &mut dyn crate::runtime::Emitter<T>) {}

    /// Serializes this bolt's full state for a durability snapshot
    /// ([`durability`](crate::durability)); `None` (the default) marks the
    /// bolt stateless, so no snapshot is ever written for it.
    ///
    /// The bytes are opaque to the runtime — the bolt alone defines the
    /// format, and [`restore_state`](Bolt::restore_state) must accept it.
    fn snapshot_state(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Appends the changelog records describing the state changes since
    /// the previous drain (typically: since the last processed tuple).
    /// The runtime calls this after every `process` when durability is on
    /// and persists the records in order. The default appends nothing.
    fn drain_changelog(&mut self, _out: &mut Vec<Vec<u8>>) {}

    /// Restores state recovered from disk: the last snapshot (if any)
    /// followed by the changelog records appended after it, in order.
    /// Called after [`prepare`](Bolt::prepare) — on a fresh submit that
    /// found prior state, and after a supervised post-panic restart.
    /// The default ignores recovery (stateless bolts restart empty).
    fn restore_state(&mut self, _snapshot: Option<&[u8]>, _changelog: &[Vec<u8>]) {}
}

/// Blanket impl: any `FnMut(T) -> Option<T>`-style closure can serve as a
/// simple 1-to-0/1 bolt via [`TopologyBuilder::add_map_bolt`].
pub(crate) struct MapBolt<T, F: FnMut(T) -> Option<T> + Send> {
    pub f: F,
    pub _marker: std::marker::PhantomData<T>,
}

impl<T: Send, F: FnMut(T) -> Option<T> + Send> Bolt<T> for MapBolt<T, F> {
    fn process(&mut self, msg: T, emitter: &mut dyn crate::runtime::Emitter<T>) {
        if let Some(out) = (self.f)(msg) {
            emitter.emit(out);
        }
    }
}

/// Factory producing one spout instance per spout task.
pub type SpoutFactory<T> = std::sync::Arc<dyn Fn(usize) -> Box<dyn Spout<T>> + Send + Sync>;
/// Factory producing one bolt instance per bolt task. Shared (`Arc`, not
/// `Box`) because the supervisor re-invokes it from executor threads to
/// restart a panicked task.
pub type BoltFactory<T> = std::sync::Arc<dyn Fn(usize) -> Box<dyn Bolt<T>> + Send + Sync>;

/// One subscription edge: `source` component feeding a bolt under a
/// grouping.
pub struct Subscription<T> {
    /// The upstream component.
    pub source: String,
    /// How that component's output distributes over this bolt's tasks.
    pub grouping: Grouping<T>,
}

pub(crate) struct SpoutDecl<T> {
    pub name: String,
    pub factory: SpoutFactory<T>,
    pub parallelism: Parallelism,
}

pub(crate) struct BoltDecl<T> {
    pub name: String,
    pub factory: BoltFactory<T>,
    pub parallelism: Parallelism,
    pub subscriptions: Vec<Subscription<T>>,
}

/// A validated topology, ready for submission to a
/// [`LocalCluster`](crate::runtime::LocalCluster).
pub struct Topology<T> {
    pub(crate) name: String,
    pub(crate) spouts: Vec<SpoutDecl<T>>,
    pub(crate) bolts: Vec<BoltDecl<T>>,
}

impl<T> Topology<T> {
    /// The topology's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total executors over all components — what the scheduler packs into
    /// worker processes.
    pub fn total_executors(&self) -> usize {
        self.spouts.iter().map(|s| s.parallelism.executors).sum::<usize>()
            + self.bolts.iter().map(|b| b.parallelism.executors).sum::<usize>()
    }

    /// Component names in declaration order (spouts first).
    pub fn component_names(&self) -> Vec<&str> {
        self.spouts
            .iter()
            .map(|s| s.name.as_str())
            .chain(self.bolts.iter().map(|b| b.name.as_str()))
            .collect()
    }
}

/// Builder for [`Topology`].
pub struct TopologyBuilder<T> {
    name: String,
    spouts: Vec<SpoutDecl<T>>,
    bolts: Vec<BoltDecl<T>>,
}

impl<T: Send + 'static> TopologyBuilder<T> {
    /// Starts a topology.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder { name: name.into(), spouts: Vec::new(), bolts: Vec::new() }
    }

    /// Declares a spout. `factory` is called once per task with the task
    /// index.
    pub fn add_spout(
        mut self,
        name: impl Into<String>,
        parallelism: Parallelism,
        factory: impl Fn(usize) -> Box<dyn Spout<T>> + Send + Sync + 'static,
    ) -> Self {
        self.spouts.push(SpoutDecl {
            name: name.into(),
            factory: std::sync::Arc::new(factory),
            parallelism,
        });
        self
    }

    /// Declares a bolt with its subscriptions.
    pub fn add_bolt(
        mut self,
        name: impl Into<String>,
        parallelism: Parallelism,
        subscriptions: Vec<(impl Into<String>, Grouping<T>)>,
        factory: impl Fn(usize) -> Box<dyn Bolt<T>> + Send + Sync + 'static,
    ) -> Self {
        self.bolts.push(BoltDecl {
            name: name.into(),
            factory: std::sync::Arc::new(factory),
            parallelism,
            subscriptions: subscriptions
                .into_iter()
                .map(|(source, grouping)| Subscription { source: source.into(), grouping })
                .collect(),
        });
        self
    }

    /// Declares a stateless 1-to-0/1 bolt from a cloneable closure — handy
    /// for pre-processing steps.
    pub fn add_map_bolt(
        self,
        name: impl Into<String>,
        parallelism: Parallelism,
        subscriptions: Vec<(impl Into<String>, Grouping<T>)>,
        f: impl Fn(T) -> Option<T> + Send + Sync + Clone + 'static,
    ) -> Self {
        self.add_bolt(name, parallelism, subscriptions, move |_| {
            Box::new(MapBolt { f: f.clone(), _marker: std::marker::PhantomData })
        })
    }

    /// Validates and finalizes the topology.
    ///
    /// Checks: at least one spout; unique names; parallelism sanity; every
    /// subscription names a declared component; spouts subscribe to
    /// nothing; the graph is acyclic; every bolt has at least one
    /// subscription.
    pub fn build(self) -> Result<Topology<T>, DspsError> {
        if self.spouts.is_empty() {
            return Err(DspsError::InvalidTopology { reason: "no spout declared".into() });
        }
        let mut names = HashSet::new();
        for n in self
            .spouts
            .iter()
            .map(|s| &s.name)
            .chain(self.bolts.iter().map(|b| &b.name))
        {
            if !names.insert(n.clone()) {
                return Err(DspsError::DuplicateComponent(n.clone()));
            }
        }
        for s in &self.spouts {
            s.parallelism.validate(&s.name)?;
        }
        for b in &self.bolts {
            b.parallelism.validate(&b.name)?;
            if b.subscriptions.is_empty() {
                return Err(DspsError::InvalidTopology {
                    reason: format!("bolt {} has no subscription", b.name),
                });
            }
            for sub in &b.subscriptions {
                if !names.contains(&sub.source) {
                    return Err(DspsError::UnknownComponent(sub.source.clone()));
                }
            }
        }
        // Cycle check: DFS over bolt→bolt edges.
        let mut edges: HashMap<&str, Vec<&str>> = HashMap::new();
        for b in &self.bolts {
            for sub in &b.subscriptions {
                edges.entry(sub.source.as_str()).or_default().push(b.name.as_str());
            }
        }
        let mut state: HashMap<&str, u8> = HashMap::new(); // 1=visiting, 2=done
        fn dfs<'a>(
            node: &'a str,
            edges: &HashMap<&'a str, Vec<&'a str>>,
            state: &mut HashMap<&'a str, u8>,
        ) -> Result<(), DspsError> {
            match state.get(node) {
                Some(1) => {
                    return Err(DspsError::Cycle { involving: node.to_string() });
                }
                Some(2) => return Ok(()),
                _ => {}
            }
            state.insert(node, 1);
            if let Some(next) = edges.get(node) {
                for n in next {
                    dfs(n, edges, state)?;
                }
            }
            state.insert(node, 2);
            Ok(())
        }
        for s in &self.spouts {
            dfs(s.name.as_str(), &edges, &mut state)?;
        }
        for b in &self.bolts {
            dfs(b.name.as_str(), &edges, &mut state)?;
        }
        Ok(Topology { name: self.name, spouts: self.spouts, bolts: self.bolts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullSpout;
    impl Spout<u32> for NullSpout {
        fn next(&mut self) -> Option<u32> {
            None
        }
    }

    fn spout(_: usize) -> Box<dyn Spout<u32>> {
        Box::new(NullSpout)
    }

    fn builder() -> TopologyBuilder<u32> {
        TopologyBuilder::new("t").add_spout("reader", Parallelism::of(2), spout)
    }

    #[test]
    fn valid_topology_builds() {
        let t = builder()
            .add_map_bolt(
                "double",
                Parallelism { tasks: 4, executors: 2 },
                vec![("reader", Grouping::Shuffle)],
                |x| Some(x * 2),
            )
            .add_map_bolt("sink", Parallelism::of(1), vec![("double", Grouping::All)], Some)
            .build()
            .unwrap();
        assert_eq!(t.total_executors(), 5);
        assert_eq!(t.component_names(), vec!["reader", "double", "sink"]);
    }

    #[test]
    fn requires_a_spout() {
        let err = TopologyBuilder::<u32>::new("t").build();
        assert!(matches!(err, Err(DspsError::InvalidTopology { .. })));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = builder()
            .add_map_bolt("reader", Parallelism::of(1), vec![("reader", Grouping::Shuffle)], Some)
            .build();
        assert!(matches!(err, Err(DspsError::DuplicateComponent(_))));
    }

    #[test]
    fn unknown_subscription_rejected() {
        let err = builder()
            .add_map_bolt("b", Parallelism::of(1), vec![("ghost", Grouping::Shuffle)], Some)
            .build();
        assert!(matches!(err, Err(DspsError::UnknownComponent(_))));
    }

    #[test]
    fn bolt_without_subscription_rejected() {
        let err = builder()
            .add_bolt(
                "b",
                Parallelism::of(1),
                Vec::<(String, Grouping<u32>)>::new(),
                |_| {
                    Box::new(MapBolt { f: Some, _marker: std::marker::PhantomData })
                        as Box<dyn Bolt<u32>>
                },
            )
            .build();
        assert!(matches!(err, Err(DspsError::InvalidTopology { .. })));
    }

    #[test]
    fn cycles_rejected() {
        let err = builder()
            .add_map_bolt("a", Parallelism::of(1), vec![("reader", Grouping::Shuffle), ("b", Grouping::Shuffle)], Some)
            .add_map_bolt("b", Parallelism::of(1), vec![("a", Grouping::Shuffle)], Some)
            .build();
        assert!(matches!(err, Err(DspsError::Cycle { .. })));
    }

    #[test]
    fn parallelism_validation() {
        let err = builder()
            .add_map_bolt(
                "b",
                Parallelism { tasks: 1, executors: 2 },
                vec![("reader", Grouping::Shuffle)],
                Some,
            )
            .build();
        assert!(matches!(err, Err(DspsError::InvalidParallelism { .. })));
        let err = builder()
            .add_map_bolt(
                "b",
                Parallelism { tasks: 0, executors: 0 },
                vec![("reader", Grouping::Shuffle)],
                Some,
            )
            .build();
        assert!(matches!(err, Err(DspsError::InvalidParallelism { .. })));
    }
}
