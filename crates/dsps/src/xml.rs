//! XML topology definitions (Section 3.2).
//!
//! The paper enhances Storm so users describe topologies in an XML file —
//! spouts, bolts, parallelism, subscriptions and the Esper rules to run —
//! instead of writing Java builder code. This module parses that format
//! into a [`TopologySpec`]; the application layer (`tms-core`) maps the
//! declared component types onto registered factories.
//!
//! ```xml
//! <topology name="traffic">
//!   <spout name="busReader" type="BusReaderSpout" tasks="2" executors="2"/>
//!   <bolt name="preprocess" type="PreProcessBolt" tasks="1" executors="1">
//!     <subscribe source="busReader" grouping="shuffle"/>
//!   </bolt>
//!   <bolt name="esper" type="EsperBolt" tasks="4" executors="4">
//!     <subscribe source="preprocess" grouping="direct"/>
//!   </bolt>
//!   <rules>
//!     <rule>SELECT * FROM bus WHERE delay > 60</rule>
//!   </rules>
//! </topology>
//! ```
//!
//! The parser is a minimal, hand-written XML reader covering the subset
//! this format needs: elements, attributes (single- or double-quoted),
//! text content, self-closing tags, comments and XML declarations. It is
//! not a general-purpose XML library.

use crate::error::DspsError;
use crate::topology::Parallelism;

/// A grouping named in XML (resolved to a real [`crate::Grouping`] by the
/// application layer, which supplies the fields key function).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupingSpec {
    /// Round-robin over the downstream tasks.
    Shuffle,
    /// Fields grouping on a named key.
    Fields(String),
    /// Every downstream task receives every message.
    All,
    /// The emitter names the destination task.
    Direct,
}

/// One subscription edge in XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionSpec {
    /// The upstream component's name.
    pub source: String,
    /// The grouping discipline.
    pub grouping: GroupingSpec,
}

/// A declared component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSpec {
    /// Component name (unique within the topology).
    pub name: String,
    /// Registered component type (e.g. `BusReaderSpout`).
    pub component_type: String,
    /// Tasks / executors.
    pub parallelism: Parallelism,
    /// Empty for spouts.
    pub subscriptions: Vec<SubscriptionSpec>,
}

/// A parsed XML topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpec {
    /// Topology name.
    pub name: String,
    /// Declared spouts.
    pub spouts: Vec<ComponentSpec>,
    /// Declared bolts.
    pub bolts: Vec<ComponentSpec>,
    /// EPL rule texts from the `<rules>` section.
    pub rules: Vec<String>,
}

// ---------------------------------------------------------------------------
// Minimal XML reader
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct XmlElement {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<XmlElement>,
    text: String,
}

impl XmlElement {
    fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }
}

struct XmlParser<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, reason: impl Into<String>) -> DspsError {
        DspsError::XmlParse { line: self.line, reason: reason.into() }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn skip_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_ws_and_misc(&mut self) -> Result<(), DspsError> {
        loop {
            while self.peek().is_some_and(|c| c.is_whitespace()) {
                self.bump();
            }
            if self.starts_with("<!--") {
                let end = self.src[self.pos..]
                    .find("-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.skip_n(end + 3);
            } else if self.starts_with("<?") {
                let end = self.src[self.pos..]
                    .find("?>")
                    .ok_or_else(|| self.err("unterminated XML declaration"))?;
                self.skip_n(end + 2);
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, DspsError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == ':')
        {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn parse_element(&mut self) -> Result<XmlElement, DspsError> {
        self.skip_ws_and_misc()?;
        if self.bump() != Some('<') {
            return Err(self.err("expected '<'"));
        }
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            while self.peek().is_some_and(|c| c.is_whitespace()) {
                self.bump();
            }
            match self.peek() {
                Some('/') => {
                    self.bump();
                    if self.bump() != Some('>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    return Ok(XmlElement { name, attributes, children: Vec::new(), text: String::new() });
                }
                Some('>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let aname = self.parse_name()?;
                    while self.peek().is_some_and(|c| c.is_whitespace()) {
                        self.bump();
                    }
                    if self.bump() != Some('=') {
                        return Err(self.err(format!("expected '=' after attribute {aname}")));
                    }
                    while self.peek().is_some_and(|c| c.is_whitespace()) {
                        self.bump();
                    }
                    let quote = self
                        .bump()
                        .filter(|&c| c == '"' || c == '\'')
                        .ok_or_else(|| self.err("expected quoted attribute value"))?;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.bump();
                    }
                    let value = self.src[start..self.pos].to_string();
                    if self.bump() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    attributes.push((aname, unescape(&value)));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Content: children and text until the closing tag.
        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            if self.starts_with("<!--") {
                let end = self.src[self.pos..]
                    .find("-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.skip_n(end + 3);
                continue;
            }
            if self.starts_with("</") {
                self.skip_n(2);
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(format!("mismatched closing tag: <{name}> vs </{close}>")));
                }
                while self.peek().is_some_and(|c| c.is_whitespace()) {
                    self.bump();
                }
                if self.bump() != Some('>') {
                    return Err(self.err("expected '>' in closing tag"));
                }
                return Ok(XmlElement { name, attributes, children, text: unescape(text.trim()) });
            }
            match self.peek() {
                Some('<') => children.push(self.parse_element()?),
                Some(_) => {
                    text.push(self.bump().expect("peeked"));
                }
                None => return Err(self.err(format!("unterminated element <{name}>"))),
            }
        }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

// ---------------------------------------------------------------------------
// Topology mapping
// ---------------------------------------------------------------------------

/// Parses an XML topology document.
pub fn parse_topology_xml(src: &str) -> Result<TopologySpec, DspsError> {
    let mut parser = XmlParser { src, pos: 0, line: 1 };
    let root = parser.parse_element()?;
    parser.skip_ws_and_misc().ok();
    if root.name != "topology" {
        return Err(DspsError::XmlInvalid {
            reason: format!("root element must be <topology>, found <{}>", root.name),
        });
    }
    let name = root
        .attr("name")
        .ok_or_else(|| DspsError::XmlInvalid { reason: "<topology> needs a name".into() })?
        .to_string();

    let parse_parallelism = |el: &XmlElement| -> Result<Parallelism, DspsError> {
        let parse_num = |attr: &str| -> Result<usize, DspsError> {
            match el.attr(attr) {
                None => Ok(1),
                Some(v) => v.parse().map_err(|_| DspsError::XmlInvalid {
                    reason: format!("attribute {attr}={v:?} is not a positive integer"),
                }),
            }
        };
        let tasks = parse_num("tasks")?;
        // Executors default to tasks (the ideal 1:1 packing).
        let executors = match el.attr("executors") {
            None => tasks,
            Some(_) => parse_num("executors")?,
        };
        Ok(Parallelism { tasks, executors })
    };

    let parse_component = |el: &XmlElement, is_spout: bool| -> Result<ComponentSpec, DspsError> {
        let name = el
            .attr("name")
            .ok_or_else(|| DspsError::XmlInvalid { reason: "component needs a name".into() })?
            .to_string();
        let component_type = el
            .attr("type")
            .ok_or_else(|| DspsError::XmlInvalid {
                reason: format!("component {name} needs a type"),
            })?
            .to_string();
        let mut subscriptions = Vec::new();
        for sub in el.children_named("subscribe") {
            let source = sub
                .attr("source")
                .ok_or_else(|| DspsError::XmlInvalid {
                    reason: format!("subscription in {name} needs a source"),
                })?
                .to_string();
            let grouping = match sub.attr("grouping").unwrap_or("shuffle") {
                "shuffle" => GroupingSpec::Shuffle,
                "all" => GroupingSpec::All,
                "direct" => GroupingSpec::Direct,
                "fields" => {
                    let key = sub.attr("key").ok_or_else(|| DspsError::XmlInvalid {
                        reason: format!("fields grouping in {name} needs a key attribute"),
                    })?;
                    GroupingSpec::Fields(key.to_string())
                }
                other => {
                    return Err(DspsError::XmlInvalid {
                        reason: format!("unknown grouping {other:?} in {name}"),
                    })
                }
            };
            subscriptions.push(SubscriptionSpec { source, grouping });
        }
        if is_spout && !subscriptions.is_empty() {
            return Err(DspsError::XmlInvalid {
                reason: format!("spout {name} cannot subscribe to anything"),
            });
        }
        Ok(ComponentSpec { name, component_type, parallelism: parse_parallelism(el)?, subscriptions })
    };

    let mut spouts = Vec::new();
    let mut bolts = Vec::new();
    let mut rules = Vec::new();
    for child in &root.children {
        match child.name.as_str() {
            "spout" => spouts.push(parse_component(child, true)?),
            "bolt" => bolts.push(parse_component(child, false)?),
            "rules" => {
                for r in child.children_named("rule") {
                    if r.text.is_empty() {
                        return Err(DspsError::XmlInvalid { reason: "empty <rule>".into() });
                    }
                    rules.push(r.text.clone());
                }
            }
            other => {
                return Err(DspsError::XmlInvalid {
                    reason: format!("unexpected element <{other}> under <topology>"),
                })
            }
        }
    }
    if spouts.is_empty() {
        return Err(DspsError::XmlInvalid { reason: "topology declares no spout".into() });
    }
    Ok(TopologySpec { name, spouts, bolts, rules })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<!-- the paper's Figure 8 topology, abridged -->
<topology name="traffic">
  <spout name="busReader" type="BusReaderSpout" tasks="2" executors="2"/>
  <bolt name="preprocess" type="PreProcessBolt" tasks="2" executors="1">
    <subscribe source="busReader" grouping="shuffle"/>
  </bolt>
  <bolt name="areaTracker" type="AreaTrackerBolt" tasks="2">
    <subscribe source="preprocess" grouping="fields" key="vehicle"/>
  </bolt>
  <bolt name="esper" type="EsperBolt" tasks="4">
    <subscribe source="areaTracker" grouping="direct"/>
  </bolt>
  <rules>
    <rule>SELECT * FROM bus WHERE delay &gt; 60</rule>
    <rule>SELECT avg(speed) FROM bus.win:length(100)</rule>
  </rules>
</topology>"#;

    #[test]
    fn parses_the_sample_topology() {
        let spec = parse_topology_xml(SAMPLE).unwrap();
        assert_eq!(spec.name, "traffic");
        assert_eq!(spec.spouts.len(), 1);
        assert_eq!(spec.spouts[0].parallelism, Parallelism { tasks: 2, executors: 2 });
        assert_eq!(spec.bolts.len(), 3);
        assert_eq!(spec.bolts[0].parallelism, Parallelism { tasks: 2, executors: 1 });
        // executors defaults to tasks.
        assert_eq!(spec.bolts[1].parallelism, Parallelism { tasks: 2, executors: 2 });
        assert_eq!(
            spec.bolts[1].subscriptions[0].grouping,
            GroupingSpec::Fields("vehicle".into())
        );
        assert_eq!(spec.bolts[2].subscriptions[0].grouping, GroupingSpec::Direct);
        assert_eq!(spec.rules.len(), 2);
        assert_eq!(spec.rules[0], "SELECT * FROM bus WHERE delay > 60");
    }

    #[test]
    fn entity_unescaping() {
        let xml = r#"<topology name="t"><spout name="s" type="T"/><rules><rule>a &lt; b &amp;&amp; c &gt; d</rule></rules></topology>"#;
        let spec = parse_topology_xml(xml).unwrap();
        assert_eq!(spec.rules[0], "a < b && c > d");
    }

    #[test]
    fn rejects_bad_root_and_missing_fields() {
        assert!(matches!(
            parse_topology_xml("<nope/>"),
            Err(DspsError::XmlInvalid { .. })
        ));
        assert!(parse_topology_xml(r#"<topology><spout name="s" type="T"/></topology>"#).is_err());
        assert!(parse_topology_xml(r#"<topology name="t"></topology>"#).is_err());
        assert!(
            parse_topology_xml(r#"<topology name="t"><spout name="s"/></topology>"#).is_err()
        );
    }

    #[test]
    fn rejects_malformed_xml() {
        assert!(matches!(
            parse_topology_xml("<topology name=\"t\">"),
            Err(DspsError::XmlParse { .. })
        ));
        assert!(parse_topology_xml("<a><b></a></b>").is_err());
        assert!(parse_topology_xml("<a attr=oops/>").is_err());
        assert!(parse_topology_xml("<!-- unterminated").is_err());
    }

    #[test]
    fn spout_with_subscription_rejected() {
        let xml = r#"<topology name="t">
            <spout name="s" type="T"><subscribe source="x"/></spout>
        </topology>"#;
        assert!(matches!(parse_topology_xml(xml), Err(DspsError::XmlInvalid { .. })));
    }

    #[test]
    fn unknown_grouping_rejected() {
        let xml = r#"<topology name="t">
            <spout name="s" type="T"/>
            <bolt name="b" type="B"><subscribe source="s" grouping="magic"/></bolt>
        </topology>"#;
        assert!(matches!(parse_topology_xml(xml), Err(DspsError::XmlInvalid { .. })));
    }

    #[test]
    fn error_reports_line_numbers() {
        let xml = "<topology name=\"t\">\n  <spout name=\"s\" type=\"T\"/>\n  <bolt name=b/>\n</topology>";
        match parse_topology_xml(xml) {
            Err(DspsError::XmlParse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error with line, got {other:?}"),
        }
    }
}
