//! Causal tuple-lineage tracing: sampled per-tuple span trees.
//!
//! The aggregate metrics layer ([`metrics`](crate::metrics)) answers "how
//! slow is this component on average"; this module answers "why was *that*
//! tuple slow". A spout-side deterministic sampler (a threshold test on the
//! root delivery id, which is already a SplitMix64-mixed uniform `u64` — no
//! RNG, no extra hashing) picks a fraction of tuple trees. Every hop of a
//! sampled tree — spout emit, per-edge queue wait, batch-buffer residency,
//! bolt `process`, at-least-once replay, acker completion — records one
//! [`Span`] into a per-task lock-free ring. A [`TraceCollector`] drains the
//! rings, reassembles the trees, exports Chrome `trace_event` JSON and a
//! JSONL span log, and folds every span into a [`CriticalPathReport`] that
//! decomposes end-to-end latency into queue-wait vs compute vs replay per
//! component and names the bottleneck.
//!
//! Design constraints, in order:
//! 1. lineage **off** must not touch the hot path at all (the runtime only
//!    ever checks an `Option` that is `None`);
//! 2. an **unsampled** tuple under lineage-on costs one integer compare at
//!    the spout and `None` checks downstream;
//! 3. a sampled tuple's recording cost is bounded: spans are `Copy`, a push
//!    is two atomic loads, one slot write, one release store, and a full
//!    ring drops the newest span (counting it) rather than blocking.

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Opt-in lineage tracing knobs, carried in
/// [`MonitorConfig::lineage`](crate::metrics::MonitorConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineageConfig {
    /// Fraction of tuple trees to sample, `0.0..=1.0`. The decision is
    /// deterministic in the root delivery id, so re-runs with a fixed
    /// topology sample the same trees.
    pub sample_rate: f64,
    /// Keep drained spans for export (`/trace`, [`TraceCollector::take_spans`]).
    /// When `false`, spans are folded into the critical-path report and
    /// discarded, bounding memory on long runs.
    pub export: bool,
    /// Capacity of each per-task span ring (rounded up to a power of two).
    /// A full ring drops the newest spans and counts them.
    pub ring_capacity: usize,
}

impl Default for LineageConfig {
    fn default() -> Self {
        LineageConfig { sample_rate: 0.01, export: true, ring_capacity: 4096 }
    }
}

impl LineageConfig {
    /// Sample-everything preset used by acceptance tests.
    pub fn full() -> Self {
        LineageConfig { sample_rate: 1.0, ..LineageConfig::default() }
    }

    /// The sampler threshold: a root id `r` is sampled iff `r <= threshold`.
    /// Root ids are SplitMix64-mixed and therefore uniform over `u64`, so a
    /// plain scaled compare gives an unbiased `sample_rate` without RNG.
    pub fn threshold(&self) -> u64 {
        (self.sample_rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64
    }
}

/// Trace identity stamped on a sampled envelope: which tree it belongs to
/// and which span caused this hop. This is what a future multi-process
/// transport would serialize onto the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The tuple tree's id (the sampled root delivery id).
    pub trace_id: u64,
    /// The span that emitted this envelope.
    pub parent_span: u64,
}

/// What a span measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// A spout `next()` + `emit()` — the root of a tree.
    SpoutEmit,
    /// Channel (and batch-buffer) wait between send and receive, recorded
    /// by the receiving task; `other` is the sending task.
    Queue,
    /// One bolt `process()` call.
    Process,
    /// Residency in a per-edge batch buffer until the flush, recorded by
    /// the sending task; `other` is the destination task.
    BatchFlush,
    /// A spout-side at-least-once replay of a timed-out root; `other` is
    /// the retry ordinal.
    Replay,
    /// Acker-confirmed completion of the whole tree (reliable mode) or
    /// terminal-bolt arrival (at-most-once).
    Completion,
}

impl SpanKind {
    /// Stable lower-snake name used by both export formats.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::SpoutEmit => "spout_emit",
            SpanKind::Queue => "queue",
            SpanKind::Process => "process",
            SpanKind::BatchFlush => "batch_flush",
            SpanKind::Replay => "replay",
            SpanKind::Completion => "completion",
        }
    }
}

/// One recorded hop of a sampled tuple tree. `Copy` so the ring can hand
/// slots over without drop bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Tree id (sampled root delivery id).
    pub trace: u64,
    /// Unique span id: `(task + 1) << 40 | per-task sequence`, never 0.
    pub id: u64,
    /// Parent span id; 0 marks the tree root.
    pub parent: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// Global task index that recorded the span.
    pub task: u32,
    /// Kind-dependent peer: source task (`Queue`), destination task
    /// (`BatchFlush`), retry ordinal (`Replay`), otherwise 0.
    pub other: u32,
    /// Start, nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instantaneous events).
    pub dur_ns: u64,
}

/// A bounded single-producer/single-consumer ring of `Copy` spans.
///
/// The producer is the owning task's executor thread (a [`SpanSink`] is not
/// clonable and moves into exactly one task); the consumer is whoever holds
/// the collector's drain lock, which serializes all drains. A full ring
/// drops the newest span — earlier spans carry the root context and are
/// worth more than the tail.
pub(crate) struct SpanRing {
    mask: usize,
    /// Consumer cursor: slots `< head` have been drained.
    head: AtomicUsize,
    /// Producer cursor: slots `< tail` are published.
    tail: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[UnsafeCell<Span>]>,
}

// SAFETY: `push` is only called by the single owning producer thread and
// `drain_into` only under the collector's mutex (single consumer). A slot is
// written only while `tail - head < len` (the consumer is not reading it)
// and read only after the producer's release-store of `tail` (the write is
// visible). Spans are `Copy`, so no drops race.
unsafe impl Send for SpanRing {}
unsafe impl Sync for SpanRing {}

const EMPTY_SPAN: Span = Span {
    trace: 0,
    id: 0,
    parent: 0,
    kind: SpanKind::SpoutEmit,
    task: 0,
    other: 0,
    start_ns: 0,
    dur_ns: 0,
};

impl SpanRing {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<UnsafeCell<Span>> =
            (0..cap).map(|_| UnsafeCell::new(EMPTY_SPAN)).collect();
        SpanRing {
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Producer side. Returns `false` (and counts) when the ring is full.
    fn push(&self, span: Span) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: see the `Sync` impl — this slot is outside the consumer's
        // published range until the release store below.
        unsafe { *self.slots[tail & self.mask].get() = span };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side (serialized by the collector's lock).
    fn drain_into(&self, out: &mut Vec<Span>) {
        let tail = self.tail.load(Ordering::Acquire);
        let mut head = self.head.load(Ordering::Relaxed);
        while head != tail {
            // SAFETY: `head < tail` ⇒ the producer published this slot and
            // will not rewrite it before `head` advances past it.
            out.push(unsafe { *self.slots[head & self.mask].get() });
            head = head.wrapping_add(1);
        }
        self.head.store(head, Ordering::Release);
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The producer handle a task records spans through. Mints this task's
/// span ids; deliberately not `Clone` so each ring keeps a single producer.
pub(crate) struct SpanSink {
    ring: Arc<SpanRing>,
    task: u32,
    next: u64,
    epoch: Instant,
    threshold: u64,
}

impl SpanSink {
    /// Nanoseconds since the shared observability epoch.
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// A specific instant, as nanoseconds since the epoch (0 if earlier).
    pub(crate) fn at_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Whether root id `root` falls inside the sampled fraction.
    pub(crate) fn sampled(&self, root: u64) -> bool {
        root <= self.threshold
    }

    /// Reserves the next span id without recording yet (children may need
    /// to reference it before the parent's duration is known).
    pub(crate) fn next_id(&mut self) -> u64 {
        self.next += 1;
        ((self.task as u64 + 1) << 40) | self.next
    }

    /// Records a span under a pre-reserved id.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_with_id(
        &mut self,
        id: u64,
        trace: u64,
        parent: u64,
        kind: SpanKind,
        other: u32,
        start_ns: u64,
        dur_ns: u64,
    ) {
        self.ring.push(Span {
            trace,
            id,
            parent,
            kind,
            task: self.task,
            other,
            start_ns,
            dur_ns,
        });
    }

    /// Mints an id and records a span in one step; returns the id.
    pub(crate) fn record(
        &mut self,
        trace: u64,
        parent: u64,
        kind: SpanKind,
        other: u32,
        start_ns: u64,
        dur_ns: u64,
    ) -> u64 {
        let id = self.next_id();
        self.record_with_id(id, trace, parent, kind, other, start_ns, dur_ns);
        id
    }
}

/// Per-component latency decomposition of all sampled trees.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentPath {
    /// Component name.
    pub component: String,
    /// Total `process` time of sampled tuples, ns.
    pub compute_ns: u64,
    /// Total inbound queue + batch-buffer wait of sampled tuples, ns.
    pub queue_in_ns: u64,
    /// Total replay-emission time charged to this (spout) component, ns.
    pub replay_ns: u64,
    /// Sampled tuples processed (or emitted, for spouts).
    pub tuples: u64,
}

/// One directed edge of the backpressure report.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePath {
    /// Upstream component.
    pub from: String,
    /// Downstream component.
    pub to: String,
    /// Total queue + batch-buffer wait on this edge, ns.
    pub queue_ns: u64,
    /// Sampled tuple hops measured on this edge.
    pub tuples: u64,
}

/// Critical-path attribution over every sampled span: where did end-to-end
/// latency go, per component and per edge, and which component dominates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPathReport {
    /// Distinct sampled tuple trees observed.
    pub traces: u64,
    /// Spans folded into this report.
    pub spans: u64,
    /// Spans lost to full rings (undercounts, never blocks).
    pub dropped_spans: u64,
    /// Completed trees (a `Completion` span was seen).
    pub completed: u64,
    /// Replay spans observed.
    pub replays: u64,
    /// Per-component decomposition, sorted by `compute_ns + queue_in_ns`
    /// descending — index 0 is the bottleneck.
    pub components: Vec<ComponentPath>,
    /// Per-edge queue-wait totals, sorted by `queue_ns` descending.
    pub edges: Vec<EdgePath>,
    /// The component with the largest `compute + inbound queue` share —
    /// inbound wait is charged to the slow consumer, not the producer.
    pub bottleneck: Option<String>,
}

/// Connectivity summary of one assembled tuple tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Tree id.
    pub trace: u64,
    /// Spans in the tree.
    pub spans: usize,
    /// Spans with `parent == 0` (must be exactly 1: the spout emit).
    pub roots: usize,
    /// Spans whose parent id resolves to no span in the tree.
    pub orphans: usize,
    /// Replay spans in the tree.
    pub replays: usize,
    /// `true` iff the tree has exactly one root and no orphans.
    pub connected: bool,
}

/// Groups spans by trace and checks each tree's connectivity. Used by the
/// completeness tests: a tree that survived a restart, a migration and a
/// replay must still come back `connected`.
pub fn summarize(spans: &[Span]) -> Vec<TraceSummary> {
    let mut by_trace: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace).or_default().push(s);
    }
    by_trace
        .into_iter()
        .map(|(trace, spans)| {
            let ids: HashSet<u64> = spans.iter().map(|s| s.id).collect();
            let roots = spans.iter().filter(|s| s.parent == 0).count();
            let orphans = spans
                .iter()
                .filter(|s| s.parent != 0 && !ids.contains(&s.parent))
                .count();
            let replays =
                spans.iter().filter(|s| s.kind == SpanKind::Replay).count();
            TraceSummary {
                trace,
                spans: spans.len(),
                roots,
                orphans,
                replays,
                connected: roots == 1 && orphans == 0,
            }
        })
        .collect()
}

struct PathAccum {
    traces: HashSet<u64>,
    spans: u64,
    completed: u64,
    replays: u64,
    /// component → (compute_ns, queue_in_ns, replay_ns, tuples)
    components: BTreeMap<String, (u64, u64, u64, u64)>,
    /// (from, to) → (queue_ns, tuples)
    edges: BTreeMap<(String, String), (u64, u64)>,
}

impl PathAccum {
    fn new() -> Self {
        PathAccum {
            traces: HashSet::new(),
            spans: 0,
            completed: 0,
            replays: 0,
            components: BTreeMap::new(),
            edges: BTreeMap::new(),
        }
    }

    fn fold(&mut self, span: &Span, name_of: &dyn Fn(u32) -> String) {
        self.traces.insert(span.trace);
        self.spans += 1;
        let here = name_of(span.task);
        let slot = self.components.entry(here.clone()).or_default();
        match span.kind {
            SpanKind::SpoutEmit => slot.3 += 1,
            SpanKind::Process => {
                slot.0 += span.dur_ns;
                slot.3 += 1;
            }
            SpanKind::Queue => {
                slot.1 += span.dur_ns;
                let from = name_of(span.other);
                let e = self.edges.entry((from, here)).or_default();
                e.0 += span.dur_ns;
                e.1 += 1;
            }
            SpanKind::BatchFlush => {
                // Buffer residency is wait *towards* the destination: charge
                // the edge and the destination's inbound total.
                let to = name_of(span.other);
                self.components.entry(to.clone()).or_default().1 += span.dur_ns;
                let e = self.edges.entry((here, to)).or_default();
                e.0 += span.dur_ns;
                e.1 += 1;
            }
            SpanKind::Replay => {
                slot.2 += span.dur_ns;
                self.replays += 1;
            }
            SpanKind::Completion => self.completed += 1,
        }
    }

    fn report(&self, dropped: u64) -> CriticalPathReport {
        let mut components: Vec<ComponentPath> = self
            .components
            .iter()
            .map(|(name, &(compute, queue, replay, tuples))| ComponentPath {
                component: name.clone(),
                compute_ns: compute,
                queue_in_ns: queue,
                replay_ns: replay,
                tuples,
            })
            .collect();
        components.sort_by(|a, b| {
            (b.compute_ns + b.queue_in_ns)
                .cmp(&(a.compute_ns + a.queue_in_ns))
                .then_with(|| a.component.cmp(&b.component))
        });
        let mut edges: Vec<EdgePath> = self
            .edges
            .iter()
            .map(|((from, to), &(queue_ns, tuples))| EdgePath {
                from: from.clone(),
                to: to.clone(),
                queue_ns,
                tuples,
            })
            .collect();
        edges.sort_by_key(|e| std::cmp::Reverse(e.queue_ns));
        let bottleneck = components
            .iter()
            .find(|c| c.compute_ns + c.queue_in_ns > 0)
            .map(|c| c.component.clone());
        CriticalPathReport {
            traces: self.traces.len() as u64,
            spans: self.spans,
            dropped_spans: dropped,
            completed: self.completed,
            replays: self.replays,
            components,
            edges,
            bottleneck,
        }
    }
}

struct CollectorInner {
    /// task → (component name, ring).
    rings: HashMap<u32, (String, Arc<SpanRing>)>,
    /// Drained spans retained for export (empty when `export` is off).
    spans: Vec<Span>,
    path: PathAccum,
}

/// Central assembly point: owns the per-task rings, drains them into one
/// store, and renders the export formats. One per submitted topology.
pub struct TraceCollector {
    epoch: Instant,
    config: LineageConfig,
    inner: Mutex<CollectorInner>,
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl TraceCollector {
    /// Creates a collector whose spans are timed against `epoch` — share
    /// the same epoch with the flight recorder so spans and control-plane
    /// events line up on one clock.
    pub fn new(config: LineageConfig, epoch: Instant) -> Self {
        TraceCollector {
            epoch,
            config,
            inner: Mutex::new(CollectorInner {
                rings: HashMap::new(),
                spans: Vec::new(),
                path: PathAccum::new(),
            }),
        }
    }

    /// The shared observability epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The active configuration.
    pub fn config(&self) -> LineageConfig {
        self.config
    }

    /// Registers task `task` of `component` and returns its producer sink.
    pub(crate) fn register_task(&self, task: u32, component: &str) -> SpanSink {
        let ring = Arc::new(SpanRing::new(self.config.ring_capacity));
        self.inner
            .lock()
            .rings
            .insert(task, (component.to_string(), ring.clone()));
        SpanSink {
            ring,
            task,
            next: 0,
            epoch: self.epoch,
            threshold: self.config.threshold(),
        }
    }

    /// Drains every ring into the central store, folding each span into the
    /// critical-path accumulator (and retaining it only when exporting).
    pub fn drain(&self) {
        let mut inner = self.inner.lock();
        let mut fresh = Vec::new();
        for (_, ring) in inner.rings.values() {
            ring.drain_into(&mut fresh);
        }
        let names: HashMap<u32, String> = inner
            .rings
            .iter()
            .map(|(&t, (name, _))| (t, name.clone()))
            .collect();
        let name_of = |t: u32| {
            names.get(&t).cloned().unwrap_or_else(|| format!("task{t}"))
        };
        for span in &fresh {
            inner.path.fold(span, &name_of);
        }
        if self.config.export {
            inner.spans.extend(fresh);
        }
    }

    /// Merges spans recorded by another process (a remote worker's
    /// report): folds each into the critical-path attribution and retains
    /// it when exporting, exactly like locally drained spans. Task names
    /// fall back to `task{t}` for tasks not registered in this process —
    /// remote task ids are global, so cross-worker attribution still
    /// aggregates by span kind and task id.
    pub fn ingest_spans(&self, spans: &[Span]) {
        if spans.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        let names: HashMap<u32, String> = inner
            .rings
            .iter()
            .map(|(&t, (name, _))| (t, name.clone()))
            .collect();
        let name_of = |t: u32| names.get(&t).cloned().unwrap_or_else(|| format!("task{t}"));
        for span in spans {
            inner.path.fold(span, &name_of);
        }
        if self.config.export {
            inner.spans.extend_from_slice(spans);
        }
    }

    /// Spans lost to full rings so far.
    pub fn dropped_spans(&self) -> u64 {
        self.inner.lock().rings.values().map(|(_, r)| r.dropped()).sum()
    }

    /// Drains and returns a copy of all retained spans (the store keeps
    /// them for later renders).
    pub fn spans(&self) -> Vec<Span> {
        self.drain();
        self.inner.lock().spans.clone()
    }

    /// Drains and *takes* the retained spans, leaving the store empty.
    pub fn take_spans(&self) -> Vec<Span> {
        self.drain();
        std::mem::take(&mut self.inner.lock().spans)
    }

    /// Component name for a registered task.
    pub fn component_of(&self, task: u32) -> Option<String> {
        self.inner.lock().rings.get(&task).map(|(n, _)| n.clone())
    }

    /// The full task → component map (for rendering exported spans after
    /// the collector is gone, e.g. from `RunReport::traces`).
    pub fn components(&self) -> HashMap<u32, String> {
        self.inner
            .lock()
            .rings
            .iter()
            .map(|(&t, (name, _))| (t, name.clone()))
            .collect()
    }

    /// The critical-path attribution over everything drained so far.
    pub fn critical_path(&self) -> CriticalPathReport {
        self.drain();
        let dropped = self.dropped_spans();
        self.inner.lock().path.report(dropped)
    }

    /// Connectivity summaries of the retained trees.
    pub fn summaries(&self) -> Vec<TraceSummary> {
        summarize(&self.spans())
    }

    /// Renders the retained spans as Chrome `trace_event` JSON (open in
    /// `chrome://tracing` or Perfetto). Complete-event (`ph:"X"`) slices,
    /// microsecond timestamps, one `tid` per task.
    pub fn render_chrome_json(&self) -> String {
        self.drain();
        let inner = self.inner.lock();
        let names: HashMap<u32, String> = inner
            .rings
            .iter()
            .map(|(&t, (name, _))| (t, name.clone()))
            .collect();
        render_chrome_trace(&inner.spans, &names)
    }

    /// Renders the retained spans as one JSON object per line.
    pub fn render_jsonl(&self) -> String {
        self.drain();
        let inner = self.inner.lock();
        let mut out = String::with_capacity(inner.spans.len() * 160);
        for s in &inner.spans {
            let comp = inner
                .rings
                .get(&s.task)
                .map(|(n, _)| n.as_str())
                .unwrap_or("?");
            out.push_str(&format!(
                "{{\"trace\":\"{:#018x}\",\"span\":\"{:#x}\",\"parent\":\"{:#x}\",\
                 \"kind\":\"{}\",\"component\":{},\"task\":{},\"other\":{},\
                 \"start_ns\":{},\"dur_ns\":{}}}\n",
                s.trace,
                s.id,
                s.parent,
                s.kind.name(),
                json_str(comp),
                s.task,
                s.other,
                s.start_ns,
                s.dur_ns,
            ));
        }
        out
    }
}

/// Renders a span slice as Chrome `trace_event` JSON — the standalone
/// face of [`TraceCollector::render_chrome_json`], for spans that
/// outlived their collector (e.g. a `RunReport`'s exported traces paired
/// with [`TraceCollector::components`]). Unknown tasks render as `"?"`.
pub fn render_chrome_trace(spans: &[Span], names: &HashMap<u32, String>) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut threads: Vec<(&u32, &String)> = names.iter().collect();
    threads.sort(); // HashMap order would make re-renders differ bytewise
    for (task, name) in threads {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{task},\
             \"args\":{{\"name\":{}}}}}",
            json_str(name)
        ));
    }
    for s in spans {
        let comp = names.get(&s.task).map(String::as_str).unwrap_or("?");
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":0,\"tid\":{},\"args\":{{\"trace\":\"{:#018x}\",\
             \"span\":\"{:#x}\",\"parent\":\"{:#x}\",\"other\":{}}}}}",
            json_str(&format!("{}:{}", comp, s.kind.name())),
            s.kind.name(),
            s.start_ns as f64 / 1_000.0,
            s.dur_ns as f64 / 1_000.0,
            s.task,
            s.trace,
            s.id,
            s.parent,
            s.other,
        ));
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaper (the metrics module has its own; lineage
/// stays dependency-free too).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a [`CriticalPathReport`] as JSON (used by `/trace` summaries and
/// the bench exporter).
pub fn render_critical_path_json(r: &CriticalPathReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"traces\":{},\"spans\":{},\"dropped_spans\":{},\"completed\":{},\
         \"replays\":{},\"bottleneck\":{},",
        r.traces,
        r.spans,
        r.dropped_spans,
        r.completed,
        r.replays,
        r.bottleneck.as_deref().map(json_str).unwrap_or_else(|| "null".into()),
    ));
    out.push_str("\"components\":[");
    for (i, c) in r.components.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"component\":{},\"compute_ns\":{},\"queue_in_ns\":{},\
             \"replay_ns\":{},\"tuples\":{}}}",
            json_str(&c.component),
            c.compute_ns,
            c.queue_in_ns,
            c.replay_ns,
            c.tuples
        ));
    }
    out.push_str("],\"edges\":[");
    for (i, e) in r.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"from\":{},\"to\":{},\"queue_ns\":{},\"tuples\":{}}}",
            json_str(&e.from),
            json_str(&e.to),
            e.queue_ns,
            e.tuples
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, kind: SpanKind, task: u32) -> Span {
        Span { trace, id, parent, kind, task, other: 0, start_ns: 0, dur_ns: 10 }
    }

    #[test]
    fn ring_roundtrips_in_order_and_drops_newest_on_full() {
        let ring = SpanRing::new(4);
        for i in 1..=4 {
            assert!(ring.push(span(1, i, 0, SpanKind::Process, 0)));
        }
        assert!(!ring.push(span(1, 5, 0, SpanKind::Process, 0)), "full ring drops");
        assert_eq!(ring.dropped(), 1);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.iter().map(|s| s.id).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        // Space again after the drain.
        assert!(ring.push(span(1, 6, 0, SpanKind::Process, 0)));
        out.clear();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 6);
    }

    #[test]
    fn sampler_threshold_is_inclusive_and_scales() {
        let all = LineageConfig { sample_rate: 1.0, ..Default::default() };
        assert_eq!(all.threshold(), u64::MAX);
        let none = LineageConfig { sample_rate: 0.0, ..Default::default() };
        assert_eq!(none.threshold(), 0);
        let half = LineageConfig { sample_rate: 0.5, ..Default::default() };
        let t = half.threshold();
        assert!(t > u64::MAX / 3 && t < u64::MAX / 3 * 2);
    }

    #[test]
    fn summarize_flags_orphans_and_multiple_roots() {
        let spans = vec![
            span(7, 100, 0, SpanKind::SpoutEmit, 0),
            span(7, 101, 100, SpanKind::Queue, 1),
            span(7, 102, 101, SpanKind::Process, 1),
            // Second trace: an orphan (parent 999 unknown) and two roots.
            span(9, 200, 0, SpanKind::SpoutEmit, 0),
            span(9, 201, 999, SpanKind::Queue, 1),
            span(9, 202, 0, SpanKind::SpoutEmit, 0),
        ];
        let sums = summarize(&spans);
        assert_eq!(sums.len(), 2);
        assert!(sums[0].connected && sums[0].trace == 7);
        assert!(!sums[1].connected);
        assert_eq!(sums[1].orphans, 1);
        assert_eq!(sums[1].roots, 2);
    }

    #[test]
    fn collector_assembles_and_attributes_the_critical_path() {
        let c = TraceCollector::new(LineageConfig::full(), Instant::now());
        let mut spout = c.register_task(0, "src");
        let mut slow = c.register_task(1, "slow");
        let emit = spout.record(42, 0, SpanKind::SpoutEmit, 0, 0, 1_000);
        let q = slow.record(42, emit, SpanKind::Queue, 0, 1_000, 50_000);
        slow.record(42, q, SpanKind::Process, 0, 51_000, 200_000);
        spout.record(42, emit, SpanKind::Completion, 0, 251_000, 0);

        let sums = c.summaries();
        assert_eq!(sums.len(), 1);
        assert!(sums[0].connected, "single tree with one root");

        let path = c.critical_path();
        assert_eq!(path.traces, 1);
        assert_eq!(path.completed, 1);
        assert_eq!(path.bottleneck.as_deref(), Some("slow"));
        let edge = &path.edges[0];
        assert_eq!((edge.from.as_str(), edge.to.as_str()), ("src", "slow"));
        assert_eq!(edge.queue_ns, 50_000);

        let chrome = c.render_chrome_json();
        assert!(chrome.starts_with("{\"displayTimeUnit\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("slow:process"));
        let jsonl = c.render_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn export_off_still_feeds_the_critical_path() {
        let cfg = LineageConfig { export: false, ..LineageConfig::full() };
        let c = TraceCollector::new(cfg, Instant::now());
        let mut s = c.register_task(0, "only");
        s.record(1, 0, SpanKind::Process, 0, 0, 5_000);
        assert!(c.spans().is_empty(), "no retention without export");
        let path = c.critical_path();
        assert_eq!(path.spans, 1);
        assert_eq!(path.bottleneck.as_deref(), Some("only"));
    }
}
