//! Multi-process topology execution over TCP: a Nimbus-style coordinator
//! plus worker processes, sharing one scheduler assignment.
//!
//! # Process model
//!
//! The process that calls [`DistributedCluster::submit`] is the
//! **coordinator** (worker 0). It computes the assignment (spout
//! components pinned to itself — see below), spawns `workers - 1` child
//! processes re-executing the current binary, hands each its executor
//! slice, and hosts the topology-wide services: the real
//! [`Acker`](crate::ack), the [`MetricsHub`] the scrape endpoint serves,
//! the flight recorder and the lineage store. Each **worker** process
//! calls [`run_worker`] (dispatched from a `worker_entry` hook in the
//! binary, selected by the `TMS_DSPS_SCENARIO` environment variable),
//! rebuilds the same topology from the same code, and runs only the
//! executors the assignment placed on it.
//!
//! ```text
//! coordinator                                  worker w (1..n)
//! ─────────────                                ───────────────
//! bind control listener                        bind data listener
//! spawn children  ───────────────────────────▶ dial coordinator
//! accept, read Hello  ◀──────────────────────  Hello{w, data addr, fingerprint}
//! validate fingerprints
//! Assignment{config, placements, peers} ─────▶ build local slice (submit_inner)
//!                                              dial peers j < w, accept j > w
//! wait all Ready      ◀──────────────────────  Ready
//! build local slice (spouts start here)
//! ...data / ack / metrics / control frames flow...
//! collect WorkerDone  ◀──────────────────────  WorkerDone{result, totals, events}
//! ```
//!
//! Spouts start only after every worker reported `Ready`, so no data
//! frame can race a worker's setup. Spout components are **pinned to the
//! coordinator**: tuple-tree registration is then a direct call into the
//! acker, which keeps Storm's register-before-xor ordering without any
//! cross-process ordering protocol (a worker's forwarded xor can only
//! concern a root the coordinator registered before emitting).
//!
//! # Wire format
//!
//! Every message is one [`transport`](crate::transport) frame; the tag
//! byte selects the session message (see the `tag` module). The data
//! plane ships [`Packet`]s — including whole micro-batches as one frame —
//! with acker traffic multiplexed on the same links. Messages carry no
//! process-local context: `Instant`-based fields (`t0`, lineage hops) do
//! not cross the wire, so end-to-end tracing histograms cover
//! coordinator-local deliveries only, and lineage spans re-root per
//! process (each process's spans still flow back to the coordinator).
//!
//! # Backpressure and faults
//!
//! A remote task's channel slot holds a bounded *relay* channel drained
//! by a per-peer egress thread into a bounded frame queue drained by a
//! per-link writer thread: every hop is bounded, so saturation
//! backpressures across the process boundary exactly like a full local
//! channel, and topology acyclicity rules out distributed send cycles.
//! With [`FaultConfig::drop_p`] set, the egress thread additionally
//! drops whole data frames (never `Eos`) with the configured
//! probability — at-least-once replay heals both per-delivery and
//! per-frame loss. A torn link or a worker crash before `WorkerDone`
//! surfaces as [`DspsError::Worker`] at join.

use crate::ack::{AckSink, Acker};
use crate::error::DspsError;
use crate::fault::FaultConfig;
use crate::flight::{FlightKind, FlightRecorder};
use crate::lineage::{LineageConfig, Span, SpanKind, TraceCollector};
use crate::metrics::{ComponentWindow, LatencyHistogram, MetricsHub, MonitorConfig, RuleProfile};
use crate::runtime::{
    BatchConfig, DistCtx, Envelope, LocalCluster, LocalIngress, Packet, ReliabilityConfig,
    RemoteDataPlane, RuntimeConfig, TopologyHandle,
};
use crate::scheduler::{assign_pinned, Assignment, ClusterSpec, ExecutorPlacement};
use crate::topology::Topology;
use crate::transport::{
    decode_value, encode_frame, encode_value_frame, BufferPool, Frame, FrameDecoder, WireCodec,
    WireReader,
};
use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, Select, Sender, TryRecvError};
use parking_lot::Mutex;
use rand::Rng;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variables carrying a worker process's identity.
const ENV_WORKER: &str = "TMS_DSPS_WORKER";
const ENV_COORD: &str = "TMS_DSPS_COORD";
const ENV_SCENARIO: &str = "TMS_DSPS_SCENARIO";

/// Frames queued per link between the egress/session side and the writer
/// thread. Bounded so a stalled peer backpressures instead of buffering
/// unboundedly.
const LINK_QUEUE: usize = 1024;

/// Handshake read timeout (worker startup includes process spawn).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

/// How long `join` waits for each worker's `WorkerDone` after the
/// coordinator's own executors drained.
const DONE_TIMEOUT: Duration = Duration::from_secs(120);

/// Cadence of a worker's cumulative metrics push to the coordinator.
const METRICS_PUSH_EVERY: Duration = Duration::from_millis(200);

/// Session-layer frame tags (the version byte of each message kind).
mod tag {
    /// worker → coordinator (also dialer → acceptor on mesh links):
    /// identity, data-listener address, topology fingerprint.
    pub const HELLO: u8 = 1;
    /// coordinator → worker: runtime config + assignment + peer table.
    pub const ASSIGNMENT: u8 = 2;
    /// any → any: `[dest_global: u32][Packet]`.
    pub const DATA: u8 = 3;
    /// worker → coordinator: one acker operation.
    pub const ACK: u8 = 4;
    /// worker → coordinator: cumulative per-component totals.
    pub const METRICS: u8 = 5;
    /// worker → coordinator: local slice built, mesh links up.
    pub const READY: u8 = 6;
    /// worker → coordinator: final result, totals, flight events, spans.
    pub const DONE: u8 = 7;
    /// coordinator → worker: `[subtag: u8][payload]`, dispatched to
    /// [`WorkerHooks::on_control`](super::WorkerHooks::on_control).
    pub const CONTROL: u8 = 8;
}

// ---------------------------------------------------------------------------
// Wire codecs for the runtime/observability types that cross links.
// Field order is the format version (see `transport`).
// ---------------------------------------------------------------------------

impl WireCodec for ExecutorPlacement {
    fn encode(&self, buf: &mut BytesMut) {
        self.component.encode(buf);
        self.executor_index.encode(buf);
        self.tasks.iter().map(|&t| t as u64).collect::<Vec<u64>>().encode(buf);
        self.worker.encode(buf);
        self.node.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(ExecutorPlacement {
            component: String::decode(r)?,
            executor_index: usize::decode(r)?,
            tasks: Vec::<u64>::decode(r)?.into_iter().map(|t| t as usize).collect(),
            worker: usize::decode(r)?,
            node: usize::decode(r)?,
        })
    }
}

impl WireCodec for Assignment {
    fn encode(&self, buf: &mut BytesMut) {
        self.placements.encode(buf);
        self.workers.encode(buf);
        self.nodes.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(Assignment {
            placements: Vec::decode(r)?,
            workers: usize::decode(r)?,
            nodes: usize::decode(r)?,
        })
    }
}

impl WireCodec for ReliabilityConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.ack_timeout.encode(buf);
        (self.max_retries as u64).encode(buf);
        self.backoff.encode(buf);
        self.max_pending.encode(buf);
        (self.max_task_restarts as u64).encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(ReliabilityConfig {
            ack_timeout: Duration::decode(r)?,
            max_retries: u64::decode(r)? as u32,
            backoff: f64::decode(r)?,
            max_pending: usize::decode(r)?,
            max_task_restarts: u64::decode(r)? as u32,
        })
    }
}

impl WireCodec for FaultConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.panic_p.encode(buf);
        self.drop_p.encode(buf);
        self.delay.encode(buf);
        self.seed.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(FaultConfig {
            panic_p: f64::decode(r)?,
            drop_p: f64::decode(r)?,
            delay: Option::decode(r)?,
            seed: u64::decode(r)?,
        })
    }
}

impl WireCodec for BatchConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.max_batch.encode(buf);
        self.max_linger.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(BatchConfig { max_batch: usize::decode(r)?, max_linger: Duration::decode(r)? })
    }
}

impl WireCodec for LineageConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.sample_rate.encode(buf);
        self.export.encode(buf);
        self.ring_capacity.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(LineageConfig {
            sample_rate: f64::decode(r)?,
            export: bool::decode(r)?,
            ring_capacity: usize::decode(r)?,
        })
    }
}

impl WireCodec for MonitorConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.window.encode(buf);
        self.tracing.encode(buf);
        self.retention.encode(buf);
        self.profiling.encode(buf);
        self.expose.map(u32::from).encode(buf);
        self.lineage.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(MonitorConfig {
            window: Duration::decode(r)?,
            tracing: bool::decode(r)?,
            retention: usize::decode(r)?,
            profiling: bool::decode(r)?,
            expose: Option::<u32>::decode(r)?.map(|p| p as u16),
            lineage: Option::decode(r)?,
        })
    }
}

impl WireCodec for LatencyHistogram {
    fn encode(&self, buf: &mut BytesMut) {
        for &b in self.buckets() {
            b.encode(buf);
        }
        self.sum_ns().encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        let mut buckets = [0u64; crate::metrics::LATENCY_BUCKETS];
        for b in buckets.iter_mut() {
            *b = u64::decode(r)?;
        }
        Ok(LatencyHistogram::from_parts(buckets, u64::decode(r)?))
    }
}

impl WireCodec for RuleProfile {
    fn encode(&self, buf: &mut BytesMut) {
        self.rule.encode(buf);
        self.engine.encode(buf);
        self.events_in.encode(buf);
        self.evals.encode(buf);
        self.firings.encode(buf);
        self.rows_out.encode(buf);
        self.eval.encode(buf);
        self.path_shared.encode(buf);
        self.path_incremental.encode(buf);
        self.path_anchor.encode(buf);
        self.path_rescan.encode(buf);
        self.window_len.encode(buf);
        self.threshold_age.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(RuleProfile {
            rule: String::decode(r)?,
            engine: usize::decode(r)?,
            events_in: u64::decode(r)?,
            evals: u64::decode(r)?,
            firings: u64::decode(r)?,
            rows_out: u64::decode(r)?,
            eval: LatencyHistogram::decode(r)?,
            path_shared: u64::decode(r)?,
            path_incremental: u64::decode(r)?,
            path_anchor: u64::decode(r)?,
            path_rescan: u64::decode(r)?,
            window_len: u64::decode(r)?,
            threshold_age: Option::decode(r)?,
        })
    }
}

impl WireCodec for ComponentWindow {
    fn encode(&self, buf: &mut BytesMut) {
        self.component.encode(buf);
        self.at.encode(buf);
        self.len.encode(buf);
        self.partial.encode(buf);
        self.throughput.encode(buf);
        self.avg_latency.encode(buf);
        self.emitted.encode(buf);
        self.dropped.encode(buf);
        self.misrouted.encode(buf);
        self.acked.encode(buf);
        self.failed.encode(buf);
        self.replayed.encode(buf);
        self.restarted.encode(buf);
        self.injected_panics.encode(buf);
        self.injected_latency.encode(buf);
        self.injected_drops.encode(buf);
        self.e2e.encode(buf);
        self.queue_depth.encode(buf);
        self.queue_depth_max.encode(buf);
        self.queue_capacity.encode(buf);
        self.rules.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(ComponentWindow {
            component: String::decode(r)?,
            at: Duration::decode(r)?,
            len: Duration::decode(r)?,
            partial: bool::decode(r)?,
            throughput: u64::decode(r)?,
            avg_latency: Option::decode(r)?,
            emitted: u64::decode(r)?,
            dropped: u64::decode(r)?,
            misrouted: u64::decode(r)?,
            acked: u64::decode(r)?,
            failed: u64::decode(r)?,
            replayed: u64::decode(r)?,
            restarted: u64::decode(r)?,
            injected_panics: u64::decode(r)?,
            injected_latency: u64::decode(r)?,
            injected_drops: u64::decode(r)?,
            e2e: LatencyHistogram::decode(r)?,
            queue_depth: u64::decode(r)?,
            queue_depth_max: u64::decode(r)?,
            queue_capacity: u64::decode(r)?,
            rules: Vec::decode(r)?,
        })
    }
}

fn span_kind_to_wire(k: SpanKind) -> u8 {
    match k {
        SpanKind::SpoutEmit => 0,
        SpanKind::Queue => 1,
        SpanKind::Process => 2,
        SpanKind::BatchFlush => 3,
        SpanKind::Replay => 4,
        SpanKind::Completion => 5,
    }
}

fn span_kind_from_wire(v: u8) -> Result<SpanKind, DspsError> {
    Ok(match v {
        0 => SpanKind::SpoutEmit,
        1 => SpanKind::Queue,
        2 => SpanKind::Process,
        3 => SpanKind::BatchFlush,
        4 => SpanKind::Replay,
        5 => SpanKind::Completion,
        k => return Err(DspsError::Frame { reason: format!("invalid span kind {k}") }),
    })
}

impl WireCodec for Span {
    fn encode(&self, buf: &mut BytesMut) {
        self.trace.encode(buf);
        self.id.encode(buf);
        self.parent.encode(buf);
        span_kind_to_wire(self.kind).encode(buf);
        self.task.encode(buf);
        self.other.encode(buf);
        self.start_ns.encode(buf);
        self.dur_ns.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(Span {
            trace: u64::decode(r)?,
            id: u64::decode(r)?,
            parent: u64::decode(r)?,
            kind: span_kind_from_wire(u8::decode(r)?)?,
            task: u32::decode(r)?,
            other: u32::decode(r)?,
            start_ns: u64::decode(r)?,
            dur_ns: u64::decode(r)?,
        })
    }
}

/// A flight-recorder event as shipped by a worker: the kind travels by
/// its stable name so the set can grow without renumbering.
struct WireFlightEvent {
    at_ns: u64,
    kind: String,
    component: String,
    task: i64,
    detail: String,
}

impl WireCodec for WireFlightEvent {
    fn encode(&self, buf: &mut BytesMut) {
        self.at_ns.encode(buf);
        self.kind.encode(buf);
        self.component.encode(buf);
        self.task.encode(buf);
        self.detail.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(WireFlightEvent {
            at_ns: u64::decode(r)?,
            kind: String::decode(r)?,
            component: String::decode(r)?,
            task: i64::decode(r)?,
            detail: String::decode(r)?,
        })
    }
}

/// The [`RuntimeConfig`] scalars a worker needs to rebuild its slice.
/// The flight recorder and `workers` are process-local; the monitor's
/// `expose` is forced off on workers (the coordinator serves the merged
/// view).
struct WireConfig {
    channel_capacity: usize,
    reliability: Option<ReliabilityConfig>,
    fault: Option<FaultConfig>,
    batch: Option<BatchConfig>,
    monitor: Option<MonitorConfig>,
    durability: Option<(String, (u64, bool))>,
}

impl WireConfig {
    fn of(config: &RuntimeConfig) -> Self {
        WireConfig {
            channel_capacity: config.channel_capacity,
            reliability: config.reliability,
            fault: config.fault,
            batch: config.batch,
            monitor: config.monitor,
            durability: config
                .durability
                .as_ref()
                .map(|d| (d.dir.to_string_lossy().into_owned(), (d.snapshot_every, d.fsync))),
        }
    }

    fn into_runtime(self) -> RuntimeConfig {
        RuntimeConfig {
            channel_capacity: self.channel_capacity,
            workers: None,
            monitor: self.monitor.map(|mut mc| {
                mc.expose = None;
                mc
            }),
            reliability: self.reliability,
            fault: self.fault,
            batch: self.batch,
            durability: self.durability.map(|(dir, (snapshot_every, fsync))| {
                crate::durability::DurabilityConfig {
                    dir: std::path::PathBuf::from(dir),
                    snapshot_every,
                    fsync,
                }
            }),
            flight: None,
        }
    }
}

impl WireCodec for WireConfig {
    fn encode(&self, buf: &mut BytesMut) {
        self.channel_capacity.encode(buf);
        self.reliability.encode(buf);
        self.fault.encode(buf);
        self.batch.encode(buf);
        self.monitor.encode(buf);
        self.durability.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(WireConfig {
            channel_capacity: usize::decode(r)?,
            reliability: Option::decode(r)?,
            fault: Option::decode(r)?,
            batch: Option::decode(r)?,
            monitor: Option::decode(r)?,
            durability: Option::decode(r)?,
        })
    }
}

struct Hello {
    worker: usize,
    data_addr: String,
    fingerprint: u64,
}

impl WireCodec for Hello {
    fn encode(&self, buf: &mut BytesMut) {
        self.worker.encode(buf);
        self.data_addr.encode(buf);
        self.fingerprint.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(Hello {
            worker: usize::decode(r)?,
            data_addr: String::decode(r)?,
            fingerprint: u64::decode(r)?,
        })
    }
}

struct WireAssignment {
    config: WireConfig,
    assignment: Assignment,
    /// Worker data-listener addresses, indexed by worker id (entry 0
    /// unused — the coordinator is reached over the control link).
    peers: Vec<String>,
    fingerprint: u64,
}

impl WireCodec for WireAssignment {
    fn encode(&self, buf: &mut BytesMut) {
        self.config.encode(buf);
        self.assignment.encode(buf);
        self.peers.encode(buf);
        self.fingerprint.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(WireAssignment {
            config: WireConfig::decode(r)?,
            assignment: Assignment::decode(r)?,
            peers: Vec::decode(r)?,
            fingerprint: u64::decode(r)?,
        })
    }
}

struct WorkerDone {
    worker: usize,
    error: Option<String>,
    totals: Vec<ComponentWindow>,
    flight: Vec<WireFlightEvent>,
    spans: Vec<Span>,
}

impl WireCodec for WorkerDone {
    fn encode(&self, buf: &mut BytesMut) {
        self.worker.encode(buf);
        self.error.encode(buf);
        self.totals.encode(buf);
        self.flight.encode(buf);
        self.spans.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DspsError> {
        Ok(WorkerDone {
            worker: usize::decode(r)?,
            error: Option::decode(r)?,
            totals: Vec::decode(r)?,
            flight: Vec::decode(r)?,
            spans: Vec::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Packet / Envelope wire form.
// ---------------------------------------------------------------------------

fn encode_envelope<T: WireCodec>(env: &Envelope<T>, buf: &mut BytesMut) {
    env.tid.encode(buf);
    env.roots.encode(buf);
    env.msg.as_inner().encode(buf);
}

fn decode_envelope<T: WireCodec>(r: &mut WireReader<'_>) -> Result<Envelope<T>, DspsError> {
    let tid = u64::decode(r)?;
    let roots = Vec::decode(r)?;
    let msg = T::decode(r)?;
    Ok(Envelope::from_wire(msg, tid, roots))
}

fn encode_packet<T: WireCodec>(p: &Packet<T>, buf: &mut BytesMut) {
    match p {
        Packet::Data(env) => {
            buf.put_u8(0);
            encode_envelope(env, buf);
        }
        Packet::Batch(envs) => {
            buf.put_u8(1);
            buf.put_u32_le(envs.len() as u32);
            for env in envs {
                encode_envelope(env, buf);
            }
        }
        Packet::Eos => buf.put_u8(2),
    }
}

fn decode_packet<T: WireCodec>(r: &mut WireReader<'_>) -> Result<Packet<T>, DspsError> {
    Ok(match r.u8()? {
        0 => Packet::Data(decode_envelope(r)?),
        1 => {
            let n = r.u32_le()? as usize;
            if n > r.remaining() {
                return Err(DspsError::Frame {
                    reason: format!("batch claims {n} envelopes with {} bytes left", r.remaining()),
                });
            }
            let mut envs = Vec::with_capacity(n);
            for _ in 0..n {
                envs.push(decode_envelope(r)?);
            }
            Packet::Batch(envs)
        }
        2 => Packet::Eos,
        k => return Err(DspsError::Frame { reason: format!("invalid packet kind {k}") }),
    })
}

// ---------------------------------------------------------------------------
// Topology fingerprint: both sides must have built the same graph.
// ---------------------------------------------------------------------------

/// A structural fingerprint of the topology: component names,
/// parallelism, and subscription edges with their grouping discipline.
/// Coordinator and workers rebuild the topology independently from the
/// same code; a fingerprint mismatch means the `scenario` dispatch built
/// a different graph and the run is refused before any data flows.
fn topology_fingerprint<T>(topology: &Topology<T>) -> u64 {
    use crate::grouping::{Grouping, StableSipHasher13};
    use std::hash::Hasher;
    let mut h = StableSipHasher13::new();
    fn put(h: &mut StableSipHasher13, s: &str) {
        h.write(&(s.len() as u32).to_le_bytes());
        h.write(s.as_bytes());
    }
    put(&mut h, topology.name());
    for s in &topology.spouts {
        put(&mut h, "spout");
        put(&mut h, &s.name);
        h.write(&(s.parallelism.tasks as u64).to_le_bytes());
        h.write(&(s.parallelism.executors as u64).to_le_bytes());
    }
    for b in &topology.bolts {
        put(&mut h, "bolt");
        put(&mut h, &b.name);
        h.write(&(b.parallelism.tasks as u64).to_le_bytes());
        h.write(&(b.parallelism.executors as u64).to_le_bytes());
        for sub in &b.subscriptions {
            put(&mut h, &sub.source);
            let g: u8 = match sub.grouping {
                Grouping::Shuffle => 0,
                Grouping::Fields(_) => 1,
                Grouping::All => 2,
                Grouping::Direct => 3,
            };
            h.write(&[g]);
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Link plumbing: one writer thread and one reader thread per TCP link.
// ---------------------------------------------------------------------------

/// What the session side hands a link's writer thread.
enum WriteOp {
    /// One encoded frame: written with a single `write_all`, then the
    /// allocation is recycled into the link's buffer pool.
    Frame(Bytes),
    /// Flush barrier: everything enqueued before it is on the socket
    /// when the ack fires.
    Flush(Sender<()>),
}

/// Spawns the writer thread owning the write half of a link. Exits when
/// every sender is dropped (after draining) or on a socket error.
fn spawn_link_writer(
    mut stream: TcpStream,
    pool: Arc<BufferPool>,
) -> (Sender<WriteOp>, std::thread::JoinHandle<()>) {
    let (tx, rx) = bounded::<WriteOp>(LINK_QUEUE);
    let handle = std::thread::spawn(move || {
        while let Ok(op) = rx.recv() {
            match op {
                WriteOp::Frame(frame) => {
                    if stream.write_all(&frame).is_err() {
                        return;
                    }
                    pool.recycle(frame);
                }
                WriteOp::Flush(ack) => {
                    let _ = stream.flush();
                    let _ = ack.send(());
                }
            }
        }
    });
    (tx, handle)
}

/// Reads frames off a link until EOF or error, handing each to `on_frame`
/// (which returns `false` to stop reading). `decoder` may carry bytes
/// left over from the synchronous handshake reads.
fn run_link_reader(
    mut stream: TcpStream,
    mut decoder: FrameDecoder,
    mut on_frame: impl FnMut(Frame) -> bool,
) -> Result<(), DspsError> {
    let _ = stream.set_read_timeout(None);
    let mut chunk = [0u8; 64 * 1024];
    loop {
        while let Some(frame) = decoder.next()? {
            if !on_frame(frame) {
                return Ok(());
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => decoder.push(&chunk[..n]),
            Err(e) => {
                return Err(DspsError::Transport {
                    peer: stream.peer_addr().map_or_else(|_| "?".into(), |a| a.to_string()),
                    reason: e.to_string(),
                })
            }
        }
    }
}

/// Synchronously reads one frame during the handshake, with a deadline.
fn read_frame_sync(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    timeout: Duration,
) -> Result<Frame, DspsError> {
    let deadline = Instant::now() + timeout;
    let peer = stream.peer_addr().map_or_else(|_| "?".into(), |a| a.to_string());
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if let Some(frame) = decoder.next()? {
            return Ok(frame);
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(DspsError::Transport {
                peer,
                reason: "handshake timed out".into(),
            });
        }
        let _ = stream.set_read_timeout(Some((deadline - now).min(Duration::from_millis(250))));
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(DspsError::Transport {
                    peer,
                    reason: "link closed during handshake".into(),
                })
            }
            Ok(n) => decoder.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(DspsError::Transport { peer, reason: e.to_string() }),
        }
    }
}

/// Synchronously writes one frame during the handshake.
fn write_frame_sync(stream: &mut TcpStream, frame: &Bytes) -> Result<(), DspsError> {
    stream.write_all(frame).map_err(|e| DspsError::Transport {
        peer: stream.peer_addr().map_or_else(|_| "?".into(), |a| a.to_string()),
        reason: e.to_string(),
    })
}

// ---------------------------------------------------------------------------
// The data plane.
// ---------------------------------------------------------------------------

/// Erased handle for tearing a plane down from the non-generic
/// [`DistributedHandle`].
trait PlaneControl: Send + Sync {
    fn shutdown(&self);
}

/// Relay channels toward remote tasks, keyed by `(worker, dest_global)`.
type RelayMap<T> = HashMap<(usize, u32), Sender<Packet<T>>>;

/// Deferred construction of the runtime's ack sink, once the spout
/// completion channels exist (coordinator: the real [`Acker`]; worker: a
/// forwarder framing ops onto the coordinator link).
type MakeAckSink = Box<dyn FnOnce(Vec<Sender<(u64, Instant)>>) -> Arc<dyn AckSink> + Send>;

/// The process-local side of the wire data plane: relay channels toward
/// remote tasks, the ingress map for local tasks, and the frame queues of
/// every established link.
struct NetPlane<T> {
    pool: Arc<BufferPool>,
    links: Mutex<HashMap<usize, Sender<WriteOp>>>,
    ingress: Mutex<HashMap<u32, LocalIngress<T>>>,
    relays: Mutex<RelayMap<T>>,
    /// Relay receivers parked here between topology build and
    /// [`start_egress`](NetPlane::start_egress), grouped by peer.
    #[allow(clippy::type_complexity)]
    pending_egress: Mutex<HashMap<usize, Vec<(u32, Receiver<Packet<T>>)>>>,
    /// Link-level chaos (seeded): data frames toward peers are dropped
    /// with `drop_p`, exercising whole-frame loss on top of the
    /// emitter-level per-delivery drops.
    link_fault: Option<FaultConfig>,
    my_worker: usize,
}

impl<T: WireCodec + Clone + Send + Sync + 'static> NetPlane<T> {
    fn new(pool: Arc<BufferPool>, link_fault: Option<FaultConfig>, my_worker: usize) -> Self {
        NetPlane {
            pool,
            links: Mutex::new(HashMap::new()),
            ingress: Mutex::new(HashMap::new()),
            relays: Mutex::new(HashMap::new()),
            pending_egress: Mutex::new(HashMap::new()),
            link_fault: link_fault.filter(|f| f.drop_p > 0.0),
            my_worker,
        }
    }

    fn add_link(&self, worker: usize, tx: Sender<WriteOp>) {
        self.links.lock().insert(worker, tx);
    }

    fn link_to(&self, worker: usize) -> Option<Sender<WriteOp>> {
        self.links.lock().get(&worker).cloned()
    }

    /// Injects one received data frame (`[dest u32][Packet]`) into the
    /// destination task's input channel, bumping its occupancy gauge
    /// exactly like a local producer.
    fn inject(&self, payload: &[u8]) -> Result<(), DspsError> {
        let mut r = WireReader::new(payload);
        let dest = r.u32_le()?;
        let packet: Packet<T> = decode_packet(&mut r)?;
        let ingress = self.ingress.lock();
        let Some(entry) = ingress.get(&dest) else {
            return Err(DspsError::Frame {
                reason: format!("data frame for task {dest}, which is not local"),
            });
        };
        let tx = entry.tx.clone();
        if entry.tracing {
            let n = match &packet {
                Packet::Data(_) => 1,
                Packet::Batch(envs) => envs.len() as i64,
                Packet::Eos => 0,
            };
            entry.depth.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        }
        drop(ingress);
        // A send into a finished task's closed channel is the same
        // benign race as a local cross-task send after EOS: dropped.
        let _ = tx.send(packet);
        Ok(())
    }

    /// Spawns one egress thread per peer with queued relays: each drains
    /// its relay set, encodes packets into data frames, and feeds the
    /// peer link's writer queue. Exits when every relay sender is gone
    /// (see [`close_relays`](NetPlane::close_relays)).
    fn start_egress(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        let mut handles = Vec::new();
        for (peer, rxs) in self.pending_egress.lock().drain() {
            let link = match self.link_to(peer) {
                Some(l) => l,
                None => continue,
            };
            let pool = self.pool.clone();
            let mut chaos = self
                .link_fault
                .map(|f| (f.drop_p, f.rng_for(0x11CC ^ ((self.my_worker as u64) << 32) ^ peer as u64)));
            handles.push(std::thread::spawn(move || {
                let mut alive = rxs;
                while !alive.is_empty() {
                    let idx = {
                        let mut sel = Select::new();
                        for (_, rx) in &alive {
                            sel.recv(rx);
                        }
                        sel.ready()
                    };
                    match alive[idx].1.try_recv() {
                        Err(TryRecvError::Disconnected) => {
                            alive.swap_remove(idx);
                        }
                        // Readiness is a hint; re-select.
                        Err(TryRecvError::Empty) => {}
                        Ok(packet) => {
                            let dest = alive[idx].0;
                            // Chaos applies to data frames only: a lost
                            // Eos would wedge the quorum forever, and
                            // real networks lose data long before they
                            // lose an orderly shutdown.
                            if !matches!(packet, Packet::Eos) {
                                if let Some((p, rng)) = &mut chaos {
                                    if rng.random_bool(*p) {
                                        continue;
                                    }
                                }
                            }
                            let frame = encode_frame(pool.acquire(), tag::DATA, |buf| {
                                buf.put_u32_le(dest);
                                encode_packet(&packet, buf);
                            });
                            if link.send(WriteOp::Frame(frame)).is_err() {
                                return;
                            }
                        }
                    }
                }
            }));
        }
        handles
    }

    /// Drops the plane's relay senders: once local executors have also
    /// dropped theirs, egress threads drain the channels and exit.
    fn close_relays(&self) {
        self.relays.lock().clear();
    }
}

impl<T: WireCodec + Clone + Send + Sync + 'static> RemoteDataPlane<T> for NetPlane<T> {
    fn remote_sender(&self, worker: usize, dest_global: u32, capacity: usize) -> Sender<Packet<T>> {
        let mut relays = self.relays.lock();
        if let Some(tx) = relays.get(&(worker, dest_global)) {
            return tx.clone();
        }
        let (tx, rx) = bounded(capacity.max(1));
        relays.insert((worker, dest_global), tx.clone());
        self.pending_egress.lock().entry(worker).or_default().push((dest_global, rx));
        tx
    }

    fn register_ingress(&self, map: HashMap<u32, LocalIngress<T>>) {
        *self.ingress.lock() = map;
    }
}

impl<T> PlaneControl for NetPlane<T>
where
    T: Send + Sync,
{
    fn shutdown(&self) {
        self.relays.lock().clear();
        self.links.lock().clear();
        self.ingress.lock().clear();
    }
}

// ---------------------------------------------------------------------------
// Acker forwarding.
// ---------------------------------------------------------------------------

mod ack_op {
    pub const REGISTER: u8 = 0;
    pub const XOR: u8 = 1;
    pub const XOR_BATCH: u8 = 2;
    pub const SEAL: u8 = 3;
    pub const ABANDON: u8 = 4;
}

/// The worker-side [`AckSink`]: frames every operation onto the
/// coordinator link. XOR operations commute, so forwarding them through
/// a FIFO link preserves correctness (see [`crate::ack::AckSink`]).
struct AckForwarder {
    link: Sender<WriteOp>,
    pool: Arc<BufferPool>,
}

impl AckForwarder {
    fn send(&self, fill: impl FnOnce(&mut BytesMut)) {
        let frame = encode_frame(self.pool.acquire(), tag::ACK, fill);
        // A dead link drops the op; the root replays after its timeout.
        let _ = self.link.send(WriteOp::Frame(frame));
    }
}

impl AckSink for AckForwarder {
    fn register(&self, root: u64, spout: usize) {
        self.send(|buf| {
            buf.put_u8(ack_op::REGISTER);
            root.encode(buf);
            spout.encode(buf);
        });
    }
    fn xor(&self, root: u64, id: u64) {
        self.send(|buf| {
            buf.put_u8(ack_op::XOR);
            root.encode(buf);
            id.encode(buf);
        });
    }
    fn xor_batch(&self, pairs: &[(u64, u64)]) {
        if pairs.is_empty() {
            return;
        }
        self.send(|buf| {
            buf.put_u8(ack_op::XOR_BATCH);
            buf.put_u32_le(pairs.len() as u32);
            for &(root, id) in pairs {
                root.encode(buf);
                id.encode(buf);
            }
        });
    }
    fn seal(&self, root: u64) {
        self.send(|buf| {
            buf.put_u8(ack_op::SEAL);
            root.encode(buf);
        });
    }
    fn abandon(&self, root: u64) {
        self.send(|buf| {
            buf.put_u8(ack_op::ABANDON);
            root.encode(buf);
        });
    }
}

/// Coordinator side: applies one forwarded ack frame to the real acker.
fn apply_ack_frame(payload: &[u8], acker: &Acker) -> Result<(), DspsError> {
    let mut r = WireReader::new(payload);
    match r.u8()? {
        ack_op::REGISTER => acker.register(u64::decode(&mut r)?, usize::decode(&mut r)?),
        ack_op::XOR => acker.xor(u64::decode(&mut r)?, u64::decode(&mut r)?),
        ack_op::XOR_BATCH => {
            let n = r.u32_le()? as usize;
            if n > r.remaining() {
                return Err(DspsError::Frame {
                    reason: format!("ack batch claims {n} pairs with {} bytes left", r.remaining()),
                });
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((u64::decode(&mut r)?, u64::decode(&mut r)?));
            }
            acker.xor_batch(&pairs);
        }
        ack_op::SEAL => acker.seal(u64::decode(&mut r)?),
        ack_op::ABANDON => acker.abandon(u64::decode(&mut r)?),
        k => return Err(DspsError::Frame { reason: format!("invalid ack op {k}") }),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

/// A multi-process cluster: like [`LocalCluster`], but the topology's
/// executors spread over `workers` OS processes connected by TCP.
///
/// With `workers == 1` submission delegates to [`LocalCluster::submit`]
/// unchanged — no sockets, no threads, no extra syscalls on the hot
/// path — so a distributed-capable binary pays nothing until it actually
/// scales out.
pub struct DistributedCluster {
    spec: ClusterSpec,
    workers: usize,
    worker_args: Vec<String>,
    pins: HashMap<String, usize>,
}

impl DistributedCluster {
    /// A cluster of `workers` processes over `spec`'s slots.
    pub fn new(spec: ClusterSpec, workers: usize) -> Result<Self, DspsError> {
        spec.validate()?;
        if workers == 0 {
            return Err(DspsError::InvalidCluster { reason: "workers must be at least 1".into() });
        }
        if workers > spec.total_slots() {
            return Err(DspsError::InsufficientSlots {
                requested: workers,
                available: spec.total_slots(),
            });
        }
        Ok(DistributedCluster {
            spec,
            workers,
            // The default re-invokes the current (test) binary so that
            // only the `worker_entry` dispatch test runs — the rusty-fork
            // pattern. Binaries with their own `main` (e.g. the bench
            // runner) override this with `with_worker_args`.
            worker_args: vec![
                "worker_entry".into(),
                "--exact".into(),
                "--nocapture".into(),
                "--test-threads=1".into(),
            ],
            pins: HashMap::new(),
        })
    }

    /// Replaces the argv the spawned worker processes receive.
    pub fn with_worker_args(mut self, args: Vec<String>) -> Self {
        self.worker_args = args;
        self
    }

    /// Pins every executor of `component` to `worker`. Spout components
    /// are always pinned to worker 0 (the coordinator); pinning one
    /// elsewhere is refused at submit.
    pub fn pin(mut self, component: &str, worker: usize) -> Self {
        self.pins.insert(component.to_string(), worker);
        self
    }

    /// Submits the topology across the cluster's worker processes.
    ///
    /// `scenario` names the topology for the worker-side dispatch: each
    /// spawned process re-executes this binary with `TMS_DSPS_SCENARIO`
    /// set to it, and the binary's `worker_entry` hook must map it back
    /// to the same topology-building closure (validated by fingerprint).
    pub fn submit<T: WireCodec + Clone + Send + Sync + 'static>(
        &self,
        scenario: &str,
        topology: Topology<T>,
        config: RuntimeConfig,
    ) -> Result<DistributedHandle, DspsError> {
        if self.workers <= 1 {
            let handle = LocalCluster::new(self.spec)?.submit(topology, config)?;
            return Ok(DistributedHandle { inner: Some(handle), dist: None });
        }

        // -- Assignment with spouts pinned to the coordinator. ---------
        let mut pins = self.pins.clone();
        for s in &topology.spouts {
            match pins.insert(s.name.clone(), 0) {
                Some(w) if w != 0 => {
                    return Err(DspsError::InvalidCluster {
                        reason: format!(
                            "spout {} pinned to worker {w}: spouts must run on the coordinator",
                            s.name
                        ),
                    })
                }
                _ => {}
            }
        }
        let components: Vec<(&str, usize, usize)> = topology
            .spouts
            .iter()
            .map(|s| (s.name.as_str(), s.parallelism.tasks, s.parallelism.executors))
            .chain(
                topology
                    .bolts
                    .iter()
                    .map(|b| (b.name.as_str(), b.parallelism.tasks, b.parallelism.executors)),
            )
            .collect();
        let assignment = assign_pinned(&components, self.spec, self.workers, &pins)?;
        let fingerprint = topology_fingerprint(&topology);

        // -- Spawn the worker fleet and collect Hellos. ----------------
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| DspsError::Transport {
            peer: "127.0.0.1".into(),
            reason: format!("cannot bind coordinator listener: {e}"),
        })?;
        let coord_addr = listener.local_addr().map_err(|e| DspsError::Transport {
            peer: "127.0.0.1".into(),
            reason: e.to_string(),
        })?;
        let exe = std::env::current_exe().map_err(|e| DspsError::Transport {
            peer: "127.0.0.1".into(),
            reason: format!("cannot locate current executable: {e}"),
        })?;
        let mut guard = ChildGuard { children: Vec::new() };
        for w in 1..self.workers {
            let child = std::process::Command::new(&exe)
                .args(&self.worker_args)
                .env(ENV_WORKER, w.to_string())
                .env(ENV_COORD, coord_addr.to_string())
                .env(ENV_SCENARIO, scenario)
                .stdout(std::process::Stdio::null())
                .spawn()
                .map_err(|e| DspsError::Worker {
                    worker: w,
                    reason: format!("cannot spawn worker process: {e}"),
                })?;
            guard.children.push(child);
        }

        // -- Handshake: Hello in, Assignment out, Ready in. ------------
        // Accept cannot take a timeout directly; poll nonblocking.
        listener.set_nonblocking(true).map_err(|e| transport_err(&coord_addr, e))?;
        let mut conns: HashMap<usize, (TcpStream, FrameDecoder)> = HashMap::new();
        let mut data_addrs: HashMap<usize, String> = HashMap::new();
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        while conns.len() < self.workers - 1 {
            if Instant::now() >= deadline {
                return Err(DspsError::Transport {
                    peer: coord_addr.to_string(),
                    reason: format!(
                        "only {} of {} workers connected before the handshake deadline",
                        conns.len(),
                        self.workers - 1
                    ),
                });
            }
            let (mut stream, _) = match listener.accept() {
                Ok(c) => c,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(transport_err(&coord_addr, e)),
            };
            stream.set_nonblocking(false).map_err(|e| transport_err(&coord_addr, e))?;
            let _ = stream.set_nodelay(true);
            let mut decoder = FrameDecoder::new();
            let frame = read_frame_sync(&mut stream, &mut decoder, HANDSHAKE_TIMEOUT)?;
            if frame.tag != tag::HELLO {
                return Err(DspsError::Frame {
                    reason: format!("expected Hello, got tag {}", frame.tag),
                });
            }
            let hello: Hello = decode_value(&frame.payload)?;
            if hello.fingerprint != fingerprint {
                return Err(DspsError::Worker {
                    worker: hello.worker,
                    reason: format!(
                        "topology fingerprint mismatch: scenario {scenario:?} built a different graph \
                         (coordinator {fingerprint:#018x}, worker {:#018x})",
                        hello.fingerprint
                    ),
                });
            }
            if hello.worker == 0 || hello.worker >= self.workers {
                return Err(DspsError::Worker {
                    worker: hello.worker,
                    reason: "worker id out of range".into(),
                });
            }
            data_addrs.insert(hello.worker, hello.data_addr.clone());
            if conns.insert(hello.worker, (stream, decoder)).is_some() {
                return Err(DspsError::Worker {
                    worker: hello.worker,
                    reason: "duplicate worker id in handshake".into(),
                });
            }
        }
        let pool = Arc::new(BufferPool::default());
        // Entry 0 stays empty: the coordinator is reached over the
        // control link every worker already holds, never dialed.
        let peers: Vec<String> = (0..self.workers)
            .map(|w| data_addrs.get(&w).cloned().unwrap_or_default())
            .collect();

        let wire = WireAssignment {
            config: WireConfig::of(&config),
            assignment: assignment.clone(),
            peers: peers.clone(),
            fingerprint,
        };
        for (_, (stream, _)) in conns.iter_mut() {
            let frame = encode_value_frame(&pool, tag::ASSIGNMENT, &wire);
            write_frame_sync(stream, &frame)?;
        }
        for (w, (stream, decoder)) in conns.iter_mut() {
            let frame = read_frame_sync(stream, decoder, HANDSHAKE_TIMEOUT)?;
            if frame.tag != tag::READY {
                return Err(DspsError::Worker {
                    worker: *w,
                    reason: format!("expected Ready, got tag {}", frame.tag),
                });
            }
        }

        // -- Build the plane, the acker slot, and the local slice. -----
        let plane = Arc::new(NetPlane::<T>::new(pool.clone(), config.fault, 0));
        let mut writer_links = HashMap::new();
        for (&w, (stream, _)) in conns.iter() {
            let write_half = stream.try_clone().map_err(|e| transport_err(&coord_addr, e))?;
            let (tx, _h) = spawn_link_writer(write_half, pool.clone());
            plane.add_link(w, tx.clone());
            writer_links.insert(w, tx);
        }
        let acker_slot: Arc<Mutex<Option<Arc<Acker>>>> = Arc::new(Mutex::new(None));
        let make_ack: MakeAckSink = {
            let slot = acker_slot.clone();
            Box::new(move |txs| {
                let acker = Arc::new(Acker::new(txs));
                *slot.lock() = Some(acker.clone());
                acker
            })
        };
        let handle = LocalCluster::new(self.spec)?.submit_inner(
            topology,
            config,
            Some(DistCtx { worker: 0, assignment: assignment.clone(), plane: plane.clone(), make_ack }),
        )?;

        // -- Readers + egress: data can flow now. ----------------------
        let (done_tx, done_rx) = unbounded();
        for (w, (stream, decoder)) in conns.into_iter() {
            spawn_coordinator_reader(
                w,
                stream,
                decoder,
                plane.clone(),
                acker_slot.clone(),
                handle.metrics().clone(),
                handle.flight_recorder().clone(),
                handle.trace_collector().cloned(),
                done_tx.clone(),
            );
        }
        plane.start_egress();

        let controller = Arc::new(RemoteController { links: writer_links, pool });
        Ok(DistributedHandle {
            inner: Some(handle),
            dist: Some(DistState {
                children: std::mem::take(&mut guard.children),
                controller,
                done_rx,
                remote_workers: self.workers - 1,
                plane: plane as Arc<dyn PlaneControl>,
            }),
        })
    }
}

fn transport_err(addr: &std::net::SocketAddr, e: std::io::Error) -> DspsError {
    DspsError::Transport { peer: addr.to_string(), reason: e.to_string() }
}

/// Kills any still-spawned children if submit errors out mid-handshake.
struct ChildGuard {
    children: Vec<std::process::Child>,
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// One worker link's coordinator-side reader: injects data, applies
/// forwarded ack ops, ingests pushed metrics, and records the worker's
/// final report.
#[allow(clippy::too_many_arguments)]
fn spawn_coordinator_reader<T: WireCodec + Clone + Send + Sync + 'static>(
    worker: usize,
    stream: TcpStream,
    decoder: FrameDecoder,
    plane: Arc<NetPlane<T>>,
    acker: Arc<Mutex<Option<Arc<Acker>>>>,
    hub: Arc<MetricsHub>,
    flight: Arc<FlightRecorder>,
    collector: Option<Arc<TraceCollector>>,
    done_tx: Sender<(usize, Option<String>)>,
) {
    std::thread::spawn(move || {
        let mut done_seen = false;
        let result = run_link_reader(stream, decoder, |frame| {
            let outcome: Result<(), DspsError> = (|| {
                match frame.tag {
                    tag::DATA => plane.inject(&frame.payload)?,
                    tag::ACK => {
                        if let Some(acker) = acker.lock().clone() {
                            apply_ack_frame(&frame.payload, &acker)?;
                        }
                    }
                    tag::METRICS => {
                        let (w, totals): (usize, Vec<ComponentWindow>) =
                            decode_value(&frame.payload)?;
                        hub.ingest_remote_totals(w, totals);
                    }
                    tag::DONE => {
                        let report: WorkerDone = decode_value(&frame.payload)?;
                        hub.ingest_remote_totals(report.worker, report.totals);
                        for e in report.flight {
                            let kind =
                                FlightKind::from_name(&e.kind).unwrap_or(FlightKind::Custom);
                            flight.ingest(e.at_ns, kind, &e.component, e.task, e.detail);
                        }
                        if let Some(c) = &collector {
                            c.ingest_spans(&report.spans);
                        }
                        done_seen = true;
                        let _ = done_tx.send((report.worker, report.error));
                    }
                    _ => {
                        return Err(DspsError::Frame {
                            reason: format!("unexpected tag {} from worker {worker}", frame.tag),
                        })
                    }
                }
                Ok(())
            })();
            match outcome {
                Ok(()) => true,
                Err(e) => {
                    if !done_seen {
                        done_seen = true;
                        let _ = done_tx.send((worker, Some(e.to_string())));
                    }
                    false
                }
            }
        });
        if !done_seen {
            let reason = match result {
                Ok(()) => "link closed before completion".to_string(),
                Err(e) => e.to_string(),
            };
            let _ = done_tx.send((worker, Some(reason)));
        }
    });
}

/// Sends control frames to workers: the coordinator-side half of
/// [`WorkerHooks::on_control`]. Cloneable and cheap; safe to capture in
/// rebalancer hooks.
pub struct RemoteController {
    links: HashMap<usize, Sender<WriteOp>>,
    pool: Arc<BufferPool>,
}

impl RemoteController {
    /// Sends `payload` to `worker` under `subtag`; the worker's handler
    /// registered for that subtag receives the payload bytes.
    pub fn send_control(&self, worker: usize, subtag: u8, payload: &[u8]) -> Result<(), DspsError> {
        let link = self.links.get(&worker).ok_or_else(|| DspsError::Transport {
            peer: format!("worker {worker}"),
            reason: "no control link (single-process handle or unknown worker)".into(),
        })?;
        let frame = encode_frame(self.pool.acquire(), tag::CONTROL, |buf| {
            buf.put_u8(subtag);
            buf.put_slice(payload);
        });
        link.send(WriteOp::Frame(frame)).map_err(|_| DspsError::Transport {
            peer: format!("worker {worker}"),
            reason: "control link closed".into(),
        })
    }

    /// Worker ids reachable from this controller.
    pub fn workers(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.links.keys().copied().collect();
        w.sort_unstable();
        w
    }
}

struct DistState {
    children: Vec<std::process::Child>,
    controller: Arc<RemoteController>,
    done_rx: Receiver<(usize, Option<String>)>,
    remote_workers: usize,
    plane: Arc<dyn PlaneControl>,
}

impl DistState {
    fn finish(&mut self) {
        self.plane.shutdown();
        let deadline = Instant::now() + Duration::from_secs(5);
        for child in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() >= deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                    Err(_) => break,
                }
            }
        }
        self.children.clear();
    }
}

impl Drop for DistState {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// A running multi-process topology: the coordinator's
/// [`TopologyHandle`] plus the worker fleet.
pub struct DistributedHandle {
    inner: Option<TopologyHandle>,
    dist: Option<DistState>,
}

impl DistributedHandle {
    fn handle(&self) -> &TopologyHandle {
        self.inner.as_ref().expect("handle present until join")
    }

    /// The coordinator's metrics hub — the merged whole-topology view
    /// once workers push their totals.
    pub fn metrics(&self) -> &Arc<MetricsHub> {
        self.handle().metrics()
    }

    /// The merged scrape endpoint, when the monitor exposes one.
    pub fn scrape_addr(&self) -> Option<std::net::SocketAddr> {
        self.handle().scrape_addr()
    }

    /// The assignment all processes share.
    pub fn assignment(&self) -> &Assignment {
        self.handle().assignment()
    }

    /// The coordinator's flight recorder (workers' events merge in at
    /// completion).
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        self.handle().flight_recorder()
    }

    /// A handle for sending control frames to workers. `None` on a
    /// single-process (workers == 1) submission.
    pub fn controller(&self) -> Option<Arc<RemoteController>> {
        self.dist.as_ref().map(|d| d.controller.clone())
    }

    /// Waits for the whole topology to drain: the coordinator's own
    /// executors, then every worker's `WorkerDone`. Returns the merged
    /// metrics hub, or the first failure (coordinator first, then
    /// workers in completion order).
    pub fn join(mut self) -> Result<Arc<MetricsHub>, DspsError> {
        let inner = self.inner.take().expect("join consumes the handle once");
        let local = inner.join();
        let Some(mut dist) = self.dist.take() else { return local };
        let mut worker_err: Option<DspsError> = None;
        if local.is_ok() {
            for _ in 0..dist.remote_workers {
                match dist.done_rx.recv_timeout(DONE_TIMEOUT) {
                    Ok((_, None)) => {}
                    Ok((w, Some(reason))) => {
                        worker_err =
                            worker_err.or(Some(DspsError::Worker { worker: w, reason }));
                    }
                    Err(_) => {
                        worker_err = worker_err.or(Some(DspsError::Worker {
                            worker: usize::MAX,
                            reason: format!(
                                "timed out after {DONE_TIMEOUT:?} waiting for worker completion"
                            ),
                        }));
                        break;
                    }
                }
            }
        }
        dist.finish();
        match (local, worker_err) {
            (Err(e), _) => Err(e),
            (Ok(_), Some(e)) => Err(e),
            (Ok(hub), None) => Ok(hub),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker.
// ---------------------------------------------------------------------------

/// The scenario name when this process was spawned as a worker, `None`
/// otherwise. A binary that can host workers checks this early (the
/// test-suite convention is a `worker_entry` test that returns
/// immediately when it is `None`).
pub fn worker_scenario() -> Option<String> {
    std::env::var(ENV_WORKER).ok()?;
    std::env::var(ENV_SCENARIO).ok()
}

/// Worker-side registration surface handed to the topology builder:
/// lets a scenario install handlers for coordinator control frames
/// (e.g. cross-process migration installs) before executors start.
#[derive(Default)]
pub struct WorkerHooks {
    #[allow(clippy::type_complexity)]
    control: HashMap<u8, Box<dyn Fn(&[u8]) + Send + Sync>>,
}

impl WorkerHooks {
    /// Registers a handler for control frames with `subtag`. The handler
    /// runs on the link reader thread; keep it short (deposit into a
    /// channel or mailbox, don't process inline).
    pub fn on_control(&mut self, subtag: u8, handler: impl Fn(&[u8]) + Send + Sync + 'static) {
        self.control.insert(subtag, Box::new(handler));
    }
}

/// Runs this process as worker `TMS_DSPS_WORKER` of the topology `build`
/// constructs: connects to the coordinator, receives its executor slice,
/// runs it to completion, and reports totals/flight/spans back. Returns
/// when the local slice has fully drained.
pub fn run_worker<T, F>(build: F) -> Result<(), DspsError>
where
    T: WireCodec + Clone + Send + Sync + 'static,
    F: FnOnce(&mut WorkerHooks) -> Topology<T>,
{
    let my: usize = std::env::var(ENV_WORKER)
        .ok()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| DspsError::Worker {
            worker: usize::MAX,
            reason: format!("{ENV_WORKER} is not set or not a number"),
        })?;
    let coord = std::env::var(ENV_COORD).map_err(|_| DspsError::Worker {
        worker: my,
        reason: format!("{ENV_COORD} is not set"),
    })?;
    let mut hooks = WorkerHooks::default();
    let topology = build(&mut hooks);
    let fingerprint = topology_fingerprint(&topology);

    // -- Handshake. ----------------------------------------------------
    let data_listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| DspsError::Worker { worker: my, reason: format!("cannot bind: {e}") })?;
    let data_addr = data_listener
        .local_addr()
        .map_err(|e| DspsError::Worker { worker: my, reason: e.to_string() })?
        .to_string();
    let mut coord_stream = TcpStream::connect(&coord).map_err(|e| DspsError::Transport {
        peer: coord.clone(),
        reason: format!("cannot reach coordinator: {e}"),
    })?;
    let _ = coord_stream.set_nodelay(true);
    let pool = Arc::new(BufferPool::default());
    let hello = Hello { worker: my, data_addr, fingerprint };
    write_frame_sync(&mut coord_stream, &encode_value_frame(&pool, tag::HELLO, &hello))?;
    let mut coord_decoder = FrameDecoder::new();
    let frame = read_frame_sync(&mut coord_stream, &mut coord_decoder, HANDSHAKE_TIMEOUT)?;
    if frame.tag != tag::ASSIGNMENT {
        return Err(DspsError::Frame {
            reason: format!("expected Assignment, got tag {}", frame.tag),
        });
    }
    let wire: WireAssignment = decode_value(&frame.payload)?;
    if wire.fingerprint != fingerprint {
        return Err(DspsError::Worker {
            worker: my,
            reason: "topology fingerprint mismatch against coordinator".into(),
        });
    }
    let assignment = wire.assignment;
    let workers = assignment.workers;

    // -- Mesh: dial lower-numbered peers, accept higher-numbered. ------
    let mut streams: HashMap<usize, (TcpStream, FrameDecoder)> = HashMap::new();
    streams.insert(0, (coord_stream, coord_decoder));
    for j in 1..my {
        let mut s = TcpStream::connect(&wire.peers[j]).map_err(|e| DspsError::Transport {
            peer: wire.peers[j].clone(),
            reason: format!("cannot reach peer worker {j}: {e}"),
        })?;
        let _ = s.set_nodelay(true);
        let id = Hello { worker: my, data_addr: String::new(), fingerprint };
        write_frame_sync(&mut s, &encode_value_frame(&pool, tag::HELLO, &id))?;
        streams.insert(j, (s, FrameDecoder::new()));
    }
    for _ in my + 1..workers {
        let (mut s, _) = data_listener.accept().map_err(|e| DspsError::Worker {
            worker: my,
            reason: format!("mesh accept failed: {e}"),
        })?;
        let _ = s.set_nodelay(true);
        let mut decoder = FrameDecoder::new();
        let frame = read_frame_sync(&mut s, &mut decoder, HANDSHAKE_TIMEOUT)?;
        if frame.tag != tag::HELLO {
            return Err(DspsError::Frame {
                reason: format!("expected mesh Hello, got tag {}", frame.tag),
            });
        }
        let peer: Hello = decode_value(&frame.payload)?;
        streams.insert(peer.worker, (s, decoder));
    }

    // -- Plane, writers, local slice. ----------------------------------
    let config = wire.config.into_runtime();
    let plane = Arc::new(NetPlane::<T>::new(pool.clone(), config.fault, my));
    let mut writer_handles = Vec::new();
    for (&w, (stream, _)) in streams.iter() {
        let write_half = stream.try_clone().map_err(|e| DspsError::Worker {
            worker: my,
            reason: format!("cannot clone link stream: {e}"),
        })?;
        let (tx, h) = spawn_link_writer(write_half, pool.clone());
        plane.add_link(w, tx);
        writer_handles.push(h);
    }
    let coord_link = plane.link_to(0).expect("coordinator link just added");
    let make_ack: MakeAckSink = {
        let link = coord_link.clone();
        let pool = pool.clone();
        // Spouts are pinned to the coordinator, so the completion
        // senders are unused here — the forwarder only emits ops.
        Box::new(move |_txs| Arc::new(AckForwarder { link, pool }))
    };
    // The spec shipped implicitly via the assignment: rebuild one that
    // validates and carries the same node count (submit_inner only uses
    // it for the non-distributed path).
    let spec = ClusterSpec {
        nodes: assignment.nodes.max(1),
        slots_per_node: workers.div_ceil(assignment.nodes.max(1)).max(1),
        cores_per_node: 1,
    };
    let handle = LocalCluster::new(spec)?.submit_inner(
        topology,
        config,
        Some(DistCtx { worker: my, assignment: assignment.clone(), plane: plane.clone(), make_ack }),
    )?;
    let hub = handle.metrics().clone();
    let flight = handle.flight_recorder().clone();
    let collector = handle.trace_collector().cloned();

    // -- Readers, egress, Ready, metrics push. -------------------------
    let finished = Arc::new(AtomicBool::new(false));
    let hooks = Arc::new(hooks.control);
    for (w, (stream, decoder)) in streams.into_iter() {
        let plane = plane.clone();
        let hooks = hooks.clone();
        let finished = finished.clone();
        std::thread::spawn(move || {
            let _ = run_link_reader(stream, decoder, |frame| match frame.tag {
                tag::DATA => plane.inject(&frame.payload).is_ok(),
                tag::CONTROL => {
                    if let Some((&subtag, rest)) = frame.payload.split_first() {
                        if let Some(handler) = hooks.get(&subtag) {
                            handler(rest);
                        }
                    }
                    true
                }
                _ => true,
            });
            // The coordinator tears links down only after WorkerDone; an
            // earlier EOF means it died and this slice can never drain.
            if w == 0 && !finished.load(Ordering::Relaxed) {
                eprintln!("worker {my}: coordinator link lost; aborting");
                std::process::exit(110);
            }
        });
    }
    let egress = plane.start_egress();
    let _ = coord_link.send(WriteOp::Frame(encode_frame(pool.acquire(), tag::READY, |_| {})));
    let stop_push = Arc::new(AtomicBool::new(false));
    let push_thread = {
        let hub = hub.clone();
        let link = coord_link.clone();
        let pool = pool.clone();
        let stop = stop_push.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let frame = encode_value_frame(&pool, tag::METRICS, &(my, hub.totals()));
                if link.send(WriteOp::Frame(frame)).is_err() {
                    return;
                }
                std::thread::sleep(METRICS_PUSH_EVERY);
            }
        })
    };

    // -- Run to completion, then report. -------------------------------
    let result = handle.join();
    stop_push.store(true, Ordering::Relaxed);
    let _ = push_thread.join();
    // All local executors have deposited their last packets into the
    // relays; dropping the plane's senders lets egress drain and exit,
    // guaranteeing every data frame is queued on its link before Done.
    plane.close_relays();
    for h in egress {
        let _ = h.join();
    }
    finished.store(true, Ordering::Relaxed);
    let report = WorkerDone {
        worker: my,
        error: result.as_ref().err().map(|e| e.to_string()),
        totals: hub.totals(),
        flight: flight
            .events()
            .into_iter()
            .map(|e| WireFlightEvent {
                at_ns: e.at_ns,
                kind: e.kind.name().to_string(),
                component: e.component,
                task: e.task,
                detail: e.detail,
            })
            .collect(),
        spans: collector.map(|c| c.take_spans()).unwrap_or_default(),
    };
    let _ = coord_link.send(WriteOp::Frame(encode_value_frame(&pool, tag::DONE, &report)));
    // Flush every link before exiting so queued frames (mesh Eos, the
    // report itself) reach their sockets.
    for w in 0..workers {
        if let Some(link) = plane.link_to(w) {
            let (ack_tx, ack_rx) = bounded(1);
            if link.send(WriteOp::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv_timeout(Duration::from_secs(10));
            }
        }
    }
    plane.shutdown();
    result.map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::Grouping;
    use crate::topology::{Parallelism, Spout, TopologyBuilder};

    struct EmptySpout;
    impl Spout<u64> for EmptySpout {
        fn next(&mut self) -> Option<u64> {
            None
        }
    }

    fn sample_topology(shuffle: bool) -> Topology<u64> {
        let grouping = if shuffle { Grouping::Shuffle } else { Grouping::All };
        TopologyBuilder::new("fp")
            .add_spout("src", Parallelism::of(2), |_| Box::new(EmptySpout))
            .add_map_bolt("sink", Parallelism::of(2), vec![("src", grouping)], Some)
            .build()
            .expect("valid topology")
    }

    #[test]
    fn fingerprint_tracks_structure() {
        let a = topology_fingerprint(&sample_topology(true));
        let b = topology_fingerprint(&sample_topology(true));
        let c = topology_fingerprint(&sample_topology(false));
        assert_eq!(a, b, "same structure, same fingerprint");
        assert_ne!(a, c, "a different grouping changes the fingerprint");
    }

    #[test]
    fn packet_roundtrip_preserves_envelopes() {
        let envs = vec![
            Envelope::from_wire(7u64, 42, vec![1, 2]),
            Envelope::from_wire(9u64, 43, vec![]),
        ];
        let mut buf = BytesMut::new();
        encode_packet(&Packet::Batch(envs), &mut buf);
        encode_packet::<u64>(&Packet::Eos, &mut buf);
        let frozen = buf.freeze();
        let mut r = WireReader::new(&frozen);
        match decode_packet::<u64>(&mut r).unwrap() {
            Packet::Batch(back) => {
                assert_eq!(back.len(), 2);
                assert_eq!(*back[0].msg.as_inner(), 7);
                assert_eq!(back[0].tid, 42);
                assert_eq!(back[0].roots, vec![1, 2]);
                assert_eq!(*back[1].msg.as_inner(), 9);
            }
            _ => panic!("expected batch"),
        }
        assert!(matches!(decode_packet::<u64>(&mut r).unwrap(), Packet::Eos));
        assert!(r.is_empty());
    }

    #[test]
    fn ack_ops_forward_and_apply() {
        let (link, rx) = bounded(16);
        let pool = Arc::new(BufferPool::default());
        let fwd = AckForwarder { link, pool };
        let (done_tx, done_rx) = crossbeam::channel::unbounded();
        let acker = Acker::new(vec![done_tx]);
        fwd.register(100, 0);
        fwd.xor(100, 5);
        fwd.seal(100);
        fwd.xor_batch(&[(100, 5)]);
        drop(fwd);
        while let Ok(WriteOp::Frame(frame)) = rx.try_recv() {
            let mut dec = FrameDecoder::new();
            dec.push(&frame);
            let f = dec.next().unwrap().expect("one frame per op");
            assert_eq!(f.tag, tag::ACK);
            apply_ack_frame(&f.payload, &acker).unwrap();
        }
        let (root, _) = done_rx.try_recv().expect("tree completed through the forwarder");
        assert_eq!(root, 100);
    }

    #[test]
    fn wire_config_roundtrip() {
        let cfg = RuntimeConfig {
            channel_capacity: 77,
            workers: Some(3),
            monitor: Some(MonitorConfig {
                window: Duration::from_millis(50),
                tracing: true,
                retention: 128,
                profiling: false,
                expose: Some(0),
                lineage: Some(LineageConfig::default()),
            }),
            reliability: Some(ReliabilityConfig::default()),
            fault: Some(FaultConfig { drop_p: 0.25, ..Default::default() }),
            batch: Some(BatchConfig::default()),
            durability: None,
            flight: None,
        };
        let pool = BufferPool::default();
        let frame = encode_value_frame(&pool, 9, &WireConfig::of(&cfg));
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        let f = dec.next().unwrap().unwrap();
        let back = WireConfig::decode(&mut WireReader::new(&f.payload)).unwrap();
        let rebuilt = back.into_runtime();
        assert_eq!(rebuilt.channel_capacity, 77);
        assert_eq!(rebuilt.workers, None, "worker count is process-local");
        let mc = rebuilt.monitor.unwrap();
        assert!(mc.tracing);
        assert_eq!(mc.expose, None, "workers never expose their own scrape port");
        assert_eq!(rebuilt.fault.unwrap().drop_p, 0.25);
        assert_eq!(rebuilt.reliability.unwrap().max_retries, 5);
    }
}
