//! The local execution runtime: executor threads, channels, routing,
//! end-of-stream termination and panic containment.
//!
//! Every task owns a bounded input channel; emitting to a full channel
//! blocks, which gives the same backpressure a saturated Storm deployment
//! exhibits. When all spout tasks are exhausted, end-of-stream markers
//! propagate edge-by-edge: a bolt task finishes once it has received one
//! marker from every upstream task on every incoming edge, flushes via
//! [`Bolt::finish`], forwards its own markers, and exits.

use crate::error::DspsError;
use crate::grouping::Grouping;
use crate::metrics::{MetricsHub, MonitorConfig, TaskCounters};
use crate::scheduler::{assign, Assignment, ClusterSpec};
use crate::topology::{Bolt, BoltContext, Spout, Topology};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message or an end-of-stream marker.
enum Packet<T> {
    Data(T),
    Eos,
}

/// The interface bolts and spout drivers use to send messages downstream.
pub trait Emitter<T> {
    /// Emits under each outgoing edge's grouping.
    fn emit(&mut self, msg: T);

    /// Emits on *direct*-grouped edges only, to the task with the given
    /// index (modulo the downstream task count). Non-direct edges ignore
    /// direct emissions — mixing disciplines on one component is an
    /// authoring error the validator cannot see, so we keep the semantics
    /// strict and simple.
    fn emit_direct(&mut self, task: usize, msg: T);
}

/// One outgoing edge of a component.
struct Route<T> {
    grouping: Grouping<T>,
    /// Input channels of every downstream task.
    senders: Vec<Sender<Packet<T>>>,
    /// Round-robin cursor for shuffle grouping.
    rr: usize,
}

/// The per-task emitter: owns this task's copy of each outgoing edge.
struct TaskEmitter<T> {
    routes: Vec<Route<T>>,
    counters: Arc<TaskCounters>,
}

impl<T: Clone> Emitter<T> for TaskEmitter<T> {
    fn emit(&mut self, msg: T) {
        self.counters.record_emit();
        // The message moves into the final send; only earlier fan-out sends
        // clone. A single-subscriber edge — the common topology — therefore
        // never clones at all.
        let Some(last) =
            self.routes.iter().rposition(|r| {
                !matches!(r.grouping, Grouping::Direct) && !r.senders.is_empty()
            })
        else {
            return;
        };
        let mut msg = Some(msg);
        for ri in 0..=last {
            let final_route = ri == last;
            let route = &mut self.routes[ri];
            match &route.grouping {
                Grouping::Shuffle => {
                    let n = route.senders.len();
                    let target = route.rr % n;
                    route.rr = route.rr.wrapping_add(1);
                    let payload = if final_route {
                        msg.take().expect("message moved before final send")
                    } else {
                        msg.as_ref().expect("message moved before final send").clone()
                    };
                    // A closed channel means the receiver died (panic);
                    // drop the message, the topology is failing anyway.
                    let _ = route.senders[target].send(Packet::Data(payload));
                }
                Grouping::Fields(key) => {
                    let n = route.senders.len() as u64;
                    let target =
                        (key(msg.as_ref().expect("message moved before final send")) % n) as usize;
                    let payload = if final_route {
                        msg.take().expect("message moved before final send")
                    } else {
                        msg.as_ref().expect("message moved before final send").clone()
                    };
                    let _ = route.senders[target].send(Packet::Data(payload));
                }
                Grouping::All => {
                    let n = route.senders.len();
                    for (si, s) in route.senders.iter().enumerate() {
                        let payload = if final_route && si + 1 == n {
                            msg.take().expect("message moved before final send")
                        } else {
                            msg.as_ref().expect("message moved before final send").clone()
                        };
                        let _ = s.send(Packet::Data(payload));
                    }
                }
                Grouping::Direct => {
                    // Ignored: direct edges deliver via emit_direct only.
                }
            }
        }
    }

    fn emit_direct(&mut self, task: usize, msg: T) {
        self.counters.record_emit();
        let Some(last) =
            self.routes.iter().rposition(|r| {
                matches!(r.grouping, Grouping::Direct) && !r.senders.is_empty()
            })
        else {
            return;
        };
        let mut msg = Some(msg);
        for ri in 0..=last {
            let route = &self.routes[ri];
            if !matches!(route.grouping, Grouping::Direct) || route.senders.is_empty() {
                continue;
            }
            let target = task % route.senders.len();
            let payload = if ri == last {
                msg.take().expect("message moved before final send")
            } else {
                msg.as_ref().expect("message moved before final send").clone()
            };
            let _ = route.senders[target].send(Packet::Data(payload));
        }
    }
}

impl<T> TaskEmitter<T> {
    fn send_eos(&mut self) {
        for route in &mut self.routes {
            for s in &route.senders {
                let _ = s.send(Packet::Eos);
            }
        }
    }
}

/// Runtime configuration for [`LocalCluster::submit`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Capacity of each task's input channel.
    pub channel_capacity: usize,
    /// Number of worker processes to model; defaults to one per node.
    pub workers: Option<usize>,
    /// Metrics monitor window; `None` disables the monitor thread (metrics
    /// can still be sampled manually through the handle).
    pub monitor: Option<MonitorConfig>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { channel_capacity: 1024, workers: None, monitor: None }
    }
}

/// A local, threaded stand-in for a Storm cluster.
pub struct LocalCluster {
    spec: ClusterSpec,
}

impl LocalCluster {
    /// Creates a cluster model.
    pub fn new(spec: ClusterSpec) -> Result<Self, DspsError> {
        spec.validate()?;
        Ok(LocalCluster { spec })
    }

    /// The cluster spec.
    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    /// Submits a topology and starts executing it on real threads.
    pub fn submit<T: Clone + Send + 'static>(
        &self,
        topology: Topology<T>,
        config: RuntimeConfig,
    ) -> Result<TopologyHandle, DspsError> {
        let workers = config.workers.unwrap_or_else(|| self.spec.default_workers());
        let components: Vec<(&str, usize, usize)> = topology
            .spouts
            .iter()
            .map(|s| (s.name.as_str(), s.parallelism.tasks, s.parallelism.executors))
            .chain(
                topology
                    .bolts
                    .iter()
                    .map(|b| (b.name.as_str(), b.parallelism.tasks, b.parallelism.executors)),
            )
            .collect();
        let assignment = assign(&components, self.spec, workers)?;

        let metrics = Arc::new(MetricsHub::new());
        let done = Arc::new(AtomicBool::new(false));

        // ---- Channels: one bounded channel per bolt task ------------------
        let mut senders_by_bolt: Vec<Vec<Sender<Packet<T>>>> =
            Vec::with_capacity(topology.bolts.len());
        let mut receivers_by_bolt: Vec<Vec<Option<Receiver<Packet<T>>>>> =
            Vec::with_capacity(topology.bolts.len());
        for b in &topology.bolts {
            let mut senders = Vec::with_capacity(b.parallelism.tasks);
            let mut receivers = Vec::with_capacity(b.parallelism.tasks);
            for _ in 0..b.parallelism.tasks {
                let (tx, rx) = bounded(config.channel_capacity.max(1));
                senders.push(tx);
                receivers.push(Some(rx));
            }
            senders_by_bolt.push(senders);
            receivers_by_bolt.push(receivers);
        }

        // ---- Outgoing edges per source component --------------------------
        // source name → [(grouping, downstream senders)]
        let make_routes = |source: &str| -> Vec<Route<T>> {
            let mut routes = Vec::new();
            for (bi, b) in topology.bolts.iter().enumerate() {
                for sub in &b.subscriptions {
                    if sub.source == source {
                        routes.push(Route {
                            grouping: sub.grouping.clone(),
                            senders: senders_by_bolt[bi].clone(),
                            rr: 0,
                        });
                    }
                }
            }
            routes
        };

        // Upstream task count per bolt: one EOS arrives per upstream task
        // per incoming edge.
        let task_count_of = |name: &str| -> usize {
            components
                .iter()
                .find(|(n, _, _)| *n == name)
                .map(|&(_, tasks, _)| tasks)
                .unwrap_or(0)
        };
        let expected_eos: Vec<usize> = topology
            .bolts
            .iter()
            .map(|b| b.subscriptions.iter().map(|s| task_count_of(&s.source)).sum())
            .collect();

        let mut threads: Vec<std::thread::JoinHandle<Result<(), DspsError>>> = Vec::new();

        // ---- Spout executors ----------------------------------------------
        for s in &topology.spouts {
            let packing = crate::scheduler::pack_tasks(s.parallelism.tasks, s.parallelism.executors);
            for task_ids in packing {
                // Instantiate this executor's spout tasks and emitters.
                let mut tasks: Vec<(Box<dyn Spout<T>>, TaskEmitter<T>)> = Vec::new();
                for &ti in &task_ids {
                    let counters = metrics.register_task(&s.name);
                    tasks.push((
                        (s.factory)(ti),
                        TaskEmitter { routes: make_routes(&s.name), counters },
                    ));
                }
                let component = s.name.clone();
                threads.push(std::thread::spawn(move || -> Result<(), DspsError> {
                    let mut live: Vec<bool> = vec![true; tasks.len()];
                    let mut remaining = tasks.len();
                    let mut failure: Option<DspsError> = None;
                    'outer: while remaining > 0 {
                        for (i, (spout, emitter)) in tasks.iter_mut().enumerate() {
                            if !live[i] {
                                continue;
                            }
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    spout.next()
                                }));
                            match result {
                                Ok(Some(msg)) => {
                                    emitter.counters.record(Duration::ZERO);
                                    emitter.emit(msg);
                                }
                                Ok(None) => {
                                    emitter.send_eos();
                                    live[i] = false;
                                    remaining -= 1;
                                }
                                Err(e) => {
                                    failure = Some(DspsError::TaskPanicked {
                                        component: component.clone(),
                                        task: i,
                                        reason: panic_text(e.as_ref()),
                                    });
                                    break 'outer;
                                }
                            }
                        }
                    }
                    // EOS every task this executor still owes, so downstream
                    // terminates even when this executor failed.
                    for (i, (_, emitter)) in tasks.iter_mut().enumerate() {
                        if live[i] && failure.is_some() {
                            emitter.send_eos();
                        }
                    }
                    match failure {
                        Some(e) => Err(e),
                        None => Ok(()),
                    }
                }));
            }
        }

        // ---- Bolt executors -----------------------------------------------
        for (bi, b) in topology.bolts.iter().enumerate() {
            let packing = crate::scheduler::pack_tasks(b.parallelism.tasks, b.parallelism.executors);
            for task_ids in packing {
                struct BoltTask<T> {
                    bolt: Box<dyn Bolt<T>>,
                    emitter: TaskEmitter<T>,
                    rx: Receiver<Packet<T>>,
                    eos_seen: usize,
                    done: bool,
                }
                let mut tasks: Vec<BoltTask<T>> = Vec::new();
                for &ti in &task_ids {
                    let counters = metrics.register_task(&b.name);
                    let rx = receivers_by_bolt[bi][ti]
                        .take()
                        .expect("each task receiver is claimed exactly once");
                    let bolt = (b.factory)(ti);
                    tasks.push(BoltTask {
                        bolt,
                        emitter: TaskEmitter { routes: make_routes(&b.name), counters },
                        rx,
                        eos_seen: 0,
                        done: false,
                    });
                }
                let component = b.name.clone();
                let expected = expected_eos[bi];
                let task_count = b.parallelism.tasks;
                threads.push(std::thread::spawn(move || -> Result<(), DspsError> {
                    // Storm calls prepare() on the worker, not the
                    // submitting client; per-task state must live on the
                    // executor thread.
                    for (ti, t) in task_ids.iter().zip(tasks.iter_mut()) {
                        t.bolt.prepare(BoltContext { task_index: *ti, task_count });
                    }
                    let single = tasks.len() == 1;
                    let mut remaining = tasks.len();
                    let mut failure: Option<DspsError> = None;
                    'outer: while remaining > 0 {
                        let mut progressed = false;
                        for (i, t) in tasks.iter_mut().enumerate() {
                            if t.done {
                                continue;
                            }
                            // Single-task executors block on their channel
                            // (the common 1:1 configuration); shared
                            // executors poll their tasks pseudo-parallelly.
                            let budget = 64;
                            for step in 0..budget {
                                let packet = if single && step == 0 {
                                    match t.rx.recv_timeout(Duration::from_millis(50)) {
                                        Ok(p) => Some(p),
                                        Err(RecvTimeoutError::Timeout) => None,
                                        Err(RecvTimeoutError::Disconnected) => {
                                            // Upstream died without EOS
                                            // (panic); terminate the task.
                                            t.eos_seen = expected;
                                            Some(Packet::Eos)
                                        }
                                    }
                                } else {
                                    match t.rx.try_recv() {
                                        Ok(p) => Some(p),
                                        Err(crossbeam::channel::TryRecvError::Empty) => None,
                                        Err(crossbeam::channel::TryRecvError::Disconnected) => {
                                            t.eos_seen = expected;
                                            Some(Packet::Eos)
                                        }
                                    }
                                };
                                let Some(packet) = packet else { break };
                                progressed = true;
                                match packet {
                                    Packet::Data(msg) => {
                                        let start = Instant::now();
                                        let r = std::panic::catch_unwind(
                                            std::panic::AssertUnwindSafe(|| {
                                                t.bolt.process(msg, &mut t.emitter)
                                            }),
                                        );
                                        t.emitter.counters.record(start.elapsed());
                                        if let Err(e) = r {
                                            failure = Some(DspsError::TaskPanicked {
                                                component: component.clone(),
                                                task: i,
                                                reason: panic_text(e.as_ref()),
                                            });
                                            break 'outer;
                                        }
                                    }
                                    Packet::Eos => {
                                        t.eos_seen += 1;
                                        if t.eos_seen >= expected {
                                            let r = std::panic::catch_unwind(
                                                std::panic::AssertUnwindSafe(|| {
                                                    t.bolt.finish(&mut t.emitter)
                                                }),
                                            );
                                            t.emitter.send_eos();
                                            t.done = true;
                                            remaining -= 1;
                                            if let Err(e) = r {
                                                failure = Some(DspsError::TaskPanicked {
                                                    component: component.clone(),
                                                    task: i,
                                                    reason: panic_text(e.as_ref()),
                                                });
                                                break 'outer;
                                            }
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                        if !progressed && !single {
                            // All channels empty: yield briefly.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                    // On failure, EOS every unfinished task so downstream
                    // components terminate instead of waiting forever.
                    if failure.is_some() {
                        for t in tasks.iter_mut() {
                            if !t.done {
                                t.emitter.send_eos();
                            }
                        }
                    }
                    match failure {
                        Some(e) => Err(e),
                        None => Ok(()),
                    }
                }));
            }
        }

        // ---- Monitor thread -----------------------------------------------
        let monitor_thread = config.monitor.map(|mc| {
            let metrics = metrics.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    // Sleep in small steps so shutdown is prompt.
                    let mut slept = Duration::ZERO;
                    while slept < mc.window && !done.load(Ordering::Relaxed) {
                        let step = Duration::from_millis(20).min(mc.window - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    metrics.sample();
                }
            })
        });

        Ok(TopologyHandle { threads, monitor_thread, metrics, assignment, done })
    }
}

fn panic_text(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Handle to a running topology.
pub struct TopologyHandle {
    threads: Vec<std::thread::JoinHandle<Result<(), DspsError>>>,
    monitor_thread: Option<std::thread::JoinHandle<()>>,
    metrics: Arc<MetricsHub>,
    assignment: Assignment,
    done: Arc<AtomicBool>,
}

impl TopologyHandle {
    /// The Nimbus-side metrics hub.
    pub fn metrics(&self) -> &Arc<MetricsHub> {
        &self.metrics
    }

    /// The executor placement the scheduler computed.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Waits for the topology to drain (all spouts exhausted, all tuples
    /// processed). Returns the first task failure, if any.
    pub fn join(mut self) -> Result<Arc<MetricsHub>, DspsError> {
        let mut first_err = None;
        for t in self.threads.drain(..) {
            match t.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(e) => {
                    first_err = first_err.or(Some(DspsError::TaskPanicked {
                        component: "<executor>".into(),
                        task: 0,
                        reason: panic_text(e.as_ref()),
                    }))
                }
            }
        }
        self.done.store(true, Ordering::Relaxed);
        if let Some(m) = self.monitor_thread.take() {
            let _ = m.join();
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(self.metrics),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::hash_key;
    use crate::topology::{Parallelism, TopologyBuilder};
    use parking_lot::Mutex;

    #[derive(Clone)]
    struct Msg {
        key: u64,
        value: u64,
    }

    struct RangeSpout {
        next: u64,
        end: u64,
    }
    impl Spout<Msg> for RangeSpout {
        fn next(&mut self) -> Option<Msg> {
            if self.next >= self.end {
                return None;
            }
            let v = self.next;
            self.next += 1;
            Some(Msg { key: v % 7, value: v })
        }
    }

    fn sink_bolt(
        collected: Arc<Mutex<Vec<(usize, u64)>>>,
    ) -> impl Fn(usize) -> Box<dyn Bolt<Msg>> + Send + 'static {
        move |_| {
            struct Sink {
                task: usize,
                collected: Arc<Mutex<Vec<(usize, u64)>>>,
            }
            impl Bolt<Msg> for Sink {
                fn prepare(&mut self, ctx: BoltContext) {
                    self.task = ctx.task_index;
                }
                fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
                    self.collected.lock().push((self.task, msg.value));
                }
            }
            Box::new(Sink { task: 0, collected: collected.clone() })
        }
    }

    fn small_cluster() -> LocalCluster {
        LocalCluster::new(ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 2 }).unwrap()
    }

    #[test]
    fn linear_pipeline_delivers_everything() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(2), |ti| {
                Box::new(RangeSpout { next: ti as u64 * 100, end: ti as u64 * 100 + 50 })
            })
            .add_map_bolt(
                "double",
                Parallelism::of(2),
                vec![("src", Grouping::Shuffle)],
                |m: Msg| Some(Msg { key: m.key, value: m.value * 2 }),
            )
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("double", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let mut values: Vec<u64> = collected.lock().iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        let expected: Vec<u64> =
            (0..50).chain(100..150).map(|v| v * 2).collect();
        assert_eq!(values, expected);
    }

    #[test]
    fn fields_grouping_keeps_keys_on_one_task() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 200 }))
            .add_bolt(
                "sink",
                Parallelism::of(4),
                vec![("src", Grouping::fields(|m: &Msg| hash_key(&m.key)))],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        // Every key must have landed on exactly one task.
        let got = collected.lock();
        let mut key_task: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for &(task, value) in got.iter() {
            let key = value % 7;
            let prev = key_task.insert(key, task);
            if let Some(p) = prev {
                assert_eq!(p, task, "key {key} visited two tasks");
            }
        }
        assert_eq!(got.len(), 200);
    }

    #[test]
    fn all_grouping_replicates() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 10 }))
            .add_bolt(
                "sink",
                Parallelism::of(3),
                vec![("src", Grouping::All)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        assert_eq!(collected.lock().len(), 30, "each of 3 tasks sees all 10");
    }

    #[test]
    fn direct_grouping_routes_by_task_index() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        struct Router;
        impl Bolt<Msg> for Router {
            fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
                // Route by key directly: key k → task k % count (emitter
                // wraps for us).
                e.emit_direct(msg.key as usize, msg);
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 70 }))
            .add_bolt("router", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
                Box::new(Router)
            })
            .add_bolt(
                "sink",
                Parallelism::of(7),
                vec![("router", Grouping::Direct)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let got = collected.lock();
        assert_eq!(got.len(), 70);
        for &(task, value) in got.iter() {
            assert_eq!(task, (value % 7) as usize, "value {value} misrouted");
        }
    }

    #[test]
    fn tasks_sharing_an_executor_all_run() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 100 }))
            .add_bolt(
                "sink",
                // 4 tasks on 2 executors — Figure 1's SpeedCalculator case.
                Parallelism { tasks: 4, executors: 2 },
                vec![("src", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let got = collected.lock();
        assert_eq!(got.len(), 100);
        let tasks: std::collections::HashSet<usize> = got.iter().map(|&(t, _)| t).collect();
        assert_eq!(tasks.len(), 4, "all four tasks processed something");
    }

    #[test]
    fn finish_hook_flushes_buffered_state() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        struct Batcher {
            buf: Vec<Msg>,
        }
        impl Bolt<Msg> for Batcher {
            fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
                self.buf.push(msg);
            }
            fn finish(&mut self, e: &mut dyn Emitter<Msg>) {
                let total: u64 = self.buf.iter().map(|m| m.value).sum();
                e.emit(Msg { key: 0, value: total });
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 1, end: 11 }))
            .add_bolt("batch", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
                Box::new(Batcher { buf: Vec::new() })
            })
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("batch", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        assert_eq!(collected.lock().as_slice(), &[(0usize, 55u64)]);
    }

    #[test]
    fn bolt_panic_surfaces_as_error() {
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 10 }))
            .add_map_bolt(
                "explode",
                Parallelism::of(1),
                vec![("src", Grouping::Shuffle)],
                |m: Msg| {
                    if m.value == 5 {
                        panic!("boom on 5");
                    }
                    Some(m)
                },
            )
            .build()
            .unwrap();
        let err = small_cluster().submit(t, RuntimeConfig::default()).unwrap().join();
        match err {
            Err(DspsError::TaskPanicked { component, reason, .. }) => {
                assert_eq!(component, "explode");
                assert!(reason.contains("boom"));
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    fn metrics_capture_throughput() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 500 }))
            .add_bolt(
                "sink",
                Parallelism::of(2),
                vec![("src", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let metrics =
            small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let totals = metrics.totals();
        let sink = totals.iter().find(|c| c.component == "sink").unwrap();
        assert_eq!(sink.throughput, 500);
        let src = totals.iter().find(|c| c.component == "src").unwrap();
        assert_eq!(src.emitted, 500);
    }

    #[test]
    fn monitor_thread_samples_windows() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        struct SlowSpout {
            n: u64,
        }
        impl Spout<Msg> for SlowSpout {
            fn next(&mut self) -> Option<Msg> {
                if self.n == 0 {
                    return None;
                }
                self.n -= 1;
                std::thread::sleep(Duration::from_millis(1));
                Some(Msg { key: 0, value: self.n })
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(SlowSpout { n: 100 }))
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("src", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let cfg = RuntimeConfig {
            monitor: Some(MonitorConfig { window: Duration::from_millis(25) }),
            ..RuntimeConfig::default()
        };
        let metrics = small_cluster().submit(t, cfg).unwrap().join().unwrap();
        assert!(
            !metrics.history().is_empty(),
            "monitor thread must have sampled at least one window"
        );
    }
}
