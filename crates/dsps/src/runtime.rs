//! The local execution runtime: executor threads, channels, routing,
//! end-of-stream termination and panic containment.
//!
//! Every task owns a bounded input channel; emitting to a full channel
//! blocks, which gives the same backpressure a saturated Storm deployment
//! exhibits. When all spout tasks are exhausted, end-of-stream markers
//! propagate edge-by-edge: a bolt task finishes once it has received one
//! marker from every upstream task on every incoming edge, flushes via
//! [`Bolt::finish`], forwards its own markers, and exits.
//!
//! # Reliability (at-least-once delivery)
//!
//! By default delivery is at-most-once and any task panic fails the
//! topology. Setting [`RuntimeConfig::reliability`] enables Storm's
//! guaranteed message processing instead:
//!
//! * every spout tuple becomes the **root** of a tuple tree tracked by the
//!   XOR [`Acker`]; the runtime registers each downstream delivery before
//!   sending it and acks it after the receiving bolt's `process` returns
//!   (outputs are anchored to the input's roots automatically — Storm's
//!   `BasicBolt` discipline, so the [`Bolt`] trait is unchanged);
//! * each spout task keeps a **pending buffer** of unacked tuples; a tree
//!   that does not complete within `ack_timeout` is abandoned and the
//!   tuple replayed under a fresh root with exponential backoff, up to
//!   `max_retries` times — after which the root is counted `failed` and
//!   dropped so the topology still terminates;
//! * a **supervisor** catches bolt-task panics, re-invokes the component
//!   factory to rebuild the task in place (up to `max_task_restarts`
//!   per task) and keeps consuming; the tuple that was being processed is
//!   never acked, so the spout replays it.
//!
//! Replays mean *duplicates are possible*: exactly-once is the consumer's
//! job (dedup on a message key), as in Storm 0.8 without Trident.

use crate::ack::{AckSink, Acker};
use crate::durability::{DurabilityConfig, StateStore};
use crate::error::DspsError;
use crate::fault::FaultConfig;
use crate::flight::{FlightKind, FlightRecorder};
use crate::grouping::Grouping;
use crate::lineage::{SpanKind, TraceCollector};
use crate::metrics::{MetricsHub, MonitorConfig, TaskCounters};
use crate::scheduler::{assign, Assignment, ClusterSpec};
use crate::topology::{Bolt, BoltContext, Spout, Topology};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bits of a tuple id reserved for the per-task sequence number; the high
/// bits carry the global task id, so every task mints from a disjoint
/// namespace without coordination.
const ID_SEQ_BITS: u32 = 40;

/// SplitMix64 finalizer: a bijection on `u64` scattering our sequential
/// ids. Distinct inputs stay distinct (no collisions), but the XOR of a
/// small set of live ids is no longer accidentally zero — with raw
/// sequential ids `1 ^ 2 ^ 3 == 0` would complete a tuple tree early.
/// This is the same argument Storm makes for its random 64-bit ids.
fn mix_id(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A delivery's payload: owned for single-target sends, `Arc`-shared for
/// fan-out (`All` grouping, multi-edge emits) so a broadcast to N tasks
/// costs N refcount bumps instead of N deep clones. The consuming bolt
/// takes ownership at its boundary via [`Payload::into_owned`]:
/// clone-on-write, and the last receiver unwraps the `Arc` for free.
pub(crate) enum Payload<T> {
    Owned(T),
    Shared(Arc<T>),
}

impl<T: Clone> Payload<T> {
    fn into_owned(self) -> T {
        match self {
            Payload::Owned(t) => t,
            Payload::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

impl<T> Payload<T> {
    /// Borrows the message (wire encoding reads it in place).
    pub(crate) fn as_inner(&self) -> &T {
        match self {
            Payload::Owned(t) => t,
            Payload::Shared(a) => a,
        }
    }
}

/// The lineage hop a sampled delivery carries: which trace it belongs to,
/// which span emitted it, and when it was sent (for queue-wait spans).
/// Boxed on the envelope so unsampled (and lineage-off) deliveries pay one
/// `None` pointer, not the full struct.
#[derive(Clone, Copy)]
struct TraceHop {
    /// Tuple-tree id (the sampled root delivery id).
    trace: u64,
    /// The span that emitted this delivery.
    parent: u64,
    /// Global task that sent it.
    src: u32,
    /// Send time, nanoseconds since the collector epoch.
    sent_ns: u64,
}

/// One delivery: the message plus its reliability lineage.
///
/// Crate-visible so the wire layer ([`net`](crate::net)) can encode and
/// reconstruct deliveries. The `t0`/`hop` observability fields do not
/// cross the wire: `Instant` is process-local and lineage spans do not
/// link across the boundary (each process's spans still flow back to the
/// coordinator at the end of the run).
pub(crate) struct Envelope<T> {
    pub(crate) msg: Payload<T>,
    /// This delivery's id, registered with the acker (0 when untracked).
    pub(crate) tid: u64,
    /// Spout roots this delivery descends from (empty when untracked).
    pub(crate) roots: Vec<u64>,
    /// Spout emit time of the root tuple this delivery descends from.
    /// Only stamped in tracing + at-most-once mode, where end-to-end
    /// latency is recorded at the terminal bolt (reliability mode records
    /// it spout-side from the acker's completion instant instead).
    pub(crate) t0: Option<Instant>,
    /// Lineage context when this delivery belongs to a sampled trace.
    hop: Option<Box<TraceHop>>,
}

impl<T> Envelope<T> {
    /// A delivery reconstructed from the wire (no local-only context).
    pub(crate) fn from_wire(msg: T, tid: u64, roots: Vec<u64>) -> Self {
        Envelope { msg: Payload::Owned(msg), tid, roots, t0: None, hop: None }
    }
}

/// A message, a micro-batch of messages, or an end-of-stream marker.
pub(crate) enum Packet<T> {
    Data(Envelope<T>),
    /// Deliveries that accumulated in one edge buffer ([`BatchConfig`]).
    Batch(Vec<Envelope<T>>),
    Eos,
}

/// The interface bolts and spout drivers use to send messages downstream.
pub trait Emitter<T> {
    /// Emits under each outgoing edge's grouping.
    fn emit(&mut self, msg: T);

    /// Emits on *direct*-grouped edges only, to the task with the given
    /// index. An out-of-range index is a routing bug in the emitting bolt:
    /// the delivery is counted under the `misrouted` metric and dropped on
    /// that edge (it used to alias onto `task % count`, silently handing
    /// the tuple to another task). Non-direct edges ignore direct
    /// emissions — mixing disciplines on one component is an authoring
    /// error the validator cannot see, so we keep the semantics strict
    /// and simple.
    fn emit_direct(&mut self, task: usize, msg: T);
}

/// One outgoing edge of a component.
struct Route<T> {
    grouping: Grouping<T>,
    /// Input channels of every downstream task.
    senders: Vec<Sender<Packet<T>>>,
    /// Occupancy gauges parallel to `senders` (bumped only when tracing).
    depths: Vec<Arc<AtomicI64>>,
    /// Global task ids parallel to `senders` (lineage span attribution).
    globals: Vec<u32>,
    /// Round-robin cursor for shuffle grouping.
    rr: usize,
}

/// Per-task lineage recording state ([`MonitorConfig::lineage`]); absent
/// entirely when lineage is off, so the hot path only ever checks `None`.
struct LineageState {
    /// This task's span producer (ring handle + id minting + sampler).
    sink: crate::lineage::SpanSink,
    /// `(trace, parent span)` of the tuple currently being processed or
    /// emitted; outgoing envelopes are stamped from it. `None` while
    /// handling an unsampled tuple.
    active: Option<(u64, u64)>,
}

/// The per-task emitter: owns this task's copy of each outgoing edge.
struct TaskEmitter<T> {
    routes: Vec<Route<T>>,
    counters: Arc<TaskCounters>,
    /// Shared tuple-tree tracker; `None` = at-most-once mode. A trait
    /// object so workers of a multi-process topology can substitute a
    /// forwarder to the coordinator's acker.
    acker: Option<Arc<dyn AckSink>>,
    /// High bits of every id this task mints: global task id << 40.
    id_hi: u64,
    /// Next id sequence number; starts at 1 so `id_hi | id_seq` (and its
    /// bijective mix) is never 0, the "untracked" sentinel.
    id_seq: u64,
    /// Roots of the input currently being processed; every output emitted
    /// while processing it is anchored to them.
    anchors: Vec<u64>,
    /// Seeded transport-level drop injection, when faults are enabled.
    drop_fault: Option<(f64, StdRng)>,
    /// Scratch for resolved (route, task) targets, reused across emits.
    targets: Vec<(usize, usize)>,
    /// Scratch for the fan-out delivery ids minted per emit.
    tids: Vec<u64>,
    /// Scratch for per-root combined XOR registrations per emit.
    xor_scratch: Vec<(u64, u64)>,
    /// Per-tuple tracing enabled: stamp envelopes and bump queue gauges.
    tracing: bool,
    /// Root emit time to stamp on outgoing envelopes (tracing +
    /// at-most-once only); inherited from the input being processed.
    t0: Option<Instant>,
    /// Micro-batching parameters; `None` = the per-tuple data plane.
    batch: Option<BatchConfig>,
    /// Per-(route, task) edge buffers, `buffers[ri][ti]`; allocated only
    /// when batching is on.
    buffers: Vec<Vec<Vec<Envelope<T>>>>,
    /// When the oldest currently-buffered tuple entered a buffer; `None`
    /// while every buffer is empty. Drives the `max_linger` flush clock.
    buffered_since: Option<Instant>,
    /// Sampled-lineage recording; `None` = lineage off.
    lineage: Option<LineageState>,
    /// This task's global index (identifies span producers and flight
    /// events).
    global: u32,
    /// The always-on control-plane flight recorder.
    flight: Arc<FlightRecorder>,
    /// Component name, for flight events recorded from executor context.
    component: Arc<str>,
}

impl<T> TaskEmitter<T> {
    /// Mints a fresh tuple/root id from this task's namespace.
    fn next_id(&mut self) -> u64 {
        let id = mix_id(self.id_hi | self.id_seq);
        self.id_seq += 1;
        id
    }

    fn send_eos(&mut self) {
        // No tuple may be stranded behind an EOS marker: the buffers drain
        // before the markers go out (covers spout exhaustion, `finish`
        // emissions and the failure-path EOS sweeps alike).
        self.flush_all();
        for route in &mut self.routes {
            for s in &route.senders {
                let _ = s.send(Packet::Eos);
            }
        }
    }

    /// Sends one edge buffer as a [`Packet::Batch`]. Queue-depth gauges
    /// and the dropped counter stay *tuple*-granular: a batch of n that
    /// enters (or misses) a channel accounts for n tuples.
    fn flush_edge(&mut self, ri: usize, ti: usize) {
        let buf = &mut self.buffers[ri][ti];
        if buf.is_empty() {
            return;
        }
        let n = buf.len();
        let mut batch = std::mem::take(buf);
        if let Some(l) = &mut self.lineage {
            // Buffer residency becomes a `BatchFlush` span per sampled
            // tuple, and the hop re-parents onto it so the downstream
            // queue span measures channel wait only.
            let now = l.sink.now_ns();
            let dest = self.routes[ri].globals[ti];
            for env in &mut batch {
                if let Some(hop) = env.hop.as_deref_mut() {
                    let sid = l.sink.record(
                        hop.trace,
                        hop.parent,
                        SpanKind::BatchFlush,
                        dest,
                        hop.sent_ns,
                        now.saturating_sub(hop.sent_ns),
                    );
                    hop.parent = sid;
                    hop.sent_ns = now;
                }
            }
        }
        if self.routes[ri].senders[ti].send(Packet::Batch(batch)).is_err() {
            // The receiving task died: every tuple of the batch is lost.
            for _ in 0..n {
                self.counters.record_dropped();
            }
        } else if self.tracing {
            self.routes[ri].depths[ti].fetch_add(n as i64, Ordering::Relaxed);
        }
    }

    /// Flushes every edge buffer (no-op when nothing is buffered).
    fn flush_all(&mut self) {
        if self.buffered_since.take().is_none() {
            return;
        }
        for ri in 0..self.routes.len() {
            for ti in 0..self.routes[ri].senders.len() {
                self.flush_edge(ri, ti);
            }
        }
    }

    /// Flushes all buffers once the oldest buffered tuple has lingered
    /// past `max_linger`. Executor loop turns and spout idle ticks call
    /// this — the flush clock needs no extra threads.
    fn flush_if_expired(&mut self, now: Instant) {
        if let (Some(b), Some(since)) = (self.batch, self.buffered_since) {
            if now.saturating_duration_since(since) >= b.max_linger {
                self.flush_all();
            }
        }
    }

    /// The instant by which the executor must next service the linger
    /// clock; `None` when nothing is buffered.
    fn next_flush_deadline(&self) -> Option<Instant> {
        match (self.batch, self.buffered_since) {
            (Some(b), Some(since)) => Some(since + b.max_linger),
            _ => None,
        }
    }
}

impl<T: Clone> TaskEmitter<T> {
    /// Delivers `msg` to every target resolved into `self.targets`.
    ///
    /// A single-subscriber edge — the common topology — moves the message
    /// without cloning. Fan-out (`All` grouping, multiple edges) wraps it
    /// in an `Arc` once, so every extra target is a refcount bump.
    ///
    /// All delivery ids are minted and registered with the acker *before*
    /// anything is sent (or buffered): the whole fan-out folds into one
    /// combined XOR per root applied under a single acker lock. Since
    /// registration precedes buffering, a batched output can never trail
    /// its input's ack, and a spout's `seal` directly after `emit` stays
    /// correct even while its outputs sit in edge buffers.
    fn dispatch(&mut self, msg: T) {
        if self.targets.is_empty() {
            // Nothing routed (terminal bolt, or direct emit without a
            // direct edge): not an emission, and nothing to track.
            return;
        }
        self.counters.record_emit();
        let n = self.targets.len();
        let targets = std::mem::take(&mut self.targets);
        let tracked = self.acker.is_some() && !self.anchors.is_empty();
        self.tids.clear();
        if tracked {
            let mut combined = 0u64;
            for _ in 0..n {
                let tid = self.next_id();
                combined ^= tid;
                self.tids.push(tid);
            }
            self.xor_scratch.clear();
            for &root in &self.anchors {
                self.xor_scratch.push((root, combined));
            }
            let acker = self.acker.as_ref().expect("tracked implies acker");
            acker.xor_batch(&self.xor_scratch);
        } else {
            self.tids.resize(n, 0);
        }
        if n == 1 {
            let (ri, ti) = targets[0];
            let tid = self.tids[0];
            self.send_one(ri, ti, Payload::Owned(msg), tid);
        } else {
            let mut shared = Some(Arc::new(msg));
            for (i, &(ri, ti)) in targets.iter().enumerate() {
                let payload = if i + 1 == n {
                    Payload::Shared(shared.take().expect("arc moved before final send"))
                } else {
                    Payload::Shared(shared.as_ref().expect("arc moved before final send").clone())
                };
                let tid = self.tids[i];
                self.send_one(ri, ti, payload, tid);
            }
        }
        self.targets = targets; // hand the scratch buffer back
    }

    /// Sends (or buffers) one delivery whose id `dispatch` already
    /// registered with the acker. Transport fault injection applies here,
    /// after registration — an injected loss looks exactly like a network
    /// drop the replay machinery must heal, and chaos drops act on
    /// individual tuples even when batching is on.
    fn send_one(&mut self, ri: usize, ti: usize, msg: Payload<T>, tid: u64) {
        // `mix_id` is a bijection and raw ids start at 1, so 0 is minted
        // exactly for untracked deliveries.
        let tracked = tid != 0;
        if let Some((p, rng)) = &mut self.drop_fault {
            if rng.random_bool(*p) {
                self.counters.record_dropped();
                self.counters.record_injected_drop();
                return;
            }
        }
        let roots = if tracked { self.anchors.clone() } else { Vec::new() };
        let hop = match &self.lineage {
            Some(l) => l.active.map(|(trace, parent)| {
                Box::new(TraceHop {
                    trace,
                    parent,
                    src: self.global,
                    sent_ns: l.sink.now_ns(),
                })
            }),
            None => None,
        };
        let envelope = Envelope { msg, tid, roots, t0: self.t0, hop };
        match self.batch {
            None => {
                if self.routes[ri].senders[ti].send(Packet::Data(envelope)).is_err() {
                    // The receiving task died (its channel tore down): the
                    // delivery is lost — count it instead of vanishing
                    // silently.
                    self.counters.record_dropped();
                } else if self.tracing {
                    // Only deliveries that actually entered the channel
                    // occupy it.
                    self.routes[ri].depths[ti].fetch_add(1, Ordering::Relaxed);
                }
            }
            Some(b) => {
                if self.buffered_since.is_none() {
                    self.buffered_since = Some(Instant::now());
                }
                let buf = &mut self.buffers[ri][ti];
                buf.push(envelope);
                if buf.len() >= b.max_batch.max(1) {
                    self.flush_edge(ri, ti);
                }
            }
        }
    }
}

impl<T: Clone> Emitter<T> for TaskEmitter<T> {
    fn emit(&mut self, msg: T) {
        // Resolve every (route, task) target before counting or sending:
        // the emitted counter and the acker must reflect deliveries that
        // actually route somewhere.
        self.targets.clear();
        for (ri, route) in self.routes.iter_mut().enumerate() {
            if route.senders.is_empty() {
                continue;
            }
            match &route.grouping {
                Grouping::Shuffle => {
                    let target = route.rr % route.senders.len();
                    route.rr = route.rr.wrapping_add(1);
                    self.targets.push((ri, target));
                }
                Grouping::Fields(key) => {
                    let n = route.senders.len() as u64;
                    self.targets.push((ri, (key(&msg) % n) as usize));
                }
                Grouping::All => {
                    for si in 0..route.senders.len() {
                        self.targets.push((ri, si));
                    }
                }
                Grouping::Direct => {
                    // Ignored: direct edges deliver via emit_direct only.
                }
            }
        }
        self.dispatch(msg);
    }

    fn emit_direct(&mut self, task: usize, msg: T) {
        self.targets.clear();
        let mut misrouted = 0u64;
        for (ri, route) in self.routes.iter().enumerate() {
            if matches!(route.grouping, Grouping::Direct) && !route.senders.is_empty() {
                if task < route.senders.len() {
                    self.targets.push((ri, task));
                } else {
                    // Out-of-range target: a routing bug in the emitting
                    // bolt. The old `task % len` wraparound silently handed
                    // the tuple to another task (another Esper engine's
                    // partition in the splitter topology) — count it and
                    // drop the delivery on this edge instead.
                    misrouted += 1;
                }
            }
        }
        for _ in 0..misrouted {
            self.counters.record_misrouted();
        }
        self.dispatch(msg);
    }
}

/// At-least-once delivery and supervised recovery parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// How long a spout waits for a tuple tree to complete before
    /// abandoning the root and replaying the tuple.
    pub ack_timeout: Duration,
    /// Replays per tuple before the root is abandoned as failed.
    pub max_retries: u32,
    /// Timeout multiplier applied per retry (exponential backoff).
    pub backoff: f64,
    /// Max in-flight (unacked) roots per spout task; `Spout::next` is not
    /// called while the buffer is full — Storm's `max.spout.pending`.
    pub max_pending: usize,
    /// Supervised restarts of a panicking bolt task before the topology
    /// fails with [`DspsError::TaskRestartsExhausted`].
    pub max_task_restarts: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            ack_timeout: Duration::from_secs(30),
            max_retries: 5,
            backoff: 2.0,
            max_pending: 1024,
            max_task_restarts: 3,
        }
    }
}

/// Micro-batching parameters for the data plane, opt-in via
/// [`RuntimeConfig::batch`].
///
/// When set, every emitter accumulates deliveries in per-(route, task)
/// edge buffers and ships them as one [`Packet::Batch`], amortizing the
/// per-delivery channel send, acker lock and wakeup. A buffer flushes
///
/// * when it reaches `max_batch` tuples,
/// * when its oldest buffered tuple has waited `max_linger` (the flush
///   clock is driven by spout idle ticks and executor loop turns — no
///   extra threads), and
/// * unconditionally before any EOS marker (spout exhaustion, `finish`,
///   failure paths), so no tuple is ever stranded.
///
/// Semantics are unchanged from the per-tuple data plane: same tuples in
/// the same per-edge order, tuple-granular metrics, and full composition
/// with reliability, tracing, chaos and profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Tuples per edge buffer before a size flush (≥ 1; 0 behaves as 1).
    pub max_batch: usize,
    /// Longest a tuple may wait in an edge buffer before a flush.
    pub max_linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { max_batch: 128, max_linger: Duration::from_millis(1) }
    }
}

/// Runtime configuration for [`LocalCluster::submit`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Capacity of each task's input channel.
    pub channel_capacity: usize,
    /// Number of worker processes to model; defaults to one per node.
    pub workers: Option<usize>,
    /// Metrics monitor window; `None` disables the monitor thread (metrics
    /// can still be sampled manually through the handle).
    pub monitor: Option<MonitorConfig>,
    /// At-least-once machinery (acker + replay + supervised restarts);
    /// `None` keeps the default fail-fast, at-most-once runtime.
    pub reliability: Option<ReliabilityConfig>,
    /// Transport-level fault injection (seeded message drops). Panic and
    /// latency injection wrap individual bolts via
    /// [`chaos_wrap`](crate::fault::chaos_wrap) instead.
    pub fault: Option<FaultConfig>,
    /// Micro-batched data plane; `None` keeps today's per-tuple sends
    /// byte-for-byte.
    pub batch: Option<BatchConfig>,
    /// Durable bolt state (snapshot + changelog per task, see
    /// [`durability`](crate::durability)); `None` keeps tasks ephemeral —
    /// a restarted task (supervised or resubmitted) starts empty.
    pub durability: Option<DurabilityConfig>,
    /// Control-plane flight recorder to use. `None` (the default) creates
    /// one — the recorder is always on. Provide your own to share its
    /// timeline with components outside the runtime (e.g. a rebalancer
    /// control thread or domain bolts recording custom events).
    pub flight: Option<Arc<FlightRecorder>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            channel_capacity: 1024,
            workers: None,
            monitor: None,
            reliability: None,
            fault: None,
            batch: None,
            durability: None,
            flight: None,
        }
    }
}

/// A spout tuple awaiting the completion of its tree.
struct PendingRoot<T> {
    msg: T,
    deadline: Instant,
    retries: u32,
    /// When the tuple was first emitted; preserved across replays so
    /// end-to-end latency covers the full retry history.
    first_emit: Instant,
    /// `(trace id, emit span id)` when the tree is lineage-sampled;
    /// preserved across replays so replay and completion spans attach to
    /// the original tree instead of forming orphans.
    trace: Option<(u64, u64)>,
}

/// One spout task's state inside its executor thread.
struct SpoutTask<T> {
    spout: Box<dyn Spout<T>>,
    emitter: TaskEmitter<T>,
    /// Global task id — indexes this task's completion channel.
    global: usize,
    /// Completion notifications `(root, completed_at)` from the acker
    /// (reliability mode only).
    completions: Option<Receiver<(u64, Instant)>>,
    /// In-flight roots awaiting completion.
    pending: HashMap<u64, PendingRoot<T>>,
    /// Next time the pending buffer is scanned for timeouts.
    next_scan: Instant,
    /// Source not yet exhausted.
    live: bool,
    /// EOS forwarded (after the source drained *and* pending emptied).
    eos_sent: bool,
}

/// One bolt task's state inside its executor thread.
struct BoltTask<T> {
    bolt: Box<dyn Bolt<T>>,
    emitter: TaskEmitter<T>,
    rx: Receiver<Packet<T>>,
    /// Task index within the component (what errors must report).
    index: usize,
    /// Context handed to `prepare`, kept for supervised restarts.
    ctx: BoltContext,
    /// This task's input-channel occupancy gauge (tracing mode).
    depth: Arc<AtomicI64>,
    /// Durable snapshot+changelog state store; `None` = ephemeral task.
    store: Option<StateStore>,
    /// Scratch for changelog records drained per tuple.
    log_scratch: Vec<Vec<u8>>,
    /// Tuples processed since the last snapshot — drives the snapshot
    /// cadence for bolts that snapshot without writing changelog records.
    since_snapshot: u64,
    eos_seen: usize,
    restarts: u32,
    done: bool,
}

/// A local task's wire ingress point: where the net layer injects
/// packets that arrived from a remote worker.
pub(crate) struct LocalIngress<T> {
    /// The task's input channel (the same one local producers use, so
    /// per-link FIFO and EOS quorum counting are location-independent).
    pub(crate) tx: Sender<Packet<T>>,
    /// The task's occupancy gauge; the ingress bumps it exactly like a
    /// local producer would.
    pub(crate) depth: Arc<AtomicI64>,
    /// Whether gauges are live (tracing mode).
    pub(crate) tracing: bool,
}

/// The runtime's seam to the multi-process wire layer.
///
/// `submit_inner` resolves every (route, task) target at build time:
/// local targets keep their channel, remote targets get a *relay*
/// channel from this plane — bounded like a task input channel, so
/// backpressure propagates across the process boundary. The plane drains
/// relays onto peer links and injects arriving packets through the
/// registered ingress map.
pub(crate) trait RemoteDataPlane<T>: Send + Sync {
    /// The relay channel feeding remote task `dest_global` on `worker`.
    /// Called once per (worker, task) during topology build; all local
    /// producers share the returned sender via clone.
    fn remote_sender(&self, worker: usize, dest_global: u32, capacity: usize) -> Sender<Packet<T>>;

    /// Hands the plane this process's ingress map (global task id →
    /// input channel) before any executor starts.
    fn register_ingress(&self, map: HashMap<u32, LocalIngress<T>>);
}

/// Distribution context for one process of a multi-process topology;
/// `None` in [`LocalCluster::submit`] keeps the single-process runtime
/// byte-identical (no relays, no plane, the concrete [`Acker`]).
pub(crate) struct DistCtx<T> {
    /// This process's worker id (0 = coordinator).
    pub(crate) worker: usize,
    /// The coordinator-computed assignment every process agrees on.
    pub(crate) assignment: Assignment,
    /// The wire layer's data plane.
    pub(crate) plane: Arc<dyn RemoteDataPlane<T>>,
    /// Builds the ack sink (reliability mode): the real acker on the
    /// coordinator, a forwarder on workers. Receives the spout completion
    /// senders (spouts are pinned to the coordinator, so only the real
    /// acker ever uses them).
    #[allow(clippy::type_complexity)]
    pub(crate) make_ack:
        Box<dyn FnOnce(Vec<Sender<(u64, Instant)>>) -> Arc<dyn AckSink> + Send>,
}

/// A local, threaded stand-in for a Storm cluster.
pub struct LocalCluster {
    spec: ClusterSpec,
}

impl LocalCluster {
    /// Creates a cluster model.
    pub fn new(spec: ClusterSpec) -> Result<Self, DspsError> {
        spec.validate()?;
        Ok(LocalCluster { spec })
    }

    /// The cluster spec.
    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    /// Submits a topology and starts executing it on real threads.
    pub fn submit<T: Clone + Send + Sync + 'static>(
        &self,
        topology: Topology<T>,
        config: RuntimeConfig,
    ) -> Result<TopologyHandle, DspsError> {
        self.submit_inner(topology, config, None)
    }

    /// The real submit: builds channels, routes and executors for the
    /// tasks this process owns. With `dist: None` (the public
    /// [`submit`](LocalCluster::submit)) every task is local and the body
    /// reduces to the original single-process runtime — no relay
    /// channels, no plane calls, no extra syscalls or threads. With a
    /// [`DistCtx`], remote targets resolve to the plane's relay channels
    /// and only the local executor slice is spawned.
    pub(crate) fn submit_inner<T: Clone + Send + Sync + 'static>(
        &self,
        topology: Topology<T>,
        config: RuntimeConfig,
        dist: Option<DistCtx<T>>,
    ) -> Result<TopologyHandle, DspsError> {
        let workers = config.workers.unwrap_or_else(|| self.spec.default_workers());
        let components: Vec<(&str, usize, usize)> = topology
            .spouts
            .iter()
            .map(|s| (s.name.as_str(), s.parallelism.tasks, s.parallelism.executors))
            .chain(
                topology
                    .bolts
                    .iter()
                    .map(|b| (b.name.as_str(), b.parallelism.tasks, b.parallelism.executors)),
            )
            .collect();
        let (my_worker, dist_assignment, plane, make_ack) = match dist {
            Some(d) => (Some(d.worker), Some(d.assignment), Some(d.plane), Some(d.make_ack)),
            None => (None, None, None, None),
        };
        let assignment = match dist_assignment {
            Some(a) => a,
            None => assign(&components, self.spec, workers)?,
        };

        let metrics = Arc::new(match config.monitor {
            Some(mc) => MetricsHub::with_retention(mc.retention),
            None => MetricsHub::new(),
        });
        let done = Arc::new(AtomicBool::new(false));
        let reliability = config.reliability;
        let fault = config.fault;
        let durability = config.durability.clone();
        let tracing = config.monitor.is_some_and(|mc| mc.tracing);

        // ---- Shared observability clock -----------------------------------
        // The flight recorder is always on; the lineage collector is opt-in.
        // Both time against one epoch (the recorder's), so control-plane
        // events and tuple spans line up in a single view.
        let flight = config
            .flight
            .clone()
            .unwrap_or_else(|| Arc::new(FlightRecorder::default()));
        let collector: Option<Arc<TraceCollector>> = config
            .monitor
            .and_then(|mc| mc.lineage)
            .map(|lc| Arc::new(TraceCollector::new(lc, flight.epoch())));

        // ---- Global task ids ----------------------------------------------
        // Components in declaration order (spouts first), tasks within a
        // component contiguous. They give every task a disjoint tuple-id
        // namespace and index the spout completion channels.
        let mut global_base: HashMap<&str, usize> = HashMap::new();
        let mut next_global = 0usize;
        for &(name, tasks, _) in &components {
            global_base.insert(name, next_global);
            next_global += tasks;
        }
        let spout_task_total: usize =
            topology.spouts.iter().map(|s| s.parallelism.tasks).sum();

        // ---- Task ownership (multi-process mode) --------------------------
        // Which worker owns each global task, derived from the shared
        // assignment so every process resolves locality identically. In
        // single-process mode everything is local and the vector is unused.
        let owner: Vec<usize> = {
            let mut owner = vec![0usize; next_global];
            if my_worker.is_some() {
                for p in &assignment.placements {
                    let base = global_base[p.component.as_str()];
                    for &t in &p.tasks {
                        owner[base + t] = p.worker;
                    }
                }
            }
            owner
        };
        let is_local = |global: usize| my_worker.is_none_or(|w| owner[global] == w);

        // ---- Acker + completion channels (reliability mode) ---------------
        // Completion channels are unbounded so completing a tree can never
        // block a bolt executor against a stalled spout.
        let mut completion_rxs: Vec<Option<Receiver<(u64, Instant)>>> = Vec::new();
        let acker: Option<Arc<dyn AckSink>> = if reliability.is_some() {
            let mut txs = Vec::with_capacity(spout_task_total);
            for _ in 0..spout_task_total {
                let (tx, rx) = unbounded();
                txs.push(tx);
                completion_rxs.push(Some(rx));
            }
            Some(match make_ack {
                Some(f) => f(txs),
                None => Arc::new(Acker::new(txs)),
            })
        } else {
            None
        };

        // ---- Channels: one bounded channel per bolt task ------------------
        // Each channel gets an occupancy counter the hub reads as a gauge;
        // the hub holds only the counter, never a channel handle (that
        // would defeat disconnect detection when a task dies).
        //
        // Multi-process mode: a *remote* task's slot holds the plane's
        // relay sender instead — emitters stay oblivious, routing simply
        // resolves to a channel that happens to cross a socket. Remote
        // slots get an unregistered depth gauge (the owning process tracks
        // the real occupancy).
        let mut senders_by_bolt: Vec<Vec<Sender<Packet<T>>>> =
            Vec::with_capacity(topology.bolts.len());
        let mut receivers_by_bolt: Vec<Vec<Option<Receiver<Packet<T>>>>> =
            Vec::with_capacity(topology.bolts.len());
        let mut depths_by_bolt: Vec<Vec<Arc<AtomicI64>>> =
            Vec::with_capacity(topology.bolts.len());
        let mut ingress: HashMap<u32, LocalIngress<T>> = HashMap::new();
        for b in &topology.bolts {
            let mut senders = Vec::with_capacity(b.parallelism.tasks);
            let mut receivers = Vec::with_capacity(b.parallelism.tasks);
            let mut depths = Vec::with_capacity(b.parallelism.tasks);
            for ti in 0..b.parallelism.tasks {
                let global = global_base[b.name.as_str()] + ti;
                if is_local(global) {
                    let (tx, rx) = bounded(config.channel_capacity.max(1));
                    let depth = Arc::new(AtomicI64::new(0));
                    if tracing {
                        metrics.register_queue(
                            &b.name,
                            depth.clone(),
                            config.channel_capacity.max(1),
                        );
                    }
                    if my_worker.is_some() {
                        ingress.insert(
                            global as u32,
                            LocalIngress { tx: tx.clone(), depth: depth.clone(), tracing },
                        );
                    }
                    senders.push(tx);
                    receivers.push(Some(rx));
                    depths.push(depth);
                } else {
                    let plane = plane.as_ref().expect("remote task implies a data plane");
                    senders.push(plane.remote_sender(
                        owner[global],
                        global as u32,
                        config.channel_capacity.max(1),
                    ));
                    receivers.push(None);
                    depths.push(Arc::new(AtomicI64::new(0)));
                }
            }
            senders_by_bolt.push(senders);
            receivers_by_bolt.push(receivers);
            depths_by_bolt.push(depths);
        }
        if let Some(plane) = plane.as_ref() {
            plane.register_ingress(ingress);
        }

        // ---- Outgoing edges per source component --------------------------
        // source name → [(grouping, downstream senders)]
        let make_routes = |source: &str| -> Vec<Route<T>> {
            let mut routes = Vec::new();
            for (bi, b) in topology.bolts.iter().enumerate() {
                for sub in &b.subscriptions {
                    if sub.source == source {
                        routes.push(Route {
                            grouping: sub.grouping.clone(),
                            senders: senders_by_bolt[bi].clone(),
                            depths: depths_by_bolt[bi].clone(),
                            globals: (0..b.parallelism.tasks)
                                .map(|ti| (global_base[b.name.as_str()] + ti) as u32)
                                .collect(),
                            rr: 0,
                        });
                    }
                }
            }
            routes
        };
        let batch = config.batch;
        let make_emitter = |source: &str, global: usize, counters: Arc<TaskCounters>| {
            let routes = make_routes(source);
            // Edge buffers only exist on the batched data plane; sized to
            // the route fan-out so `buffers[ri][ti]` mirrors `senders`.
            let buffers = if batch.is_some() {
                routes
                    .iter()
                    .map(|r| (0..r.senders.len()).map(|_| Vec::new()).collect())
                    .collect()
            } else {
                Vec::new()
            };
            TaskEmitter {
                routes,
                counters,
                acker: acker.clone(),
                id_hi: (global as u64) << ID_SEQ_BITS,
                id_seq: 1,
                anchors: Vec::new(),
                drop_fault: fault
                    .filter(|f| f.drop_p > 0.0)
                    .map(|f| (f.drop_p, f.rng_for(global as u64 | (1 << 48)))),
                targets: Vec::new(),
                tids: Vec::new(),
                xor_scratch: Vec::new(),
                tracing,
                t0: None,
                batch,
                buffers,
                buffered_since: None,
                lineage: collector.as_ref().map(|c| LineageState {
                    sink: c.register_task(global as u32, source),
                    active: None,
                }),
                global: global as u32,
                flight: flight.clone(),
                component: Arc::from(source),
            }
        };

        // Upstream task count per bolt: one EOS arrives per upstream task
        // per incoming edge.
        let task_count_of = |name: &str| -> usize {
            components
                .iter()
                .find(|(n, _, _)| *n == name)
                .map(|&(_, tasks, _)| tasks)
                .unwrap_or(0)
        };
        let expected_eos: Vec<usize> = topology
            .bolts
            .iter()
            .map(|b| b.subscriptions.iter().map(|s| task_count_of(&s.source)).sum())
            .collect();

        let mut threads: Vec<std::thread::JoinHandle<Result<(), DspsError>>> = Vec::new();

        // Executor → task packing. Single-process: the scheduler's packing
        // directly (exactly as before). Multi-process: this process's
        // executor slice of the shared assignment, which used the same
        // packing — so a task's executor grouping is identical everywhere;
        // only *where* the executor thread runs changes.
        let executor_slices = |name: &str, tasks: usize, executors: usize| -> Vec<Vec<usize>> {
            match my_worker {
                None => crate::scheduler::pack_tasks(tasks, executors),
                Some(w) => assignment
                    .placements
                    .iter()
                    .filter(|p| p.component == name && p.worker == w)
                    .map(|p| p.tasks.clone())
                    .collect(),
            }
        };

        // ---- Spout executors ----------------------------------------------
        for s in &topology.spouts {
            let packing =
                executor_slices(&s.name, s.parallelism.tasks, s.parallelism.executors);
            for task_ids in packing {
                let mut tasks: Vec<SpoutTask<T>> = Vec::new();
                for &ti in &task_ids {
                    let counters = metrics.register_task(&s.name);
                    let global = global_base[s.name.as_str()] + ti;
                    tasks.push(SpoutTask {
                        spout: (*s.factory)(ti),
                        emitter: make_emitter(&s.name, global, counters),
                        global,
                        completions: reliability.map(|_| {
                            completion_rxs[global]
                                .take()
                                .expect("each completion receiver is claimed exactly once")
                        }),
                        pending: HashMap::new(),
                        next_scan: Instant::now(),
                        live: true,
                        eos_sent: false,
                    });
                }
                let component = s.name.clone();
                let thread_acker = acker.clone();
                threads.push(std::thread::spawn(move || {
                    run_spout_executor(tasks, task_ids, component, thread_acker, reliability, tracing)
                }));
            }
        }

        // ---- Bolt executors -----------------------------------------------
        for (bi, b) in topology.bolts.iter().enumerate() {
            let packing =
                executor_slices(&b.name, b.parallelism.tasks, b.parallelism.executors);
            let task_count = b.parallelism.tasks;
            for task_ids in packing {
                let mut tasks: Vec<BoltTask<T>> = Vec::new();
                for &ti in &task_ids {
                    let counters = metrics.register_task(&b.name);
                    let global = global_base[b.name.as_str()] + ti;
                    let rx = receivers_by_bolt[bi][ti]
                        .take()
                        .expect("each task receiver is claimed exactly once");
                    let store = match &durability {
                        Some(d) => {
                            let store = StateStore::open(d, &b.name, ti)?;
                            if store.truncated_bytes() > 0 {
                                flight.record(
                                    FlightKind::ChangelogTruncated,
                                    &b.name,
                                    global as i64,
                                    format!(
                                        "{} torn-tail bytes dropped at open",
                                        store.truncated_bytes()
                                    ),
                                );
                            }
                            Some(store)
                        }
                        None => None,
                    };
                    tasks.push(BoltTask {
                        bolt: (*b.factory)(ti),
                        emitter: make_emitter(&b.name, global, counters),
                        rx,
                        index: ti,
                        ctx: BoltContext { task_index: ti, task_count },
                        depth: depths_by_bolt[bi][ti].clone(),
                        store,
                        log_scratch: Vec::new(),
                        since_snapshot: 0,
                        eos_seen: 0,
                        restarts: 0,
                        done: false,
                    });
                }
                let component = b.name.clone();
                let expected = expected_eos[bi];
                let factory = b.factory.clone();
                let thread_acker = acker.clone();
                threads.push(std::thread::spawn(move || {
                    run_bolt_executor(
                        tasks,
                        component,
                        expected,
                        factory,
                        thread_acker,
                        reliability,
                        tracing,
                    )
                }));
            }
        }

        // ---- Scrape endpoint (opt-in) -------------------------------------
        // Bound here (not in the monitor thread) so the caller learns the
        // actual address — port 0 asks the OS for an ephemeral port. The
        // listener is nonblocking and *owned* by the monitor thread, which
        // polls it between sleep steps; dropping it there at shutdown
        // closes the socket.
        let scrape_listener = match config.monitor.and_then(|mc| mc.expose) {
            Some(port) => {
                let listener = std::net::TcpListener::bind(("127.0.0.1", port))
                    .map_err(|e| DspsError::ExpositionBind { port, reason: e.to_string() })?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| DspsError::ExpositionBind { port, reason: e.to_string() })?;
                Some(listener)
            }
            None => None,
        };
        let scrape_addr = scrape_listener.as_ref().and_then(|l| l.local_addr().ok());

        // ---- Monitor thread -----------------------------------------------
        let monitor_thread = config.monitor.map(|mc| {
            let metrics = metrics.clone();
            let done = done.clone();
            let scrape_collector = collector.clone();
            let scrape_flight = flight.clone();
            std::thread::spawn(move || {
                let window = mc.window.max(Duration::from_millis(1));
                let start = Instant::now();
                'sampling: loop {
                    // Absolute deadlines on the window grid: sampling cost
                    // delays one sample but never shifts the grid (the old
                    // sleep-then-sample loop accumulated `window + cost` of
                    // drift per cycle). A sample slower than the window
                    // skips grid points instead of bunching up.
                    let deadline = start + next_window_deadline(start.elapsed(), window);
                    loop {
                        if done.load(Ordering::Relaxed) {
                            break 'sampling;
                        }
                        if let Some(listener) = &scrape_listener {
                            serve_scrapes(
                                listener,
                                &metrics,
                                scrape_collector.as_deref(),
                                &scrape_flight,
                            );
                        }
                        // Keep the per-task span rings shallow: drain them
                        // into the central store on the monitor's cadence
                        // so long runs don't overflow the rings between
                        // scrapes.
                        if let Some(c) = scrape_collector.as_deref() {
                            c.drain();
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        // Sleep in small steps so shutdown is prompt and
                        // scrape requests wait at most one step.
                        std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
                    }
                    metrics.sample();
                }
                // Flush the tail as an explicitly partial window: it covers
                // less than a full period, so per-window throughput must not
                // be compared 1:1 against full windows.
                metrics.flush_sample();
                // `scrape_listener` drops here: the endpoint closes with
                // the monitor, after the final flush.
                drop(scrape_listener);
            })
        });

        Ok(TopologyHandle {
            threads,
            monitor_thread,
            metrics,
            assignment,
            done,
            scrape_addr,
            lineage: collector,
            flight,
        })
    }
}

/// Accepts and answers every scrape connection currently queued on the
/// (nonblocking) listener. `GET /metrics` returns the Prometheus text
/// format, `GET /json` (or `/`) the JSON snapshot, `GET /trace` the
/// Chrome `trace_event` export (`/trace.jsonl` the span log) when lineage
/// is on, and `GET /events` the flight-recorder ring; anything else is a
/// 404 carrying the route index. One short-lived blocking read/write per
/// connection with a hard timeout so a stalled scraper cannot wedge the
/// monitor thread.
fn serve_scrapes(
    listener: &std::net::TcpListener,
    metrics: &MetricsHub,
    collector: Option<&TraceCollector>,
    flight: &FlightRecorder,
) {
    use std::io::{Read, Write};
    loop {
        let mut stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        };
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        // Read until the end of the request head (or timeout/cap); only
        // the request line matters.
        let mut buf = Vec::with_capacity(512);
        let mut chunk = [0u8; 512];
        while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let head = String::from_utf8_lossy(&buf);
        let path = head.split_whitespace().nth(1).unwrap_or("");
        const ROUTES: &str =
            "not found; routes: /metrics /json /trace /trace.jsonl /events\n";
        let (status, content_type, body) = match path {
            "/metrics" => {
                ("200 OK", "text/plain; version=0.0.4; charset=utf-8", metrics.render_prometheus())
            }
            "/json" | "/" => ("200 OK", "application/json", metrics.render_json()),
            "/trace" => match collector {
                Some(c) => ("200 OK", "application/json", c.render_chrome_json()),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "lineage tracing is off; enable MonitorConfig::lineage\n".into(),
                ),
            },
            "/trace.jsonl" => match collector {
                Some(c) => ("200 OK", "application/jsonl", c.render_jsonl()),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "lineage tracing is off; enable MonitorConfig::lineage\n".into(),
                ),
            },
            "/events" => ("200 OK", "application/json", flight.render_json()),
            _ => ("404 Not Found", "text/plain; charset=utf-8", ROUTES.into()),
        };
        let _ = stream.write_all(
            format!(
                "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }
}

/// The next absolute sample deadline, as an offset from the monitor's
/// start: the first multiple of `window` strictly after `elapsed`. Grid
/// points a slow sample already missed are skipped, not queued.
fn next_window_deadline(elapsed: Duration, window: Duration) -> Duration {
    let w = window.as_nanos().max(1);
    let k = elapsed.as_nanos() / w + 1;
    Duration::from_nanos((k * w).min(u64::MAX as u128) as u64)
}

/// Drives one spout executor: round-robins its tasks, each pulling from
/// its source, draining acker completions and replaying timed-out trees
/// until the source is exhausted *and* every in-flight tuple resolved.
fn run_spout_executor<T: Clone + Send + Sync>(
    mut tasks: Vec<SpoutTask<T>>,
    task_ids: Vec<usize>,
    component: String,
    acker: Option<Arc<dyn AckSink>>,
    reliability: Option<ReliabilityConfig>,
    tracing: bool,
) -> Result<(), DspsError> {
    let mut finished = 0usize;
    let mut failure: Option<DspsError> = None;
    'outer: while finished < tasks.len() {
        let mut progressed = false;
        for (i, t) in tasks.iter_mut().enumerate() {
            if t.eos_sent {
                continue;
            }
            // 1. Completions: fully-acked trees leave the pending buffer.
            //    End-to-end latency runs from the *first* emit (replays
            //    included) to the acker's completion instant — not to the
            //    moment this drain loop got around to the notification.
            if let Some(rx) = &t.completions {
                while let Ok((root, completed_at)) = rx.try_recv() {
                    if let Some(p) = t.pending.remove(&root) {
                        t.emitter.counters.record_acked();
                        if tracing {
                            t.emitter
                                .counters
                                .record_completion(completed_at.saturating_duration_since(p.first_emit));
                        }
                        if let Some(l) = &mut t.emitter.lineage {
                            if let Some((trace, parent)) = p.trace {
                                // The tree is done at the acker's completion
                                // instant, not when this drain got to it.
                                let at = l.sink.at_ns(completed_at);
                                l.sink.record(
                                    trace,
                                    parent,
                                    SpanKind::Completion,
                                    p.retries,
                                    at,
                                    0,
                                );
                            }
                        }
                        progressed = true;
                    }
                }
            }
            // 2. Timed-out trees: abandon the old root (late acks become
            //    no-ops) and replay under a fresh one with exponential
            //    backoff; an exhausted budget fails the tuple instead, so
            //    the topology still terminates.
            if let Some(rel) = &reliability {
                let now = Instant::now();
                if t.next_scan <= now && !t.pending.is_empty() {
                    t.next_scan = now + Duration::from_millis(10).min(rel.ack_timeout / 4);
                    let acker = acker.as_ref().expect("reliability implies acker");
                    let due: Vec<u64> = t
                        .pending
                        .iter()
                        .filter(|(_, p)| p.deadline <= now)
                        .map(|(&root, _)| root)
                        .collect();
                    for root in due {
                        let p = t.pending.remove(&root).expect("key drawn from this map");
                        acker.abandon(root);
                        if p.retries >= rel.max_retries {
                            t.emitter.counters.record_failed();
                            continue;
                        }
                        let retries = p.retries + 1;
                        let new_root = t.emitter.next_id();
                        acker.register(new_root, t.global);
                        let timeout = rel.ack_timeout.mul_f64(rel.backoff.powi(retries as i32));
                        // A sampled tree's replay gets its own span, parented
                        // into the original tree (stored on the pending root)
                        // so re-emitted hops stay connected to it; the new
                        // pending root carries the replay span forward for
                        // any further retries and the completion.
                        let mut replay_ctx = None;
                        if let Some(l) = &mut t.emitter.lineage {
                            if let Some((trace, parent)) = p.trace {
                                let sid = l.sink.next_id();
                                replay_ctx = Some((trace, parent, sid, l.sink.now_ns()));
                                l.active = Some((trace, sid));
                            }
                        }
                        t.pending.insert(
                            new_root,
                            PendingRoot {
                                msg: p.msg.clone(),
                                deadline: now + timeout,
                                retries,
                                first_emit: p.first_emit,
                                trace: replay_ctx.map(|(trace, _, sid, _)| (trace, sid)),
                            },
                        );
                        t.emitter.anchors.clear();
                        t.emitter.anchors.push(new_root);
                        t.emitter.emit(p.msg);
                        t.emitter.anchors.clear();
                        if let Some(l) = &mut t.emitter.lineage {
                            if let Some((trace, parent, sid, start)) = replay_ctx {
                                let end = l.sink.now_ns();
                                l.sink.record_with_id(
                                    sid,
                                    trace,
                                    parent,
                                    SpanKind::Replay,
                                    retries,
                                    start,
                                    end.saturating_sub(start),
                                );
                            }
                            l.active = None;
                        }
                        acker.seal(new_root);
                        t.emitter.counters.record_replayed();
                        progressed = true;
                    }
                }
            }
            // 3. Pull from the source, unless the pending buffer is full.
            let throttled =
                reliability.is_some_and(|rel| t.pending.len() >= rel.max_pending);
            if t.live && !throttled {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    t.spout.next()
                }));
                match result {
                    Ok(Some(msg)) => {
                        // Spout emission is accounted under `emitted` (by
                        // the emitter); `processed`/`busy_ns` stay bolt-only
                        // so spout windows don't fake a processing latency.
                        progressed = true;
                        if let Some(rel) = &reliability {
                            let acker = acker.as_ref().expect("reliability implies acker");
                            let root = t.emitter.next_id();
                            acker.register(root, t.global);
                            // Deterministic sampling: the root id is already
                            // a SplitMix64-mixed uniform u64, so a threshold
                            // compare picks `sample_rate` of trees with no
                            // RNG. The emit span id is reserved up front so
                            // outgoing envelopes can parent onto it.
                            let mut emit_ctx = None;
                            if let Some(l) = &mut t.emitter.lineage {
                                if l.sink.sampled(root) {
                                    let sid = l.sink.next_id();
                                    emit_ctx = Some((root, sid, l.sink.now_ns()));
                                    l.active = Some((root, sid));
                                }
                            }
                            let now = Instant::now();
                            t.pending.insert(
                                root,
                                PendingRoot {
                                    msg: msg.clone(),
                                    deadline: now + rel.ack_timeout,
                                    retries: 0,
                                    first_emit: now,
                                    trace: emit_ctx.map(|(trace, sid, _)| (trace, sid)),
                                },
                            );
                            t.emitter.anchors.clear();
                            t.emitter.anchors.push(root);
                            t.emitter.emit(msg);
                            t.emitter.anchors.clear();
                            if let Some(l) = &mut t.emitter.lineage {
                                if let Some((trace, sid, start)) = emit_ctx {
                                    let end = l.sink.now_ns();
                                    l.sink.record_with_id(
                                        sid,
                                        trace,
                                        0,
                                        SpanKind::SpoutEmit,
                                        0,
                                        start,
                                        end.saturating_sub(start),
                                    );
                                }
                                l.active = None;
                            }
                            // Completes roots whose emit found no route.
                            acker.seal(root);
                        } else {
                            // At-most-once has no acker root: mint a probe id
                            // from the same mixed namespace for the sampling
                            // decision and the trace id.
                            let probe = match t.emitter.lineage {
                                Some(_) => Some(t.emitter.next_id()),
                                None => None,
                            };
                            let mut emit_ctx = None;
                            if let (Some(l), Some(root)) = (&mut t.emitter.lineage, probe) {
                                if l.sink.sampled(root) {
                                    let sid = l.sink.next_id();
                                    emit_ctx = Some((root, sid, l.sink.now_ns()));
                                    l.active = Some((root, sid));
                                }
                            }
                            if tracing {
                                t.emitter.t0 = Some(Instant::now());
                            }
                            t.emitter.emit(msg);
                            t.emitter.t0 = None;
                            if let Some(l) = &mut t.emitter.lineage {
                                if let Some((trace, sid, start)) = emit_ctx {
                                    let end = l.sink.now_ns();
                                    l.sink.record_with_id(
                                        sid,
                                        trace,
                                        0,
                                        SpanKind::SpoutEmit,
                                        0,
                                        start,
                                        end.saturating_sub(start),
                                    );
                                }
                                l.active = None;
                            }
                        }
                    }
                    Ok(None) => {
                        t.live = false;
                        progressed = true;
                    }
                    Err(e) => {
                        failure = Some(DspsError::TaskPanicked {
                            component: component.clone(),
                            task: task_ids[i],
                            reason: panic_text(e.as_ref()),
                        });
                        break 'outer;
                    }
                }
            }
            // 4. EOS once drained: source exhausted, nothing in flight.
            if !t.live && t.pending.is_empty() && !t.eos_sent {
                t.emitter.send_eos();
                t.emitter.flight.record(
                    FlightKind::Eos,
                    &t.emitter.component,
                    t.emitter.global as i64,
                    "source drained, in-flight empty",
                );
                t.eos_sent = true;
                finished += 1;
                progressed = true;
            }
            // 5. Linger clock: ship batched edges whose oldest tuple has
            //    waited out `max_linger`. Loop turns and the idle tick
            //    below bound the flush granularity to ~1ms.
            if !t.eos_sent {
                t.emitter.flush_if_expired(Instant::now());
            }
        }
        if !progressed {
            // Only waiting on acks: don't spin.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // EOS every task this executor still owes, so downstream terminates
    // even when this executor failed mid-stream.
    for t in tasks.iter_mut() {
        if !t.eos_sent {
            if let Some(acker) = &acker {
                for &root in t.pending.keys() {
                    acker.abandon(root);
                }
            }
            t.emitter.send_eos();
            t.eos_sent = true;
        }
    }
    match failure {
        Some(e) => {
            // Fatal executor death: dump the control-plane history around
            // the failure to stderr before it is lost to the join.
            if let Some(t) = tasks.first() {
                t.emitter.flight.dump(&format!("spout executor '{component}' failed: {e}"));
            }
            Err(e)
        }
        None => Ok(()),
    }
}

/// Drives one bolt executor: consumes each task's input channel, acks
/// processed tuples, supervises panics (restarting the task from its
/// factory when reliability allows) and terminates on EOS quorum.
fn run_bolt_executor<T: Clone + Send + Sync>(
    mut tasks: Vec<BoltTask<T>>,
    component: String,
    expected: usize,
    factory: crate::topology::BoltFactory<T>,
    acker: Option<Arc<dyn AckSink>>,
    reliability: Option<ReliabilityConfig>,
    tracing: bool,
) -> Result<(), DspsError> {
    // Storm calls prepare() on the worker, not the submitting client;
    // per-task state must live on the executor thread. With durability
    // on, state found on disk (a prior run's snapshot + changelog) is
    // restored before the first tuple — stateful recovery rather than a
    // cold start.
    for t in tasks.iter_mut() {
        t.bolt.prepare(t.ctx);
        if let Some(store) = t.store.as_mut() {
            if let Some((snapshot, changelog)) = store.take_recovered() {
                let detail = format!(
                    "snapshot={} bytes, changelog={} records",
                    snapshot.as_ref().map_or(0, |s| s.len()),
                    changelog.len()
                );
                t.bolt.restore_state(snapshot.as_deref(), &changelog);
                t.emitter.flight.record(
                    FlightKind::Restore,
                    &t.emitter.component,
                    t.emitter.global as i64,
                    detail,
                );
            }
        }
    }
    let single = tasks.len() == 1;
    let mut remaining = tasks.len();
    let mut failure: Option<DspsError> = None;
    // Per-batch (root, combined-id) ack accumulation, reused across batches.
    let mut acks: Vec<(u64, u64)> = Vec::new();
    'outer: while remaining > 0 {
        let mut progressed = false;
        for t in tasks.iter_mut() {
            if t.done {
                continue;
            }
            // Single-task executors block on their channel (the common
            // 1:1 configuration); shared executors drain their tasks
            // pseudo-parallelly and block on a select below when every
            // channel runs dry.
            let budget = 64;
            for step in 0..budget {
                let packet = if single && step == 0 {
                    // Block, but wake in time to service the linger clock
                    // when this task's own output buffers hold tuples.
                    match t.rx.recv_timeout(recv_wait(t.emitter.next_flush_deadline())) {
                        Ok(p) => Some(p),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => {
                            // Upstream died without EOS (hard panic);
                            // terminate the task.
                            t.eos_seen = expected;
                            Some(Packet::Eos)
                        }
                    }
                } else {
                    match t.rx.try_recv() {
                        Ok(p) => Some(p),
                        Err(crossbeam::channel::TryRecvError::Empty) => None,
                        Err(crossbeam::channel::TryRecvError::Disconnected) => {
                            t.eos_seen = expected;
                            Some(Packet::Eos)
                        }
                    }
                };
                let Some(packet) = packet else { break };
                progressed = true;
                match packet {
                    Packet::Data(env) => {
                        if tracing {
                            t.depth.fetch_sub(1, Ordering::Relaxed);
                        }
                        if let Err(e) = process_envelope(
                            t,
                            env,
                            &component,
                            &factory,
                            &acker,
                            reliability,
                            None,
                        ) {
                            failure = Some(e);
                            break 'outer;
                        }
                    }
                    Packet::Batch(batch) => {
                        if tracing {
                            // The gauge counts tuples, not batches: the
                            // whole batch just left the queue.
                            t.depth.fetch_sub(batch.len() as i64, Ordering::Relaxed);
                        }
                        acks.clear();
                        let mut fatal = None;
                        for env in batch {
                            if let Err(e) = process_envelope(
                                t,
                                env,
                                &component,
                                &factory,
                                &acker,
                                reliability,
                                Some(&mut acks),
                            ) {
                                fatal = Some(e);
                                break;
                            }
                        }
                        // One acker call for the whole batch, ids combined
                        // per root. Flushed even when a later tuple was
                        // fatal: the earlier ones really were processed.
                        if let Some(acker) = &acker {
                            acker.xor_batch(&acks);
                        }
                        if let Some(e) = fatal {
                            failure = Some(e);
                            break 'outer;
                        }
                    }
                    Packet::Eos => {
                        t.eos_seen += 1;
                        if t.eos_seen >= expected {
                            let r = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| t.bolt.finish(&mut t.emitter)),
                            );
                            // Final snapshot: a cleanly drained task leaves
                            // its complete end-of-stream state on disk, so
                            // a resubmitted topology resumes from it.
                            if r.is_ok() {
                                if let Err(e) = persist_bolt_state(t, true) {
                                    failure = Some(e);
                                }
                            }
                            t.emitter.send_eos();
                            t.done = true;
                            remaining -= 1;
                            if let Err(e) = r {
                                failure = Some(DspsError::TaskPanicked {
                                    component: component.clone(),
                                    task: t.index,
                                    reason: panic_text(e.as_ref()),
                                });
                                break 'outer;
                            }
                            if failure.is_some() {
                                break 'outer;
                            }
                            break;
                        }
                    }
                }
            }
            // Linger clock for this task's own output buffers.
            t.emitter.flush_if_expired(Instant::now());
        }
        if !progressed && !single {
            // Every channel ran dry: block on a select across the live
            // tasks until a send or upstream disconnect arrives — or until
            // the earliest output-buffer linger deadline needs service —
            // instead of the old 200µs poll-and-yield spin.
            let now = Instant::now();
            let mut wait = Duration::from_millis(50);
            let mut sel = crossbeam::channel::Select::new();
            let mut watched = 0usize;
            for t in tasks.iter() {
                if !t.done {
                    sel.recv(&t.rx);
                    watched += 1;
                }
                if let Some(d) = t.emitter.next_flush_deadline() {
                    wait = wait.min(d.saturating_duration_since(now));
                }
            }
            if watched > 0 && !wait.is_zero() {
                let _ = sel.ready_timeout(wait);
            }
        }
    }
    // On failure, EOS every unfinished task so downstream components
    // terminate instead of waiting forever.
    if failure.is_some() {
        for t in tasks.iter_mut() {
            if !t.done {
                t.emitter.send_eos();
            }
        }
    }
    match failure {
        Some(e) => {
            // Fatal executor death: dump the control-plane history around
            // the failure to stderr before it is lost to the join.
            if let Some(t) = tasks.first() {
                t.emitter.flight.dump(&format!("bolt executor '{component}' failed: {e}"));
            }
            Err(e)
        }
        None => Ok(()),
    }
}

/// Runs one delivery through a bolt task: anchor inheritance, panic
/// containment around `process`, latency and terminal-completion
/// recording, auto-ack, and supervised restart on panic.
///
/// `deferred` selects the ack path: `Some` collects this batch's acks as
/// per-root combined ids (the caller applies them in one
/// [`Acker::xor_batch`] call after the batch); `None` acks directly, the
/// unchanged per-tuple path. A fatal error is returned for the caller to
/// surface; a supervised restart is absorbed here and processing
/// continues with the next delivery.
fn process_envelope<T: Clone + Send + Sync>(
    t: &mut BoltTask<T>,
    env: Envelope<T>,
    component: &str,
    factory: &crate::topology::BoltFactory<T>,
    acker: &Option<Arc<dyn AckSink>>,
    reliability: Option<ReliabilityConfig>,
    deferred: Option<&mut Vec<(u64, u64)>>,
) -> Result<(), DspsError> {
    let Envelope { msg, tid, roots, t0, hop } = env;
    t.emitter.anchors = roots;
    // Outputs inherit the input's root emit time, so the stamp survives
    // multi-hop pipelines.
    t.emitter.t0 = t0;
    // A sampled input yields two spans: the queue wait (send → here,
    // charged against the sender via `other`) and the `process` call. The
    // process span id is reserved before the call so emitted outputs can
    // parent onto it.
    let mut proc_ctx = None;
    if let Some(l) = &mut t.emitter.lineage {
        if let Some(hop) = hop.as_deref() {
            let now = l.sink.now_ns();
            let q = l.sink.record(
                hop.trace,
                hop.parent,
                SpanKind::Queue,
                hop.src,
                hop.sent_ns,
                now.saturating_sub(hop.sent_ns),
            );
            let pid = l.sink.next_id();
            l.active = Some((hop.trace, pid));
            proc_ctx = Some((hop.trace, q, pid, now));
        }
    }
    let start = Instant::now();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        t.bolt.process(msg.into_owned(), &mut t.emitter)
    }));
    t.emitter.counters.record(start.elapsed());
    // Chaos injections fired inside process() (the ChaosBolt wrapper
    // cannot reach the counters): drain the executor-thread tallies.
    let (injected_panics, injected_latency) = crate::fault::take_injections();
    if injected_panics > 0 {
        t.emitter.counters.record_injected_panics(injected_panics);
        t.emitter.flight.record(
            FlightKind::ChaosPanic,
            &t.emitter.component,
            t.emitter.global as i64,
            "injected panic fired in process()",
        );
    }
    if injected_latency > 0 {
        t.emitter.counters.record_injected_latency(injected_latency);
    }
    if r.is_ok() && t.emitter.routes.is_empty() {
        // A terminal bolt ends the tuple's path: in at-most-once tracing
        // mode this is where the end-to-end latency is known (reliability
        // mode records it spout-side on tree completion).
        if let Some(t0) = t.emitter.t0 {
            t.emitter.counters.record_completion(t0.elapsed());
        }
    }
    t.emitter.t0 = None;
    if let Some(l) = &mut t.emitter.lineage {
        if let Some((trace, q, pid, start_ns)) = proc_ctx {
            let end = l.sink.now_ns();
            l.sink.record_with_id(
                pid,
                trace,
                q,
                SpanKind::Process,
                0,
                start_ns,
                end.saturating_sub(start_ns),
            );
            if r.is_ok() && t.emitter.routes.is_empty() && acker.is_none() {
                // Terminal bolt in at-most-once mode: the tree completes
                // here (reliability completes spout-side off the acker).
                l.sink.record(trace, pid, SpanKind::Completion, 0, end, 0);
            }
        }
        l.active = None;
    }
    match r {
        Ok(()) => {
            // Auto-ack: outputs were registered during process() (and
            // registration happens at emit time even when they sit in
            // edge buffers), so acking the input now can only complete a
            // genuinely finished tree.
            if let Some(acker) = acker {
                match deferred {
                    Some(pairs) => {
                        for &root in &t.emitter.anchors {
                            push_combined(pairs, root, tid);
                        }
                    }
                    None => {
                        for &root in &t.emitter.anchors {
                            acker.xor(root, tid);
                        }
                    }
                }
            }
            t.emitter.anchors.clear();
            persist_bolt_state(t, false)
        }
        Err(e) => {
            // Never ack a failed input: its tree stays incomplete and the
            // spout replays it.
            t.emitter.anchors.clear();
            let budget = reliability.map_or(0, |rel| rel.max_task_restarts);
            if t.restarts < budget {
                // Supervisor: rebuild the task from its factory and keep
                // consuming. Replay covers the lost tuple. With durability
                // on, the rebuilt task restores its last persisted state
                // (snapshot + changelog since) instead of starting empty —
                // the poisoned tuple's own changes were never drained, so
                // the restored state is exactly as of the last good tuple.
                let ctx = t.ctx;
                let index = t.index;
                let recovered = match t.store.as_mut() {
                    Some(store) => match store.read_current() {
                        Ok(r) => Some(r),
                        Err(e) => return Err(e),
                    },
                    None => None,
                };
                let rebuilt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut bolt = (*factory)(index);
                    bolt.prepare(ctx);
                    if let Some((snapshot, changelog)) = &recovered {
                        bolt.restore_state(snapshot.as_deref(), changelog);
                    }
                    bolt
                }));
                match rebuilt {
                    Ok(bolt) => {
                        t.bolt = bolt;
                        t.restarts += 1;
                        t.emitter.counters.record_restarted();
                        t.emitter.flight.record(
                            FlightKind::TaskRestart,
                            &t.emitter.component,
                            t.emitter.global as i64,
                            format!(
                                "restart {}/{} after panic: {}{}",
                                t.restarts,
                                budget,
                                panic_text(e.as_ref()),
                                if recovered.is_some() { " (state restored)" } else { "" }
                            ),
                        );
                        Ok(())
                    }
                    Err(e2) => Err(DspsError::TaskPanicked {
                        component: component.to_string(),
                        task: t.index,
                        reason: format!("restart failed: {}", panic_text(e2.as_ref())),
                    }),
                }
            } else if reliability.is_some() {
                Err(DspsError::TaskRestartsExhausted {
                    component: component.to_string(),
                    task: t.index,
                    restarts: t.restarts,
                    reason: panic_text(e.as_ref()),
                })
            } else {
                Err(DspsError::TaskPanicked {
                    component: component.to_string(),
                    task: t.index,
                    reason: panic_text(e.as_ref()),
                })
            }
        }
    }
}

/// Persists a bolt task's state changes: drains the bolt's changelog
/// records into the store, then snapshots (and compacts) when the cadence
/// is due — counted both in changelog records and in processed tuples, so
/// snapshot-only bolts (empty changelogs) still checkpoint periodically.
/// `force_snapshot` is the end-of-stream path: always leave a complete
/// final snapshot behind. No-op without a store.
fn persist_bolt_state<T>(t: &mut BoltTask<T>, force_snapshot: bool) -> Result<(), DspsError> {
    let Some(store) = t.store.as_mut() else { return Ok(()) };
    t.log_scratch.clear();
    t.bolt.drain_changelog(&mut t.log_scratch);
    for record in &t.log_scratch {
        store.append(record)?;
    }
    t.since_snapshot += 1;
    if force_snapshot || store.snapshot_due() || t.since_snapshot >= store.snapshot_every() {
        if let Some(state) = t.bolt.snapshot_state() {
            store.snapshot(&state)?;
            t.emitter.flight.record(
                FlightKind::Snapshot,
                &t.emitter.component,
                t.emitter.global as i64,
                format!("{} bytes{}", state.len(), if force_snapshot { " (final)" } else { "" }),
            );
        }
        t.since_snapshot = 0;
    }
    Ok(())
}

/// Folds `(root, id)` into a batch's ack accumulation, XOR-combining ids
/// that share a root so the batch resolves to one acker entry per root.
/// XOR associativity makes the combined application equivalent to the
/// per-tuple sequence (see [`Acker::xor_batch`]).
fn push_combined(pairs: &mut Vec<(u64, u64)>, root: u64, id: u64) {
    if let Some(p) = pairs.iter_mut().find(|p| p.0 == root) {
        p.1 ^= id;
    } else {
        pairs.push((root, id));
    }
}

/// How long a blocking single-task executor may sleep on its input
/// channel before it must service the emitter's linger clock — the time
/// to the flush deadline, capped at the 50ms heartbeat the runtime always
/// used for shutdown responsiveness.
fn recv_wait(flush_deadline: Option<Instant>) -> Duration {
    const HEARTBEAT: Duration = Duration::from_millis(50);
    match flush_deadline {
        Some(d) => d.saturating_duration_since(Instant::now()).min(HEARTBEAT),
        None => HEARTBEAT,
    }
}

fn panic_text(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Handle to a running topology.
pub struct TopologyHandle {
    threads: Vec<std::thread::JoinHandle<Result<(), DspsError>>>,
    monitor_thread: Option<std::thread::JoinHandle<()>>,
    metrics: Arc<MetricsHub>,
    assignment: Assignment,
    done: Arc<AtomicBool>,
    scrape_addr: Option<std::net::SocketAddr>,
    lineage: Option<Arc<TraceCollector>>,
    flight: Arc<FlightRecorder>,
}

impl TopologyHandle {
    /// The Nimbus-side metrics hub.
    pub fn metrics(&self) -> &Arc<MetricsHub> {
        &self.metrics
    }

    /// The lineage collector, when [`MonitorConfig::lineage`] is on.
    /// Clone the `Arc` before [`join`](TopologyHandle::join) to read
    /// traces after the run.
    pub fn trace_collector(&self) -> Option<&Arc<TraceCollector>> {
        self.lineage.as_ref()
    }

    /// The always-on control-plane flight recorder.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// Drains and takes every retained lineage span (empty when lineage
    /// is off or `export` is false).
    pub fn take_traces(&self) -> Vec<crate::lineage::Span> {
        match &self.lineage {
            Some(c) => c.take_spans(),
            None => Vec::new(),
        }
    }

    /// Where the metrics exposition endpoint is listening, when
    /// [`MonitorConfig::expose`] asked for one — with port 0 this is the
    /// OS-assigned ephemeral port. The endpoint serves until the topology
    /// is joined.
    pub fn scrape_addr(&self) -> Option<std::net::SocketAddr> {
        self.scrape_addr
    }

    /// The executor placement the scheduler computed.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Waits for the topology to drain (all spouts exhausted, all tuples
    /// processed). Returns the first task failure, if any.
    pub fn join(mut self) -> Result<Arc<MetricsHub>, DspsError> {
        let mut first_err = None;
        for t in self.threads.drain(..) {
            match t.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(e) => {
                    first_err = first_err.or(Some(DspsError::TaskPanicked {
                        component: "<executor>".into(),
                        task: 0,
                        reason: panic_text(e.as_ref()),
                    }))
                }
            }
        }
        self.done.store(true, Ordering::Relaxed);
        if let Some(m) = self.monitor_thread.take() {
            let _ = m.join();
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(self.metrics),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::hash_key;
    use crate::topology::{Parallelism, TopologyBuilder};
    use parking_lot::Mutex;

    #[derive(Clone)]
    struct Msg {
        key: u64,
        value: u64,
    }

    struct RangeSpout {
        next: u64,
        end: u64,
    }
    impl Spout<Msg> for RangeSpout {
        fn next(&mut self) -> Option<Msg> {
            if self.next >= self.end {
                return None;
            }
            let v = self.next;
            self.next += 1;
            Some(Msg { key: v % 7, value: v })
        }
    }

    fn sink_bolt(
        collected: Arc<Mutex<Vec<(usize, u64)>>>,
    ) -> impl Fn(usize) -> Box<dyn Bolt<Msg>> + Send + Sync + 'static {
        move |_| {
            struct Sink {
                task: usize,
                collected: Arc<Mutex<Vec<(usize, u64)>>>,
            }
            impl Bolt<Msg> for Sink {
                fn prepare(&mut self, ctx: BoltContext) {
                    self.task = ctx.task_index;
                }
                fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
                    self.collected.lock().push((self.task, msg.value));
                }
            }
            Box::new(Sink { task: 0, collected: collected.clone() })
        }
    }

    fn small_cluster() -> LocalCluster {
        LocalCluster::new(ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 2 }).unwrap()
    }

    #[test]
    fn linear_pipeline_delivers_everything() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(2), |ti| {
                Box::new(RangeSpout { next: ti as u64 * 100, end: ti as u64 * 100 + 50 })
            })
            .add_map_bolt(
                "double",
                Parallelism::of(2),
                vec![("src", Grouping::Shuffle)],
                |m: Msg| Some(Msg { key: m.key, value: m.value * 2 }),
            )
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("double", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let mut values: Vec<u64> = collected.lock().iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        let expected: Vec<u64> =
            (0..50).chain(100..150).map(|v| v * 2).collect();
        assert_eq!(values, expected);
    }

    #[test]
    fn fields_grouping_keeps_keys_on_one_task() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 200 }))
            .add_bolt(
                "sink",
                Parallelism::of(4),
                vec![("src", Grouping::fields(|m: &Msg| hash_key(&m.key)))],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        // Every key must have landed on exactly one task.
        let got = collected.lock();
        let mut key_task: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for &(task, value) in got.iter() {
            let key = value % 7;
            let prev = key_task.insert(key, task);
            if let Some(p) = prev {
                assert_eq!(p, task, "key {key} visited two tasks");
            }
        }
        assert_eq!(got.len(), 200);
    }

    #[test]
    fn all_grouping_replicates() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 10 }))
            .add_bolt(
                "sink",
                Parallelism::of(3),
                vec![("src", Grouping::All)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        assert_eq!(collected.lock().len(), 30, "each of 3 tasks sees all 10");
    }

    #[test]
    fn direct_grouping_routes_by_task_index() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        struct Router;
        impl Bolt<Msg> for Router {
            fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
                // Route by key directly: key k → task k (keys are 0..7 and
                // the sink has 7 tasks, so every target is in range).
                e.emit_direct(msg.key as usize, msg);
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 70 }))
            .add_bolt("router", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
                Box::new(Router)
            })
            .add_bolt(
                "sink",
                Parallelism::of(7),
                vec![("router", Grouping::Direct)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let got = collected.lock();
        assert_eq!(got.len(), 70);
        for &(task, value) in got.iter() {
            assert_eq!(task, (value % 7) as usize, "value {value} misrouted");
        }
    }

    #[test]
    fn out_of_range_direct_emissions_are_counted_not_wrapped() {
        // Regression: `emit_direct(task, ..)` used to wrap out-of-range
        // targets as `task % count`, silently aliasing the tuple onto
        // another task. It must now be dropped and counted `misrouted`.
        let collected = Arc::new(Mutex::new(Vec::new()));
        struct BuggyRouter;
        impl Bolt<Msg> for BuggyRouter {
            fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
                // Values ≥ 60 target a task index past the sink's range.
                let task = if msg.value >= 60 { 7 + msg.key as usize } else { msg.key as usize };
                e.emit_direct(task, msg);
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 70 }))
            .add_bolt("router", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
                Box::new(BuggyRouter)
            })
            .add_bolt(
                "sink",
                Parallelism::of(7),
                vec![("router", Grouping::Direct)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let metrics = small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let got = collected.lock();
        assert_eq!(got.len(), 60, "out-of-range targets must not be delivered anywhere");
        for &(task, value) in got.iter() {
            assert!(value < 60);
            assert_eq!(task, (value % 7) as usize, "in-range routing unchanged");
        }
        let totals = metrics.totals();
        let router = totals.iter().find(|c| c.component == "router").unwrap();
        assert_eq!(router.misrouted, 10, "each out-of-range direct emission is counted");
        assert_eq!(router.emitted, 60, "misrouted deliveries are not emissions");
    }

    #[test]
    fn batched_pipeline_delivers_everything_in_edge_order() {
        // The micro-batched data plane must deliver the same tuples in the
        // same per-edge order as the per-tuple plane (shuffle keeps a
        // deterministic round-robin, so with one sink task the full
        // sequence is reproducible).
        let run = |batch: Option<BatchConfig>| {
            let collected = Arc::new(Mutex::new(Vec::new()));
            let t = TopologyBuilder::new("t")
                .add_spout("src", Parallelism::of(1), |_| {
                    Box::new(RangeSpout { next: 0, end: 500 })
                })
                .add_map_bolt(
                    "double",
                    Parallelism::of(1),
                    vec![("src", Grouping::Shuffle)],
                    |m: Msg| Some(Msg { key: m.key, value: m.value * 2 }),
                )
                .add_bolt(
                    "sink",
                    Parallelism::of(1),
                    vec![("double", Grouping::Shuffle)],
                    sink_bolt(collected.clone()),
                )
                .build()
                .unwrap();
            small_cluster()
                .submit(t, RuntimeConfig { batch, ..RuntimeConfig::default() })
                .unwrap()
                .join()
                .unwrap();
            let got: Vec<u64> = collected.lock().iter().map(|&(_, v)| v).collect();
            got
        };
        let per_tuple = run(None);
        let batched = run(Some(BatchConfig::default()));
        assert_eq!(per_tuple, batched, "batching must not reorder or lose tuples");
        assert_eq!(batched.len(), 500);
    }

    #[test]
    fn linger_flushes_partial_batches() {
        // max_batch 1000 never fills, so only the linger clock can ship
        // the first two tuples. max_pending = 2 throttles the spout until
        // they are acked — acks that can only arrive after a flush — so a
        // broken linger clock would stall the run into its 2s ack-timeout
        // replay path and blow the timing assertion.
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 4 }))
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("src", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let started = Instant::now();
        let metrics = small_cluster()
            .submit(
                t,
                RuntimeConfig {
                    batch: Some(BatchConfig {
                        max_batch: 1000,
                        max_linger: Duration::from_millis(5),
                    }),
                    reliability: Some(ReliabilityConfig {
                        ack_timeout: Duration::from_secs(2),
                        max_pending: 2,
                        ..ReliabilityConfig::default()
                    }),
                    ..RuntimeConfig::default()
                },
            )
            .unwrap()
            .join()
            .unwrap();
        let elapsed = started.elapsed();
        let mut values: Vec<u64> = collected.lock().iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        assert_eq!(values, vec![0, 1, 2, 3]);
        let src = metrics.totals().into_iter().find(|c| c.component == "src").unwrap();
        assert_eq!(src.acked, 4);
        assert_eq!(src.replayed, 0, "linger flush must beat the ack timeout");
        assert!(
            elapsed < Duration::from_millis(1500),
            "partial batches should flush on linger, not on replay; took {elapsed:?}"
        );
    }

    #[test]
    fn tasks_sharing_an_executor_all_run() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 100 }))
            .add_bolt(
                "sink",
                // 4 tasks on 2 executors — Figure 1's SpeedCalculator case.
                Parallelism { tasks: 4, executors: 2 },
                vec![("src", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let got = collected.lock();
        assert_eq!(got.len(), 100);
        let tasks: std::collections::HashSet<usize> = got.iter().map(|&(t, _)| t).collect();
        assert_eq!(tasks.len(), 4, "all four tasks processed something");
    }

    #[test]
    fn finish_hook_flushes_buffered_state() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        struct Batcher {
            buf: Vec<Msg>,
        }
        impl Bolt<Msg> for Batcher {
            fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
                self.buf.push(msg);
            }
            fn finish(&mut self, e: &mut dyn Emitter<Msg>) {
                let total: u64 = self.buf.iter().map(|m| m.value).sum();
                e.emit(Msg { key: 0, value: total });
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 1, end: 11 }))
            .add_bolt("batch", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
                Box::new(Batcher { buf: Vec::new() })
            })
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("batch", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        assert_eq!(collected.lock().as_slice(), &[(0usize, 55u64)]);
    }

    #[test]
    fn bolt_panic_surfaces_as_error() {
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 10 }))
            .add_map_bolt(
                "explode",
                Parallelism::of(1),
                vec![("src", Grouping::Shuffle)],
                |m: Msg| {
                    if m.value == 5 {
                        panic!("boom on 5");
                    }
                    Some(m)
                },
            )
            .build()
            .unwrap();
        let err = small_cluster().submit(t, RuntimeConfig::default()).unwrap().join();
        match err {
            Err(DspsError::TaskPanicked { component, reason, .. }) => {
                assert_eq!(component, "explode");
                assert!(reason.contains("boom"));
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    fn spout_panic_reports_global_task_index() {
        // Regression: the error used to carry the executor-local loop
        // index. 3 tasks on 2 executors pack as [[0, 2], [1]]; task 2 is
        // the *second* task of executor 0, so the buggy code reported 1.
        struct MaybePanicSpout {
            task: usize,
        }
        impl Spout<Msg> for MaybePanicSpout {
            fn next(&mut self) -> Option<Msg> {
                if self.task == 2 {
                    panic!("spout task 2 exploded");
                }
                None
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism { tasks: 3, executors: 2 }, |ti| {
                Box::new(MaybePanicSpout { task: ti })
            })
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("src", Grouping::Shuffle)],
                sink_bolt(Arc::new(Mutex::new(Vec::new()))),
            )
            .build()
            .unwrap();
        let err = small_cluster().submit(t, RuntimeConfig::default()).unwrap().join();
        match err {
            Err(DspsError::TaskPanicked { component, task, .. }) => {
                assert_eq!(component, "src");
                assert_eq!(task, 2, "error must name the task, not the loop index");
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    fn bolt_panic_reports_global_task_index() {
        // Same regression on the bolt path: 3 sink tasks on 2 executors,
        // All grouping so task 2 (executor-local index 1) sees data.
        struct MaybePanicBolt {
            task: usize,
        }
        impl Bolt<Msg> for MaybePanicBolt {
            fn process(&mut self, _msg: Msg, _e: &mut dyn Emitter<Msg>) {
                if self.task == 2 {
                    panic!("bolt task 2 exploded");
                }
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 5 }))
            .add_bolt(
                "sink",
                Parallelism { tasks: 3, executors: 2 },
                vec![("src", Grouping::All)],
                |ti| Box::new(MaybePanicBolt { task: ti }),
            )
            .build()
            .unwrap();
        let err = small_cluster().submit(t, RuntimeConfig::default()).unwrap().join();
        match err {
            Err(DspsError::TaskPanicked { component, task, .. }) => {
                assert_eq!(component, "sink");
                assert_eq!(task, 2, "error must name the task, not the loop index");
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    fn sends_to_dead_tasks_count_as_dropped() {
        // Regression: sends to a closed channel used to vanish silently.
        // The sink dies on its first tuple; with a tiny channel the spout
        // keeps emitting into a torn-down channel and must count it.
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 100 }))
            .add_map_bolt(
                "sink",
                Parallelism::of(1),
                vec![("src", Grouping::Shuffle)],
                |_m: Msg| panic!("dies immediately"),
            )
            .build()
            .unwrap();
        let cfg = RuntimeConfig { channel_capacity: 4, ..RuntimeConfig::default() };
        let handle = small_cluster().submit(t, cfg).unwrap();
        let metrics = handle.metrics().clone();
        assert!(handle.join().is_err(), "sink panic must surface");
        let totals = metrics.totals();
        let src = totals.iter().find(|c| c.component == "src").unwrap();
        assert!(
            src.dropped > 0,
            "sends into the dead sink's channel must be counted, got {totals:?}"
        );
    }

    #[test]
    fn emit_without_route_is_not_counted() {
        // Regression: a terminal bolt's emit used to bump the emitted
        // counter even though the message went nowhere.
        struct Forwarder;
        impl Bolt<Msg> for Forwarder {
            fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
                e.emit(msg.clone());
                e.emit_direct(0, msg); // no direct edge either
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 25 }))
            .add_bolt("term", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
                Box::new(Forwarder)
            })
            .build()
            .unwrap();
        let metrics = small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let totals = metrics.totals();
        let term = totals.iter().find(|c| c.component == "term").unwrap();
        assert_eq!(term.emitted, 0, "routeless emits must not count as emissions");
        let src = totals.iter().find(|c| c.component == "src").unwrap();
        assert_eq!(src.emitted, 25, "routed emits still count");
    }

    #[test]
    fn finish_panic_still_sends_eos_downstream() {
        // A panic in finish() fails the topology but must not strand the
        // downstream component waiting for EOS (this test would hang).
        let collected = Arc::new(Mutex::new(Vec::new()));
        struct FlushBomb;
        impl Bolt<Msg> for FlushBomb {
            fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
                e.emit(msg);
            }
            fn finish(&mut self, _e: &mut dyn Emitter<Msg>) {
                panic!("flush failed");
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 10 }))
            .add_bolt("bomb", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
                Box::new(FlushBomb)
            })
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("bomb", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let err = small_cluster().submit(t, RuntimeConfig::default()).unwrap().join();
        match err {
            Err(DspsError::TaskPanicked { component, reason, .. }) => {
                assert_eq!(component, "bomb");
                assert!(reason.contains("flush failed"));
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
        assert_eq!(collected.lock().len(), 10, "all pre-finish tuples delivered");
    }

    #[test]
    fn upstream_hard_death_terminates_single_task_bolt() {
        // A bolt whose prepare() panics kills its executor thread without
        // sending EOS; the downstream bolt must detect the disconnect on
        // its blocking receive path and terminate (else this test hangs).
        struct PreparePanic;
        impl Bolt<Msg> for PreparePanic {
            fn prepare(&mut self, _ctx: BoltContext) {
                panic!("prepare failed");
            }
            fn process(&mut self, _msg: Msg, _e: &mut dyn Emitter<Msg>) {}
        }
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 10 }))
            .add_bolt("bad", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
                Box::new(PreparePanic)
            })
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("bad", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let err = small_cluster().submit(t, RuntimeConfig::default()).unwrap().join();
        assert!(err.is_err(), "the dead executor must surface an error");
    }

    #[test]
    fn upstream_hard_death_terminates_shared_executor_bolt() {
        // Same, but the downstream tasks share one executor and sit on
        // the polling (try_recv) path.
        struct PreparePanic;
        impl Bolt<Msg> for PreparePanic {
            fn prepare(&mut self, _ctx: BoltContext) {
                panic!("prepare failed");
            }
            fn process(&mut self, _msg: Msg, _e: &mut dyn Emitter<Msg>) {}
        }
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 10 }))
            .add_bolt("bad", Parallelism::of(1), vec![("src", Grouping::Shuffle)], |_| {
                Box::new(PreparePanic)
            })
            .add_bolt(
                "sink",
                Parallelism { tasks: 2, executors: 1 },
                vec![("bad", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let err = small_cluster().submit(t, RuntimeConfig::default()).unwrap().join();
        assert!(err.is_err(), "the dead executor must surface an error");
    }

    #[test]
    fn reliability_happy_path_acks_everything() {
        // No faults: at-least-once mode must deliver exactly once, ack
        // every root and terminate cleanly.
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(2), |ti| {
                Box::new(RangeSpout { next: ti as u64 * 100, end: ti as u64 * 100 + 50 })
            })
            .add_map_bolt(
                "double",
                Parallelism::of(2),
                vec![("src", Grouping::Shuffle)],
                |m: Msg| Some(Msg { key: m.key, value: m.value * 2 }),
            )
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("double", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let cfg = RuntimeConfig {
            reliability: Some(ReliabilityConfig {
                ack_timeout: Duration::from_secs(5),
                ..ReliabilityConfig::default()
            }),
            ..RuntimeConfig::default()
        };
        let metrics = small_cluster().submit(t, cfg).unwrap().join().unwrap();
        let mut values: Vec<u64> = collected.lock().iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        let expected: Vec<u64> = (0..50).chain(100..150).map(|v| v * 2).collect();
        assert_eq!(values, expected, "exactly-once on the failure-free path");
        let totals = metrics.totals();
        let src = totals.iter().find(|c| c.component == "src").unwrap();
        assert_eq!(src.acked, 100, "every root fully acked");
        assert_eq!(src.failed, 0);
        assert_eq!(src.replayed, 0);
    }

    #[test]
    fn reliability_supervisor_restarts_poisoned_bolt() {
        // The bolt panics the first time it sees value 7; the supervisor
        // must rebuild it and the spout must replay the lost tuple.
        let tripped = Arc::new(AtomicBool::new(false));
        let collected = Arc::new(Mutex::new(Vec::new()));
        struct OnceBomb {
            tripped: Arc<AtomicBool>,
        }
        impl Bolt<Msg> for OnceBomb {
            fn process(&mut self, msg: Msg, e: &mut dyn Emitter<Msg>) {
                if msg.value == 7 && !self.tripped.swap(true, Ordering::SeqCst) {
                    panic!("first 7 is fatal");
                }
                e.emit(msg);
            }
        }
        let tripped_f = tripped.clone();
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 20 }))
            .add_bolt("bomb", Parallelism::of(1), vec![("src", Grouping::Shuffle)], move |_| {
                Box::new(OnceBomb { tripped: tripped_f.clone() })
            })
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("bomb", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let cfg = RuntimeConfig {
            reliability: Some(ReliabilityConfig {
                ack_timeout: Duration::from_millis(200),
                max_retries: 10,
                backoff: 1.5,
                ..ReliabilityConfig::default()
            }),
            ..RuntimeConfig::default()
        };
        let metrics = small_cluster().submit(t, cfg).unwrap().join().unwrap();
        let mut values: Vec<u64> = collected.lock().iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values, (0..20).collect::<Vec<u64>>(), "replay healed the lost tuple");
        let totals = metrics.totals();
        let src = totals.iter().find(|c| c.component == "src").unwrap();
        assert!(src.replayed >= 1, "the poisoned tuple must have been replayed");
        assert_eq!(src.failed, 0);
        let bomb = totals.iter().find(|c| c.component == "bomb").unwrap();
        assert_eq!(bomb.restarted, 1, "the supervisor restarted the bolt once");
    }

    #[test]
    fn restarts_exhausted_fails_topology() {
        // A bolt that always panics burns through its restart budget and
        // must surface TaskRestartsExhausted, not hang or loop forever.
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 10 }))
            .add_map_bolt(
                "explode",
                Parallelism::of(1),
                vec![("src", Grouping::Shuffle)],
                |_m: Msg| panic!("always fatal"),
            )
            .build()
            .unwrap();
        let cfg = RuntimeConfig {
            reliability: Some(ReliabilityConfig {
                ack_timeout: Duration::from_millis(100),
                max_retries: 2,
                max_task_restarts: 2,
                ..ReliabilityConfig::default()
            }),
            ..RuntimeConfig::default()
        };
        let err = small_cluster().submit(t, cfg).unwrap().join();
        match err {
            Err(DspsError::TaskRestartsExhausted { component, restarts, .. }) => {
                assert_eq!(component, "explode");
                assert_eq!(restarts, 2);
            }
            other => panic!("expected TaskRestartsExhausted, got {other:?}"),
        }
    }

    #[test]
    fn metrics_capture_throughput() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 500 }))
            .add_bolt(
                "sink",
                Parallelism::of(2),
                vec![("src", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let metrics =
            small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let totals = metrics.totals();
        let sink = totals.iter().find(|c| c.component == "sink").unwrap();
        assert_eq!(sink.throughput, 500);
        let src = totals.iter().find(|c| c.component == "src").unwrap();
        assert_eq!(src.emitted, 500);
    }

    #[test]
    fn monitor_thread_samples_windows() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        struct SlowSpout {
            n: u64,
        }
        impl Spout<Msg> for SlowSpout {
            fn next(&mut self) -> Option<Msg> {
                if self.n == 0 {
                    return None;
                }
                self.n -= 1;
                std::thread::sleep(Duration::from_millis(1));
                Some(Msg { key: 0, value: self.n })
            }
        }
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(SlowSpout { n: 100 }))
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("src", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let cfg = RuntimeConfig {
            monitor: Some(MonitorConfig {
                window: Duration::from_millis(25),
                ..MonitorConfig::default()
            }),
            ..RuntimeConfig::default()
        };
        let metrics = small_cluster().submit(t, cfg).unwrap().join().unwrap();
        assert!(
            !metrics.history().is_empty(),
            "monitor thread must have sampled at least one window"
        );
    }

    #[test]
    fn spout_counters_keep_emission_and_processing_apart() {
        // Regression: spouts used to record a zero-latency "processing"
        // event per emitted tuple, so their throughput and avg_latency
        // mixed emission accounting with bolt processing accounting.
        let collected = Arc::new(Mutex::new(Vec::new()));
        let t = TopologyBuilder::new("t")
            .add_spout("src", Parallelism::of(1), |_| Box::new(RangeSpout { next: 0, end: 100 }))
            .add_bolt(
                "sink",
                Parallelism::of(1),
                vec![("src", Grouping::Shuffle)],
                sink_bolt(collected.clone()),
            )
            .build()
            .unwrap();
        let metrics =
            small_cluster().submit(t, RuntimeConfig::default()).unwrap().join().unwrap();
        let totals = metrics.totals();
        let src = totals.iter().find(|c| c.component == "src").unwrap();
        assert_eq!(src.emitted, 100, "spout work shows up as emissions");
        assert_eq!(src.throughput, 0, "spouts process nothing");
        assert_eq!(src.avg_latency, None, "no fake zero-latency samples");
        let sink = totals.iter().find(|c| c.component == "sink").unwrap();
        assert_eq!(sink.throughput, 100, "bolt processing is unaffected");
    }

    #[test]
    fn next_window_deadline_uses_an_absolute_grid() {
        let w = Duration::from_millis(40);
        // Normal cadence: the next grid point after `elapsed`.
        assert_eq!(next_window_deadline(Duration::ZERO, w), Duration::from_millis(40));
        assert_eq!(next_window_deadline(Duration::from_millis(39), w), Duration::from_millis(40));
        // A sample that ran 1 ms long does NOT push the next deadline out
        // by 40 ms from "now" — the grid absorbs the overrun.
        assert_eq!(next_window_deadline(Duration::from_millis(41), w), Duration::from_millis(80));
        // A sample slower than the window skips the missed grid points.
        assert_eq!(next_window_deadline(Duration::from_millis(123), w), Duration::from_millis(160));
        // Landing exactly on a grid point schedules the *next* one.
        assert_eq!(next_window_deadline(Duration::from_millis(80), w), Duration::from_millis(120));
    }
}
