//! Executor → worker process → node assignment.
//!
//! Storm's default scheduler assigns a topology's executors to its worker
//! processes round-robin, and worker processes occupy *slots* on cluster
//! nodes (Section 2.1.1). Following [35] (cited in Section 2.2), the
//! number of worker processes should equal the number of nodes to minimize
//! inter-process traffic — the paper adopts that policy and so does
//! [`ClusterSpec::default_workers`].

use crate::error::DspsError;

/// Description of the physical (simulated) cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Number of worker nodes (the paper's VMs; Nimbus runs elsewhere).
    pub nodes: usize,
    /// Worker slots per node.
    pub slots_per_node: usize,
    /// CPU cores per node (1 in the paper's VMs); used by the simulator's
    /// contention model and surfaced here for reporting.
    pub cores_per_node: usize,
}

impl ClusterSpec {
    /// Validates the spec.
    pub fn validate(&self) -> Result<(), DspsError> {
        if self.nodes == 0 || self.slots_per_node == 0 || self.cores_per_node == 0 {
            return Err(DspsError::InvalidCluster {
                reason: "nodes, slots_per_node and cores_per_node must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// The paper's policy: one worker process per node.
    pub fn default_workers(&self) -> usize {
        self.nodes
    }

    /// Total worker slots.
    pub fn total_slots(&self) -> usize {
        self.nodes * self.slots_per_node
    }
}

impl Default for ClusterSpec {
    /// The paper's evaluation cluster: 7 single-core VMs (Section 5).
    fn default() -> Self {
        ClusterSpec { nodes: 7, slots_per_node: 1, cores_per_node: 1 }
    }
}

/// One executor's placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorPlacement {
    /// Component this executor belongs to.
    pub component: String,
    /// Executor index within the component.
    pub executor_index: usize,
    /// Task indices driven by this executor.
    pub tasks: Vec<usize>,
    /// Worker process hosting the executor.
    pub worker: usize,
    /// Node hosting that worker.
    pub node: usize,
}

/// A computed assignment of a topology onto a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Every executor's placement.
    pub placements: Vec<ExecutorPlacement>,
    /// Worker processes used.
    pub workers: usize,
    /// Cluster nodes available.
    pub nodes: usize,
}

impl Assignment {
    /// Executors per node, indexed by node.
    pub fn executors_per_node(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes];
        for p in &self.placements {
            counts[p.node] += 1;
        }
        counts
    }

    /// Placements of one component.
    pub fn component_placements(&self, component: &str) -> Vec<&ExecutorPlacement> {
        self.placements.iter().filter(|p| p.component == component).collect()
    }
}

/// Distributes a component's `tasks` over its `executors` as evenly as
/// possible, in order — Figure 1's task→executor packing.
///
/// `executors == 0` yields an empty packing (no executors to fill) rather
/// than dividing by zero; topology validation rejects the configuration
/// long before scheduling, but this function is public and must hold up
/// on its own.
pub fn pack_tasks(tasks: usize, executors: usize) -> Vec<Vec<usize>> {
    if executors == 0 {
        return Vec::new();
    }
    let mut out = vec![Vec::new(); executors];
    for t in 0..tasks {
        out[t % executors].push(t);
    }
    out
}

/// Assigns executors to workers round-robin and workers to nodes
/// round-robin — Storm's default scheduler.
///
/// `components` lists `(name, tasks, executors)` in topology order.
pub fn assign(
    components: &[(&str, usize, usize)],
    cluster: ClusterSpec,
    workers: usize,
) -> Result<Assignment, DspsError> {
    cluster.validate()?;
    if workers == 0 {
        return Err(DspsError::InvalidCluster { reason: "workers must be at least 1".into() });
    }
    if workers > cluster.total_slots() {
        return Err(DspsError::InsufficientSlots {
            requested: workers,
            available: cluster.total_slots(),
        });
    }
    let mut placements = Vec::new();
    let mut next_worker = 0usize;
    for &(name, tasks, executors) in components {
        let packed = pack_tasks(tasks, executors);
        for (ei, task_list) in packed.into_iter().enumerate() {
            let worker = next_worker % workers;
            next_worker += 1;
            placements.push(ExecutorPlacement {
                component: name.to_string(),
                executor_index: ei,
                tasks: task_list,
                worker,
                // Workers fill node slots round-robin: worker w sits on
                // node w % nodes (one worker per node when workers ==
                // nodes, the paper's configuration).
                node: worker % cluster.nodes,
            });
        }
    }
    Ok(Assignment { placements, workers, nodes: cluster.nodes })
}

/// [`assign`] with per-component worker pins: every executor of a pinned
/// component lands on its pinned worker; unpinned components round-robin
/// over the remaining rotation exactly as in [`assign`].
///
/// The multi-process runtime ([`net`](crate::net)) uses this to pin spout
/// components (and with them the acker's registration path) to the
/// coordinator process. With an empty `pins` map the result is identical
/// to [`assign`].
pub fn assign_pinned(
    components: &[(&str, usize, usize)],
    cluster: ClusterSpec,
    workers: usize,
    pins: &std::collections::HashMap<String, usize>,
) -> Result<Assignment, DspsError> {
    let mut assignment = assign(components, cluster, workers)?;
    for (component, &worker) in pins {
        if worker >= workers {
            return Err(DspsError::InvalidCluster {
                reason: format!(
                    "component {component} pinned to worker {worker} but only {workers} workers exist"
                ),
            });
        }
        for p in assignment.placements.iter_mut().filter(|p| &p.component == component) {
            p.worker = worker;
            p.node = worker % cluster.nodes;
        }
    }
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_tasks_balances() {
        assert_eq!(pack_tasks(4, 2), vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(pack_tasks(3, 3), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(pack_tasks(5, 2), vec![vec![0, 2, 4], vec![1, 3]]);
    }

    #[test]
    fn pack_tasks_zero_executors_yields_empty_packing() {
        // Regression: this used to panic with a division by zero.
        assert_eq!(pack_tasks(5, 0), Vec::<Vec<usize>>::new());
        assert_eq!(pack_tasks(0, 0), Vec::<Vec<usize>>::new());
        assert_eq!(pack_tasks(0, 2), vec![Vec::<usize>::new(), Vec::new()]);
    }

    #[test]
    fn round_robin_assignment_spreads_engines_evenly() {
        // The paper's concern: each node must get about the same number of
        // Esper engines. 8 engine executors over 4 workers on 4 nodes.
        let cluster = ClusterSpec { nodes: 4, slots_per_node: 1, cores_per_node: 1 };
        let a = assign(&[("esper", 8, 8)], cluster, 4).unwrap();
        assert_eq!(a.executors_per_node(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn mixed_components_interleave() {
        let cluster = ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 1 };
        let a = assign(&[("spout", 2, 2), ("bolt", 3, 3)], cluster, 2).unwrap();
        assert_eq!(a.placements.len(), 5);
        // Round-robin: workers alternate 0,1,0,1,0.
        let workers: Vec<usize> = a.placements.iter().map(|p| p.worker).collect();
        assert_eq!(workers, vec![0, 1, 0, 1, 0]);
        assert_eq!(a.component_placements("bolt").len(), 3);
    }

    #[test]
    fn insufficient_slots_detected() {
        let cluster = ClusterSpec { nodes: 2, slots_per_node: 1, cores_per_node: 1 };
        let err = assign(&[("s", 1, 1)], cluster, 3);
        assert!(matches!(err, Err(DspsError::InsufficientSlots { .. })));
    }

    #[test]
    fn invalid_cluster_rejected() {
        let bad = ClusterSpec { nodes: 0, slots_per_node: 1, cores_per_node: 1 };
        assert!(bad.validate().is_err());
        assert!(assign(&[], bad, 1).is_err());
        let ok = ClusterSpec::default();
        assert!(matches!(
            assign(&[], ok, 0),
            Err(DspsError::InvalidCluster { .. })
        ));
    }

    #[test]
    fn pinned_assignment_overrides_only_pinned_components() {
        let cluster = ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 1 };
        let comps = [("spout", 2, 2), ("bolt", 3, 3)];
        let mut pins = std::collections::HashMap::new();
        pins.insert("spout".to_string(), 0usize);
        let pinned = assign_pinned(&comps, cluster, 2, &pins).unwrap();
        for p in pinned.component_placements("spout") {
            assert_eq!(p.worker, 0);
        }
        // Unpinned components keep the plain round-robin placement.
        let plain = assign(&comps, cluster, 2).unwrap();
        assert_eq!(pinned.component_placements("bolt"), plain.component_placements("bolt"));
        // Empty pins: identical to assign().
        let no_pins = assign_pinned(&comps, cluster, 2, &Default::default()).unwrap();
        assert_eq!(no_pins, plain);
        // A pin past the worker count is a config error.
        pins.insert("spout".to_string(), 9);
        assert!(matches!(
            assign_pinned(&comps, cluster, 2, &pins),
            Err(DspsError::InvalidCluster { .. })
        ));
    }

    #[test]
    fn paper_default_cluster() {
        let c = ClusterSpec::default();
        assert_eq!(c.nodes, 7);
        assert_eq!(c.default_workers(), 7);
    }
}
