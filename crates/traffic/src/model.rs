//! The bus trace data model (Table 1 of the paper) and its enrichment
//! (Section 3.1).

use serde::{Deserialize, Serialize};
use tms_geo::GeoPoint;

/// Milliseconds in an hour.
pub const HOUR_MS: u64 = 3_600_000;
/// Milliseconds in a day.
pub const DAY_MS: u64 = 24 * HOUR_MS;

/// One raw bus report — the fields of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusTrace {
    /// Time of the measurement, in milliseconds since the simulation
    /// epoch (midnight of day 0).
    pub timestamp_ms: u64,
    /// The line of the bus.
    pub line_id: u32,
    /// Travel direction flag.
    pub direction: bool,
    /// GPS position of the bus.
    pub position: GeoPoint,
    /// Seconds the bus is **behind** schedule (the dataset stores "ahead
    /// of schedule"; we store the negated value so bigger = worse, which
    /// is how every rule in the paper reads it).
    pub delay_s: f64,
    /// Whether the vehicle reports congestion.
    pub congestion: bool,
    /// Id of the closest bus stop as reported by the vehicle (noisy; the
    /// off-line component recomputes stops from scratch, Section 4.1.2).
    pub reported_stop: Option<u32>,
    /// Whether the vehicle reported being at a stop with this trace.
    pub at_stop: bool,
    /// Distinguishes different vehicles.
    pub vehicle_id: u32,
}

impl BusTrace {
    /// Hour of day of the measurement, `0..24`.
    pub fn hour_of_day(&self) -> u8 {
        ((self.timestamp_ms % DAY_MS) / HOUR_MS) as u8
    }

    /// Day index since the simulation epoch.
    pub fn day_index(&self) -> u32 {
        (self.timestamp_ms / DAY_MS) as u32
    }
}

/// A trace after the PreProcess / AreaTracker / BusStopsTracker bolts ran
/// (Figure 8): speed and actual delay computed, spatial ids attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnrichedTrace {
    /// The raw report.
    pub trace: BusTrace,
    /// Speed over ground since the previous report of this vehicle, km/h.
    /// `None` for a vehicle's first report.
    pub speed_kmh: Option<f64>,
    /// Change of the delay value since the previous report ("actual
    /// delay" in Section 3.1). `None` for a vehicle's first report.
    pub actual_delay_s: Option<f64>,
    /// Region ids (as `R<id>` strings) of the quadtree areas containing
    /// the position, root first — attached by the AreaTracker bolt.
    pub areas: Vec<String>,
    /// Recomputed closest bus stop (as an `S<id>` string) — attached by
    /// the BusStopsTracker bolt.
    pub bus_stop: Option<String>,
}

/// The monitorable attributes of the generic rule template (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// The reported schedule delay.
    Delay,
    /// The per-report change in delay.
    ActualDelay,
    /// The computed speed.
    Speed,
    /// Delay, gated on the congestion flag (the rule only counts delayed
    /// reports that also flag congestion).
    DelayAndCongestion,
}

impl Attribute {
    /// All attributes, in Table 6 order.
    pub const ALL: [Attribute; 4] =
        [Attribute::Delay, Attribute::ActualDelay, Attribute::Speed, Attribute::DelayAndCongestion];

    /// Stable name used in table names, EPL fields and reports.
    pub fn name(self) -> &'static str {
        match self {
            Attribute::Delay => "delay",
            Attribute::ActualDelay => "actual_delay",
            Attribute::Speed => "speed",
            Attribute::DelayAndCongestion => "delay_congestion",
        }
    }

    /// Parses a stable name.
    pub fn parse(s: &str) -> Option<Attribute> {
        Attribute::ALL.into_iter().find(|a| a.name() == s)
    }

    /// Extracts the attribute's value from an enriched trace; `None` when
    /// the trace cannot provide it (first report, or the congestion gate
    /// is closed).
    pub fn value(self, t: &EnrichedTrace) -> Option<f64> {
        match self {
            Attribute::Delay => Some(t.trace.delay_s),
            Attribute::ActualDelay => t.actual_delay_s,
            Attribute::Speed => t.speed_kmh,
            Attribute::DelayAndCongestion => t.trace.congestion.then_some(t.trace.delay_s),
        }
    }

    /// Whether "abnormal" means *exceeding* the threshold (delay) or
    /// *falling below* it (speed: congestion shows as low speed,
    /// Section 3.1).
    pub fn abnormal_is_high(self) -> bool {
        !matches!(self, Attribute::Speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_geo::GeoPoint;

    fn trace(ts: u64) -> BusTrace {
        BusTrace {
            timestamp_ms: ts,
            line_id: 46,
            direction: true,
            position: GeoPoint::new_unchecked(53.33, -6.26),
            delay_s: 120.0,
            congestion: false,
            reported_stop: Some(7),
            at_stop: false,
            vehicle_id: 33001,
        }
    }

    fn enriched(ts: u64) -> EnrichedTrace {
        EnrichedTrace {
            trace: trace(ts),
            speed_kmh: Some(24.0),
            actual_delay_s: Some(10.0),
            areas: vec!["R0".into(), "R3".into()],
            bus_stop: Some("S5".into()),
        }
    }

    #[test]
    fn hour_and_day_derivation() {
        let t = trace(6 * HOUR_MS + 30 * 60_000);
        assert_eq!(t.hour_of_day(), 6);
        assert_eq!(t.day_index(), 0);
        // 02:00 on day 1 — the tail of day 0's service window.
        let t = trace(DAY_MS + 2 * HOUR_MS);
        assert_eq!(t.hour_of_day(), 2);
        assert_eq!(t.day_index(), 1);
    }

    #[test]
    fn attribute_values() {
        let e = enriched(0);
        assert_eq!(Attribute::Delay.value(&e), Some(120.0));
        assert_eq!(Attribute::ActualDelay.value(&e), Some(10.0));
        assert_eq!(Attribute::Speed.value(&e), Some(24.0));
        // Congestion flag is off → gated attribute yields nothing.
        assert_eq!(Attribute::DelayAndCongestion.value(&e), None);
        let mut congested = enriched(0);
        congested.trace.congestion = true;
        assert_eq!(Attribute::DelayAndCongestion.value(&congested), Some(120.0));
        // First report: no derived attributes.
        let mut first = enriched(0);
        first.speed_kmh = None;
        first.actual_delay_s = None;
        assert_eq!(Attribute::Speed.value(&first), None);
        assert_eq!(Attribute::ActualDelay.value(&first), None);
    }

    #[test]
    fn attribute_names_round_trip() {
        for a in Attribute::ALL {
            assert_eq!(Attribute::parse(a.name()), Some(a));
        }
        assert_eq!(Attribute::parse("bogus"), None);
    }

    #[test]
    fn speed_abnormality_is_low() {
        assert!(Attribute::Delay.abnormal_is_high());
        assert!(!Attribute::Speed.abnormal_is_high());
    }
}
