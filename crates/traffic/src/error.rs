//! Error types for the traffic substrate.

use std::fmt;

/// Errors produced by the traffic substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// The fleet was configured with impossible parameters.
    InvalidConfig {
        /// What went wrong.
        reason: String,
    },
    /// A CSV trace line failed to parse.
    CsvParse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// An IO error (stringified; io::Error is not Clone).
    Io(String),
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::InvalidConfig { reason } => {
                write!(f, "invalid fleet configuration: {reason}")
            }
            TrafficError::CsvParse { line, reason } => {
                write!(f, "trace CSV parse error at line {line}: {reason}")
            }
            TrafficError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TrafficError {}

impl From<std::io::Error> for TrafficError {
    fn from(e: std::io::Error) -> Self {
        TrafficError::Io(e.to_string())
    }
}
