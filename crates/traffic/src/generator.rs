//! The synthetic Dublin bus fleet.
//!
//! Calibrated to Table 2 of the paper:
//!
//! | property        | value                      |
//! |-----------------|----------------------------|
//! | buses           | 911                        |
//! | lines           | 67                         |
//! | data frequency  | 3 tuples / minute / bus    |
//! | service window  | 06:00 – 03:00 (next day)   |
//! | volume          | ~160 MB per day            |
//!
//! Each line gets a synthetic route: a polyline from one edge of the city
//! through a mid-point near the centre to another edge. Buses shuttle
//! along their line's polyline, at a speed shaped by a diurnal congestion
//! profile (harsh at 08:00 and 17:30 on weekdays, mild on weekends) that
//! is strongest near the city centre — giving different spatial locations
//! genuinely different "normal behaviour", which is the premise of the
//! paper's dynamic thresholds. Delay accumulates when a bus moves slower
//! than its schedule assumes; GPS positions and stop reports carry noise
//! (Section 4.1.2's motivation); injected [`Incident`]s slow everything
//! inside their radius, producing the abnormal events rules must detect.

// `!(x > 0.0)` is used deliberately in validations: unlike `x <= 0.0`
// it also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::error::TrafficError;
use crate::model::{BusTrace, HOUR_MS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tms_geo::{GeoPoint, DUBLIN_BBOX};

/// Fleet configuration; defaults reproduce Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of vehicles (Table 2: 911).
    pub buses: u32,
    /// Number of lines (Table 2: 67).
    pub lines: u32,
    /// Seconds between two reports of one vehicle (Table 2: 3/min → 20 s).
    pub report_interval_s: u32,
    /// Service start, hour of day (Table 2: 06:00).
    pub service_start_hour: u32,
    /// Service end, hours from midnight of the same day — 27 = 03:00 next
    /// day (Table 2).
    pub service_end_hour: u32,
    /// RNG seed; identical seeds produce identical days.
    pub seed: u64,
    /// GPS noise, metres (standard deviation scale).
    pub gps_noise_m: f64,
    /// Probability that a stopped-at-stop report is wrong (the dataset's
    /// "buses reported stopped while actually moving" noise).
    pub stop_report_noise: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            buses: 911,
            lines: 67,
            report_interval_s: 20,
            service_start_hour: 6,
            service_end_hour: 27,
            seed: 42,
            gps_noise_m: 15.0,
            stop_report_noise: 0.05,
        }
    }
}

impl FleetConfig {
    /// A scaled-down config for tests: same shape, fewer vehicles.
    pub fn small(seed: u64) -> Self {
        FleetConfig { buses: 40, lines: 8, seed, ..FleetConfig::default() }
    }

    fn validate(&self) -> Result<(), TrafficError> {
        if self.buses == 0 || self.lines == 0 {
            return Err(TrafficError::InvalidConfig {
                reason: "buses and lines must be at least 1".into(),
            });
        }
        if self.lines > self.buses {
            return Err(TrafficError::InvalidConfig {
                reason: format!("more lines ({}) than buses ({})", self.lines, self.buses),
            });
        }
        if self.report_interval_s == 0 {
            return Err(TrafficError::InvalidConfig {
                reason: "report_interval_s must be positive".into(),
            });
        }
        if self.service_end_hour <= self.service_start_hour || self.service_end_hour > 30 {
            return Err(TrafficError::InvalidConfig {
                reason: format!(
                    "service window {}..{} is invalid",
                    self.service_start_hour, self.service_end_hour
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.stop_report_noise) {
            return Err(TrafficError::InvalidConfig {
                reason: "stop_report_noise must be a probability".into(),
            });
        }
        Ok(())
    }
}

/// A traffic incident (e.g. the Figure 2 accident): every bus within
/// `radius_m` of `center` during the window is slowed by `severity`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Centre of the affected zone.
    pub center: GeoPoint,
    /// Radius of the affected zone, metres.
    pub radius_m: f64,
    /// Start of the incident (ms since simulation epoch).
    pub start_ms: u64,
    /// End of the incident (ms since simulation epoch).
    pub end_ms: u64,
    /// Speed multiplier inside the incident, `0.0..1.0` (0.1 = crawl).
    pub severity: f64,
}

/// One synthetic route: a polyline with per-vertex cumulative distance.
#[derive(Debug, Clone)]
pub struct Route {
    /// The line this route serves.
    pub line_id: u32,
    /// Polyline vertices.
    pub points: Vec<GeoPoint>,
    cumulative_m: Vec<f64>,
    /// Indices of stop vertices.
    pub stops: Vec<usize>,
}

impl Route {
    /// Total route length in metres.
    pub fn length_m(&self) -> f64 {
        *self.cumulative_m.last().expect("routes have vertices")
    }

    /// The position at `dist` metres along the route (clamped).
    pub fn position_at(&self, dist: f64) -> GeoPoint {
        let d = dist.clamp(0.0, self.length_m());
        let i = match self.cumulative_m.binary_search_by(|c| c.total_cmp(&d)) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        if i + 1 >= self.points.len() {
            return self.points[self.points.len() - 1];
        }
        let seg = self.cumulative_m[i + 1] - self.cumulative_m[i];
        let f = if seg > 0.0 { (d - self.cumulative_m[i]) / seg } else { 0.0 };
        let a = self.points[i];
        let b = self.points[i + 1];
        GeoPoint { lat: a.lat + (b.lat - a.lat) * f, lon: a.lon + (b.lon - a.lon) * f }
    }

    /// Distance (m) from route start to the nearest stop vertex at or
    /// after `dist`.
    pub fn next_stop_after(&self, dist: f64) -> Option<(usize, f64)> {
        self.stops
            .iter()
            .map(|&i| (i, self.cumulative_m[i]))
            .find(|&(_, d)| d >= dist)
    }
}

struct BusState {
    vehicle_id: u32,
    line: u32,
    direction: bool,
    /// Distance along the route, metres; direction=false runs backwards.
    dist_m: f64,
    delay_s: f64,
    /// Persistent per-vehicle offset (driver habits, dwell patterns):
    /// real per-cell delay variance is dominated by between-vehicle
    /// spread, not by one bus's fluctuation.
    delay_bias_s: f64,
}

/// The fleet simulator: an iterator over [`BusTrace`]s in timestamp order.
pub struct FleetGenerator {
    config: FleetConfig,
    routes: Vec<Route>,
    buses: Vec<BusState>,
    incidents: Vec<Incident>,
    rng: StdRng,
    now_ms: u64,
    end_ms: u64,
    /// Traces ready to be handed out for the current tick.
    pending: std::collections::VecDeque<BusTrace>,
}

/// Base cruise speed of a bus in km/h before congestion.
const BASE_SPEED_KMH: f64 = 34.0;
/// A bus is flagged congested below this speed.
const CONGESTION_SPEED_KMH: f64 = 9.0;

/// Diurnal congestion factor: multiplies the base speed. Weekday rush
/// hours bite hard; weekends stay mild. `centrality` in `[0,1]` scales the
/// effect towards the city centre.
pub fn congestion_factor(hour: f64, weekend: bool, centrality: f64) -> f64 {
    let rush = |peak: f64, width: f64, depth: f64| -> f64 {
        let d = (hour - peak) / width;
        depth * (-d * d).exp()
    };
    let dip = if weekend {
        rush(13.0, 3.0, 0.25)
    } else {
        rush(8.2, 1.2, 0.55) + rush(17.5, 1.5, 0.6)
    };
    // At full centrality the dip applies fully; at the city fringe only a
    // third of it does.
    let scaled = dip * (0.33 + 0.67 * centrality);
    (1.0 - scaled).max(0.15)
}

impl FleetGenerator {
    /// Creates a generator for one service day.
    ///
    /// `day_index` selects which calendar day (day 0 is a Monday, so days
    /// 5 and 6 of each week are weekends).
    pub fn new(config: FleetConfig, day_index: u32) -> Result<Self, TrafficError> {
        Self::with_incidents(config, day_index, Vec::new())
    }

    /// Creates a generator with injected incidents.
    pub fn with_incidents(
        config: FleetConfig,
        day_index: u32,
        incidents: Vec<Incident>,
    ) -> Result<Self, TrafficError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        let routes = make_routes(config.lines, &mut rng);

        let day_base = u64::from(day_index) * crate::model::DAY_MS;
        let start_ms = day_base + u64::from(config.service_start_hour) * HOUR_MS;
        let end_ms = day_base + u64::from(config.service_end_hour) * HOUR_MS;

        // Buses spread round-robin over lines, alternating directions, and
        // staggered along their routes so reports interleave.
        let mut buses = Vec::with_capacity(config.buses as usize);
        // Day-specific RNG so different days differ while routes stay put.
        let mut day_rng = StdRng::seed_from_u64(config.seed.wrapping_add(u64::from(day_index)));
        for b in 0..config.buses {
            let line = b % config.lines;
            let route = &routes[line as usize];
            buses.push(BusState {
                vehicle_id: 33_000 + b,
                line,
                direction: b % 2 == 0,
                dist_m: day_rng.random_range(0.0..route.length_m()),
                // Buses start their service day on schedule.
                delay_s: 0.0,
                // The bias is mostly a property of the *line* (route
                // timing quality) plus a small vehicle component, both
                // stable across days — otherwise yesterday's statistics
                // could not predict today's traffic at a location.
                delay_bias_s: {
                    let mut lrng = StdRng::seed_from_u64(
                        config.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(line) + 1)),
                    );
                    let mut vrng = StdRng::seed_from_u64(
                        config.seed ^ (0xb5ad_4ece_da1c_e2a9u64.wrapping_mul(u64::from(b) + 1)),
                    );
                    lrng.random_range(-35.0..35.0) + vrng.random_range(-10.0..10.0)
                },
            });
        }
        Ok(FleetGenerator {
            config,
            routes,
            buses,
            incidents,
            rng: day_rng,
            now_ms: start_ms,
            end_ms,
            pending: std::collections::VecDeque::new(),
        })
    }

    /// The synthetic routes (shared with the off-line component, which
    /// seeds its quadtree from route vertices — "important coordinates of
    /// the Dublin city, e.g. main road segments").
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// All route vertices — the quadtree seed set.
    pub fn route_seed_points(&self) -> Vec<GeoPoint> {
        self.routes.iter().flat_map(|r| r.points.iter().copied()).collect()
    }

    /// Whether the generated day is a weekend (day 0 is a Monday).
    pub fn is_weekend(&self) -> bool {
        (self.now_ms / crate::model::DAY_MS) % 7 >= 5
    }

    fn centrality(p: &GeoPoint) -> f64 {
        let c = DUBLIN_BBOX.center();
        let half_span = (DUBLIN_BBOX.max_lat - DUBLIN_BBOX.min_lat) * 0.5;
        let d = ((p.lat - c.lat) / half_span).hypot((p.lon - c.lon) / (half_span * 2.0));
        (1.0 - d).clamp(0.0, 1.0)
    }

    /// Advances the simulation by one report interval, producing one trace
    /// per active bus.
    fn tick(&mut self) {
        let interval_s = f64::from(self.config.report_interval_s);
        let hour = (self.now_ms % crate::model::DAY_MS) as f64 / HOUR_MS as f64;
        let weekend = self.is_weekend();
        for bi in 0..self.buses.len() {
            let (line, dist, direction) = {
                let b = &self.buses[bi];
                (b.line, b.dist_m, b.direction)
            };
            let route = &self.routes[line as usize];
            let pos = route.position_at(dist);
            let centrality = Self::centrality(&pos);
            let mut factor = congestion_factor(hour, weekend, centrality);
            // Incidents override the diurnal profile where they apply.
            for inc in &self.incidents {
                if self.now_ms >= inc.start_ms
                    && self.now_ms < inc.end_ms
                    && pos.haversine_m(&inc.center) <= inc.radius_m
                {
                    factor = factor.min(inc.severity.max(0.02));
                }
            }
            let noise: f64 = self.rng.random_range(0.85..1.15);
            let speed_kmh = (BASE_SPEED_KMH * factor * noise).max(0.0);
            let step_m = speed_kmh / 3.6 * interval_s;

            let b = &mut self.buses[bi];
            if b.direction {
                b.dist_m += step_m;
                if b.dist_m >= route.length_m() {
                    b.dist_m = route.length_m();
                    b.direction = false;
                }
            } else {
                b.dist_m -= step_m;
                if b.dist_m <= 0.0 {
                    b.dist_m = 0.0;
                    b.direction = true;
                }
            }
            // Delay drifts: the schedule assumes ~80% of base speed, so a
            // bus slower than that accumulates delay and a faster one
            // recovers. Early buses hold at stops to re-join the schedule
            // (real dispatching), so negative delay reverts towards zero
            // and cannot run away.
            let scheduled_kmh = BASE_SPEED_KMH * 0.8;
            b.delay_s += (scheduled_kmh - speed_kmh) / scheduled_kmh * interval_s;
            if b.delay_s < 0.0 {
                b.delay_s *= 0.90;
            }
            b.delay_s = b.delay_s.clamp(-120.0, 3600.0);

            // Noisy GPS.
            let jitter_bearing = self.rng.random_range(0.0..360.0);
            let jitter_dist = self.rng.random_range(0.0..self.config.gps_noise_m);
            let noisy_pos = route.position_at(self.buses[bi].dist_m).destination(jitter_bearing, jitter_dist);

            // Stop reporting: at a stop when within 40 m of a stop vertex,
            // flipped with probability stop_report_noise.
            let route = &self.routes[line as usize];
            let near_stop = route
                .stops
                .iter()
                .map(|&i| route.points[i])
                .enumerate()
                .map(|(si, p)| (si, noisy_pos.haversine_m(&p)))
                .filter(|&(_, d)| d <= 40.0)
                .min_by(|a, b| a.1.total_cmp(&b.1));
            let mut at_stop = near_stop.is_some();
            if self.rng.random_range(0.0..1.0) < self.config.stop_report_noise {
                at_stop = !at_stop;
            }
            // Reported stop ids are noisy too: the same physical stop can
            // surface under neighbouring ids (Section 4.1.2).
            let reported_stop = near_stop.map(|(si, _)| {
                let base = line * 100 + si as u32;
                if self.rng.random_range(0.0..1.0) < 0.1 {
                    base + 1
                } else {
                    base
                }
            });

            let b = &self.buses[bi];
            let reported_delay =
                b.delay_s + b.delay_bias_s + self.rng.random_range(-12.0..12.0);
            self.pending.push_back(BusTrace {
                timestamp_ms: self.now_ms,
                line_id: line,
                direction,
                position: noisy_pos,
                delay_s: reported_delay,
                congestion: speed_kmh < CONGESTION_SPEED_KMH,
                reported_stop,
                at_stop,
                vehicle_id: b.vehicle_id,
            });
        }
        self.now_ms += u64::from(self.config.report_interval_s) * 1000;
    }

    /// Expected number of traces for the whole service day.
    pub fn expected_count(&self) -> u64 {
        let window_s = u64::from(self.config.service_end_hour - self.config.service_start_hour)
            * 3600;
        window_s / u64::from(self.config.report_interval_s) * u64::from(self.config.buses)
    }
}

impl Iterator for FleetGenerator {
    type Item = BusTrace;

    fn next(&mut self) -> Option<BusTrace> {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Some(t);
            }
            if self.now_ms >= self.end_ms {
                return None;
            }
            self.tick();
        }
    }
}

/// Builds one synthetic route per line: edge point → near-centre waypoint
/// → edge point, subdivided into ~250 m segments, with a stop roughly
/// every 350 m.
fn make_routes(lines: u32, rng: &mut StdRng) -> Vec<Route> {
    let bb = DUBLIN_BBOX;
    let mut routes = Vec::with_capacity(lines as usize);
    for line_id in 0..lines {
        // Endpoints on opposite-ish edges.
        let edge_point = |rng: &mut StdRng, side: u8| -> GeoPoint {
            match side % 4 {
                0 => GeoPoint { lat: bb.min_lat, lon: rng.random_range(bb.min_lon..bb.max_lon) },
                1 => GeoPoint { lat: bb.max_lat, lon: rng.random_range(bb.min_lon..bb.max_lon) },
                2 => GeoPoint { lat: rng.random_range(bb.min_lat..bb.max_lat), lon: bb.min_lon },
                _ => GeoPoint { lat: rng.random_range(bb.min_lat..bb.max_lat), lon: bb.max_lon },
            }
        };
        let side = rng.random_range(0..4u8);
        let offset = rng.random_range(1..4u8);
        let a = edge_point(rng, side);
        let b = edge_point(rng, side + offset);
        let c = bb.center();
        let mid = GeoPoint {
            lat: c.lat + rng.random_range(-0.02..0.02),
            lon: c.lon + rng.random_range(-0.04..0.04),
        };
        // Subdivide a → mid → b.
        let mut points = Vec::new();
        for (from, to) in [(a, mid), (mid, b)] {
            let dist = from.haversine_m(&to);
            let segments = (dist / 250.0).ceil().max(1.0) as usize;
            for s in 0..segments {
                let f = s as f64 / segments as f64;
                points.push(GeoPoint {
                    lat: from.lat + (to.lat - from.lat) * f,
                    lon: from.lon + (to.lon - from.lon) * f,
                });
            }
        }
        points.push(b);
        let mut cumulative_m = Vec::with_capacity(points.len());
        let mut acc = 0.0;
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                acc += points[i - 1].haversine_m(p);
            }
            cumulative_m.push(acc);
        }
        // A stop roughly every 350 m → every ~1.4 vertices at 250 m.
        let stops = (0..points.len()).step_by(2).collect();
        routes.push(Route { line_id, points, cumulative_m, stops });
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DAY_MS;

    #[test]
    fn table2_shape_counts() {
        let cfg = FleetConfig::default();
        let g = FleetGenerator::new(cfg.clone(), 0).unwrap();
        // 21 service hours × 3 reports/min × 911 buses.
        assert_eq!(g.expected_count(), 21 * 3600 / 20 * 911);
        assert_eq!(g.routes().len(), 67);
    }

    #[test]
    fn generates_expected_count_and_ordering() {
        let g = FleetGenerator::new(FleetConfig::small(1), 0).unwrap();
        let expected = g.expected_count();
        let traces: Vec<BusTrace> = g.collect();
        assert_eq!(traces.len() as u64, expected);
        // Timestamps are non-decreasing and within the service window.
        for w in traces.windows(2) {
            assert!(w[0].timestamp_ms <= w[1].timestamp_ms);
        }
        assert_eq!(traces[0].timestamp_ms, 6 * HOUR_MS);
        assert!(traces.last().unwrap().timestamp_ms < 27 * HOUR_MS);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<BusTrace> = FleetGenerator::new(FleetConfig::small(7), 0).unwrap().collect();
        let b: Vec<BusTrace> = FleetGenerator::new(FleetConfig::small(7), 0).unwrap().collect();
        assert_eq!(a, b);
        let c: Vec<BusTrace> = FleetGenerator::new(FleetConfig::small(8), 0).unwrap().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn positions_stay_inside_dublin_with_margin() {
        let traces: Vec<BusTrace> =
            FleetGenerator::new(FleetConfig::small(3), 0).unwrap().take(5_000).collect();
        for t in traces {
            // GPS noise can leak a few metres past the bbox edge.
            assert!(t.position.lat > DUBLIN_BBOX.min_lat - 0.01);
            assert!(t.position.lat < DUBLIN_BBOX.max_lat + 0.01);
            assert!(t.position.lon > DUBLIN_BBOX.min_lon - 0.01);
            assert!(t.position.lon < DUBLIN_BBOX.max_lon + 0.01);
        }
    }

    #[test]
    fn rush_hour_slows_traffic() {
        // Congestion factor: 08:12 weekday well below 11:00, centre worse
        // than fringe, weekend milder than weekday.
        let rush = congestion_factor(8.2, false, 1.0);
        let midday = congestion_factor(11.0, false, 1.0);
        assert!(rush < midday * 0.7, "rush {rush} vs midday {midday}");
        let fringe = congestion_factor(8.2, false, 0.0);
        assert!(rush < fringe, "centre {rush} vs fringe {fringe}");
        let weekend = congestion_factor(8.2, true, 1.0);
        assert!(weekend > rush, "weekend {weekend} vs weekday {rush}");
    }

    #[test]
    fn weekday_delays_exceed_weekend_delays() {
        let avg_delay = |day: u32| -> f64 {
            let traces: Vec<BusTrace> = FleetGenerator::new(FleetConfig::small(5), day)
                .unwrap()
                .filter(|t| t.hour_of_day() == 9)
                .collect();
            traces.iter().map(|t| t.delay_s).sum::<f64>() / traces.len() as f64
        };
        let weekday = avg_delay(0); // Monday
        let weekend = avg_delay(5); // Saturday
        assert!(
            weekday > weekend + 10.0,
            "weekday 09:00 delay {weekday} should exceed weekend {weekend}"
        );
    }

    #[test]
    fn incident_slows_buses_inside_radius() {
        let cfg = FleetConfig::small(11);
        let routes_probe = FleetGenerator::new(cfg.clone(), 0).unwrap();
        // Put an incident on a route vertex so buses actually cross it.
        let center = routes_probe.routes()[0].points[routes_probe.routes()[0].points.len() / 2];
        let incident = Incident {
            center,
            radius_m: 800.0,
            start_ms: 10 * HOUR_MS,
            end_ms: 12 * HOUR_MS,
            severity: 0.05,
        };
        let with: Vec<BusTrace> =
            FleetGenerator::with_incidents(cfg.clone(), 0, vec![incident]).unwrap().collect();
        let congested_in_zone = with
            .iter()
            .filter(|t| {
                t.timestamp_ms >= 10 * HOUR_MS
                    && t.timestamp_ms < 12 * HOUR_MS
                    && t.position.haversine_m(&center) <= 800.0
            })
            .filter(|t| t.congestion)
            .count();
        assert!(congested_in_zone > 0, "incident must flag congestion in its zone");
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = |f: fn(&mut FleetConfig)| {
            let mut c = FleetConfig::small(0);
            f(&mut c);
            FleetGenerator::new(c, 0)
        };
        assert!(bad(|c| c.buses = 0).is_err());
        assert!(bad(|c| c.lines = 0).is_err());
        assert!(bad(|c| { c.lines = 50; c.buses = 10 }).is_err());
        assert!(bad(|c| c.report_interval_s = 0).is_err());
        assert!(bad(|c| c.service_end_hour = 5).is_err());
        assert!(bad(|c| c.stop_report_noise = 1.5).is_err());
    }

    #[test]
    fn route_geometry_is_consistent() {
        let g = FleetGenerator::new(FleetConfig::small(2), 0).unwrap();
        for r in g.routes() {
            assert!(r.length_m() > 1_000.0, "routes are at least a kilometre");
            assert!(!r.stops.is_empty());
            // position_at is monotone along the polyline ends.
            let start = r.position_at(0.0);
            let end = r.position_at(r.length_m());
            assert!(start.haversine_m(&end) <= r.length_m() + 1.0);
            // Clamping.
            assert_eq!(r.position_at(-5.0), start);
            assert_eq!(r.position_at(r.length_m() + 5.0), end);
        }
    }

    #[test]
    fn day_index_shifts_timestamps() {
        let t0: Vec<BusTrace> =
            FleetGenerator::new(FleetConfig::small(4), 0).unwrap().take(10).collect();
        let t1: Vec<BusTrace> =
            FleetGenerator::new(FleetConfig::small(4), 1).unwrap().take(10).collect();
        assert_eq!(t1[0].timestamp_ms - t0[0].timestamp_ms, DAY_MS);
    }
}
