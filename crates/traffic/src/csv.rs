//! CSV serialization of bus traces, in the spirit of the dataset files the
//! paper's BusReader spout consumes ("in our current implementation the
//! traces are stored in csv files", Section 4.3.2).
//!
//! Format (one trace per line, header first):
//!
//! ```text
//! timestamp_ms,line_id,direction,lat,lon,delay_s,congestion,reported_stop,at_stop,vehicle_id
//! ```

use crate::error::TrafficError;
use crate::model::BusTrace;
use std::io::{BufRead, Write};
use tms_geo::GeoPoint;

/// The header line.
pub const HEADER: &str =
    "timestamp_ms,line_id,direction,lat,lon,delay_s,congestion,reported_stop,at_stop,vehicle_id";

/// Renders one trace as a CSV line (no trailing newline).
pub fn to_csv_line(t: &BusTrace) -> String {
    format!(
        "{},{},{},{:.6},{:.6},{:.2},{},{},{},{}",
        t.timestamp_ms,
        t.line_id,
        t.direction,
        t.position.lat,
        t.position.lon,
        t.delay_s,
        t.congestion,
        t.reported_stop.map(|s| s.to_string()).unwrap_or_default(),
        t.at_stop,
        t.vehicle_id
    )
}

/// Parses one CSV line (line number only used in errors).
pub fn from_csv_line(line: &str, line_no: usize) -> Result<BusTrace, TrafficError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 10 {
        return Err(TrafficError::CsvParse {
            line: line_no,
            reason: format!("expected 10 fields, got {}", fields.len()),
        });
    }
    let err = |what: &str, v: &str| TrafficError::CsvParse {
        line: line_no,
        reason: format!("bad {what}: {v:?}"),
    };
    let parse_bool = |v: &str, what: &str| match v {
        "true" | "1" => Ok(true),
        "false" | "0" => Ok(false),
        _ => Err(err(what, v)),
    };
    Ok(BusTrace {
        timestamp_ms: fields[0].parse().map_err(|_| err("timestamp", fields[0]))?,
        line_id: fields[1].parse().map_err(|_| err("line_id", fields[1]))?,
        direction: parse_bool(fields[2], "direction")?,
        position: GeoPoint {
            lat: fields[3].parse().map_err(|_| err("lat", fields[3]))?,
            lon: fields[4].parse().map_err(|_| err("lon", fields[4]))?,
        },
        delay_s: fields[5].parse().map_err(|_| err("delay", fields[5]))?,
        congestion: parse_bool(fields[6], "congestion")?,
        reported_stop: if fields[7].is_empty() {
            None
        } else {
            Some(fields[7].parse().map_err(|_| err("reported_stop", fields[7]))?)
        },
        at_stop: parse_bool(fields[8], "at_stop")?,
        vehicle_id: fields[9].parse().map_err(|_| err("vehicle_id", fields[9]))?,
    })
}

/// Writes traces (header + one line each).
pub fn write_traces<'a>(
    traces: impl IntoIterator<Item = &'a BusTrace>,
    w: &mut impl Write,
) -> Result<u64, TrafficError> {
    writeln!(w, "{HEADER}")?;
    let mut n = 0;
    for t in traces {
        writeln!(w, "{}", to_csv_line(t))?;
        n += 1;
    }
    Ok(n)
}

/// Reads traces written by [`write_traces`].
pub fn read_traces(r: &mut impl BufRead) -> Result<Vec<BusTrace>, TrafficError> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(TrafficError::CsvParse { line: 1, reason: "missing header".into() });
    }
    if line.trim_end() != HEADER {
        return Err(TrafficError::CsvParse {
            line: 1,
            reason: format!("unexpected header {:?}", line.trim_end()),
        });
    }
    let mut out = Vec::new();
    let mut line_no = 1;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        out.push(from_csv_line(trimmed, line_no)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> BusTrace {
        BusTrace {
            timestamp_ms: 21_600_000,
            line_id: 46,
            direction: true,
            position: GeoPoint::new_unchecked(53.3312, -6.2588),
            delay_s: 145.25,
            congestion: true,
            reported_stop: Some(4601),
            at_stop: false,
            vehicle_id: 33007,
        }
    }

    #[test]
    fn round_trip() {
        let traces = vec![sample(), BusTrace { reported_stop: None, ..sample() }];
        let mut buf = Vec::new();
        assert_eq!(write_traces(&traces, &mut buf).unwrap(), 2);
        let read = read_traces(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(read.len(), 2);
        assert_eq!(read[0].vehicle_id, traces[0].vehicle_id);
        assert_eq!(read[0].reported_stop, Some(4601));
        assert_eq!(read[1].reported_stop, None);
        assert!((read[0].delay_s - 145.25).abs() < 1e-9);
        assert!((read[0].position.lat - 53.3312).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(from_csv_line("1,2,3", 5).is_err());
        assert!(from_csv_line("x,46,true,53.3,-6.2,1.0,false,,false,1", 5).is_err());
        assert!(from_csv_line("1,46,maybe,53.3,-6.2,1.0,false,,false,1", 5).is_err());
        match from_csv_line("1,46,true,53.3,-6.2,1.0,false,notanum,false,1", 9) {
            Err(TrafficError::CsvParse { line, .. }) => assert_eq!(line, 9),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_header_and_empty_file() {
        assert!(read_traces(&mut Cursor::new("wrong,header\n")).is_err());
        assert!(read_traces(&mut Cursor::new("")).is_err());
        // Header only is fine — zero traces.
        let only_header = format!("{HEADER}\n");
        assert_eq!(read_traces(&mut Cursor::new(&only_header)).unwrap().len(), 0);
    }

    #[test]
    fn bytes_per_line_matches_dataset_scale() {
        // Table 2: 160 MB/day for ~3.44 M traces/day ≈ 49 bytes per trace.
        // Our richer CSV runs a bit heavier but the same order of
        // magnitude.
        let line = to_csv_line(&sample());
        assert!(
            (40..=120).contains(&line.len()),
            "line length {} drifted from dataset scale",
            line.len()
        );
    }
}
