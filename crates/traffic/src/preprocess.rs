//! The PreProcess bolt's logic (Section 3.1, Figure 8): enrich each raw
//! trace with the vehicle's speed over ground and its *actual delay* (the
//! change in the reported delay since the previous measurement).

use crate::model::{BusTrace, EnrichedTrace};
use std::collections::HashMap;
use tms_geo::GeoPoint;

/// Stateful per-vehicle preprocessor. One instance per PreProcess bolt
/// task; routing traces to tasks by `vehicle_id` (fields grouping) keeps
/// each vehicle's history on one task.
#[derive(Debug, Default)]
pub struct Preprocessor {
    last: HashMap<u32, (u64, GeoPoint, f64)>,
}

impl Preprocessor {
    /// Creates an empty preprocessor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enriches one trace. Spatial enrichment (areas, bus stop) is done by
    /// the downstream AreaTracker / BusStopsTracker bolts; this fills the
    /// kinematic fields.
    pub fn enrich(&mut self, trace: BusTrace) -> EnrichedTrace {
        let prev = self.last.insert(
            trace.vehicle_id,
            (trace.timestamp_ms, trace.position, trace.delay_s),
        );
        let (speed_kmh, actual_delay_s) = match prev {
            Some((pts, ppos, pdelay)) if trace.timestamp_ms > pts => {
                let dt_h = (trace.timestamp_ms - pts) as f64 / 3_600_000.0;
                let dist_km = trace.position.haversine_m(&ppos) / 1000.0;
                (Some(dist_km / dt_h), Some(trace.delay_s - pdelay))
            }
            // Duplicate or reordered timestamp: treat as a first report
            // rather than dividing by zero.
            _ => (None, None),
        };
        EnrichedTrace {
            trace,
            speed_kmh,
            actual_delay_s,
            areas: Vec::new(),
            bus_stop: None,
        }
    }

    /// Number of vehicles currently tracked.
    pub fn tracked_vehicles(&self) -> usize {
        self.last.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_geo::GeoPoint;

    fn trace(vehicle: u32, ts: u64, lat: f64, delay: f64) -> BusTrace {
        BusTrace {
            timestamp_ms: ts,
            line_id: 1,
            direction: true,
            position: GeoPoint::new_unchecked(lat, -6.26),
            delay_s: delay,
            congestion: false,
            reported_stop: None,
            at_stop: false,
            vehicle_id: vehicle,
        }
    }

    #[test]
    fn first_report_has_no_derived_fields() {
        let mut p = Preprocessor::new();
        let e = p.enrich(trace(1, 0, 53.33, 100.0));
        assert_eq!(e.speed_kmh, None);
        assert_eq!(e.actual_delay_s, None);
    }

    #[test]
    fn speed_and_actual_delay_from_consecutive_reports() {
        let mut p = Preprocessor::new();
        p.enrich(trace(1, 0, 53.3300, 100.0));
        // 20 s later, moved north; delay grew by 15 s.
        let e = p.enrich(trace(1, 20_000, 53.3318, 115.0));
        let speed = e.speed_kmh.unwrap();
        // ~200 m in 20 s = 36 km/h.
        assert!((30.0..42.0).contains(&speed), "speed {speed}");
        assert_eq!(e.actual_delay_s, Some(15.0));
    }

    #[test]
    fn vehicles_are_independent() {
        let mut p = Preprocessor::new();
        p.enrich(trace(1, 0, 53.33, 0.0));
        let e2 = p.enrich(trace(2, 20_000, 53.35, 50.0));
        assert_eq!(e2.speed_kmh, None, "vehicle 2's first report");
        let e1 = p.enrich(trace(1, 40_000, 53.33, 10.0));
        assert_eq!(e1.actual_delay_s, Some(10.0));
        assert_eq!(p.tracked_vehicles(), 2);
    }

    #[test]
    fn duplicate_timestamp_does_not_divide_by_zero() {
        let mut p = Preprocessor::new();
        p.enrich(trace(1, 1000, 53.33, 0.0));
        let e = p.enrich(trace(1, 1000, 53.34, 5.0));
        assert_eq!(e.speed_kmh, None);
        assert_eq!(e.actual_delay_s, None);
        // And recovery afterwards.
        let e = p.enrich(trace(1, 21_000, 53.34, 8.0));
        assert!(e.speed_kmh.is_some());
        assert_eq!(e.actual_delay_s, Some(3.0));
    }

    #[test]
    fn stationary_bus_has_zero_speed() {
        let mut p = Preprocessor::new();
        p.enrich(trace(1, 0, 53.33, 0.0));
        let e = p.enrich(trace(1, 20_000, 53.33, 0.0));
        assert_eq!(e.speed_kmh, Some(0.0));
    }
}
