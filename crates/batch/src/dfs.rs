//! A block-structured distributed-filesystem analogue (HDFS, Section 2.1.3).
//!
//! Files are append-only sequences of fixed-size blocks. Each block is
//! assigned to `replication` simulated datanodes round-robin — the
//! placement is bookkeeping (everything lives in one process) but it gives
//! the job runner the same structure Hadoop exploits: one map task per
//! block, scheduled "near" its data.

use crate::error::BatchError;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of the filesystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfsConfig {
    /// Block size in bytes. HDFS defaults to 64 MiB; tests use small blocks
    /// so multi-block behaviour is exercised.
    pub block_size: usize,
    /// Replication factor.
    pub replication: usize,
    /// Number of simulated datanodes.
    pub datanodes: usize,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig { block_size: 64 * 1024, replication: 3, datanodes: 4 }
    }
}

/// One stored block.
#[derive(Debug, Clone)]
struct Block {
    data: Bytes,
    /// Datanode ids holding a replica.
    replicas: Vec<usize>,
}

/// Metadata returned by [`Dfs::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    /// The file's path.
    pub path: String,
    /// Total length in bytes.
    pub len: u64,
    /// Number of blocks.
    pub blocks: usize,
    /// Replication factor.
    pub replication: usize,
}

#[derive(Debug, Default)]
struct Namespace {
    files: BTreeMap<String, Vec<Block>>,
    next_node: usize,
}

/// The filesystem. Cheap to clone; clones share state (one namenode).
#[derive(Debug, Clone)]
pub struct Dfs {
    config: DfsConfig,
    ns: Arc<RwLock<Namespace>>,
}

impl Dfs {
    /// Creates a filesystem.
    pub fn new(config: DfsConfig) -> Result<Self, BatchError> {
        if config.block_size == 0 {
            return Err(BatchError::InvalidDfsConfig { reason: "block_size must be > 0".into() });
        }
        if config.datanodes == 0 {
            return Err(BatchError::InvalidDfsConfig { reason: "datanodes must be > 0".into() });
        }
        if config.replication == 0 || config.replication > config.datanodes {
            return Err(BatchError::InvalidDfsConfig {
                reason: format!(
                    "replication must be in 1..={} (datanodes), got {}",
                    config.datanodes, config.replication
                ),
            });
        }
        Ok(Dfs { config, ns: Arc::new(RwLock::new(Namespace::default())) })
    }

    /// Creates a filesystem with default configuration.
    pub fn with_defaults() -> Self {
        Dfs::new(DfsConfig::default()).expect("default config is valid")
    }

    /// The configuration.
    pub fn config(&self) -> DfsConfig {
        self.config
    }

    /// Creates a file with the given contents; fails if it exists.
    pub fn create(&self, path: &str, data: &[u8]) -> Result<(), BatchError> {
        let mut ns = self.ns.write();
        if ns.files.contains_key(path) {
            return Err(BatchError::FileExists(path.to_string()));
        }
        let blocks = self.blockify(&mut ns, data);
        ns.files.insert(path.to_string(), blocks);
        Ok(())
    }

    /// Appends bytes to a file, creating it if missing. Appends always
    /// start a new block when the last block is full.
    pub fn append(&self, path: &str, data: &[u8]) -> Result<(), BatchError> {
        let mut ns = self.ns.write();
        // Fill the tail block first, then blockify the remainder.
        let mut remaining = data;
        if let Some(blocks) = ns.files.get_mut(path) {
            if let Some(last) = blocks.last_mut() {
                let room = self.config.block_size - last.data.len();
                if room > 0 && !remaining.is_empty() {
                    let take = room.min(remaining.len());
                    let mut merged = Vec::with_capacity(last.data.len() + take);
                    merged.extend_from_slice(&last.data);
                    merged.extend_from_slice(&remaining[..take]);
                    last.data = Bytes::from(merged);
                    remaining = &remaining[take..];
                }
            }
        } else {
            ns.files.insert(path.to_string(), Vec::new());
        }
        let new_blocks = self.blockify(&mut ns, remaining);
        ns.files
            .get_mut(path)
            .expect("file ensured above")
            .extend(new_blocks);
        Ok(())
    }

    fn blockify(&self, ns: &mut Namespace, data: &[u8]) -> Vec<Block> {
        let mut blocks = Vec::new();
        for chunk in data.chunks(self.config.block_size) {
            let mut replicas = Vec::with_capacity(self.config.replication);
            for r in 0..self.config.replication {
                replicas.push((ns.next_node + r) % self.config.datanodes);
            }
            ns.next_node = (ns.next_node + 1) % self.config.datanodes;
            blocks.push(Block { data: Bytes::copy_from_slice(chunk), replicas });
        }
        blocks
    }

    /// Whole-file read.
    pub fn read(&self, path: &str) -> Result<Vec<u8>, BatchError> {
        let ns = self.ns.read();
        let blocks =
            ns.files.get(path).ok_or_else(|| BatchError::FileNotFound(path.to_string()))?;
        let mut out = Vec::with_capacity(blocks.iter().map(|b| b.data.len()).sum());
        for b in blocks {
            out.extend_from_slice(&b.data);
        }
        Ok(out)
    }

    /// Whole-file read as UTF-8 text.
    pub fn read_to_string(&self, path: &str) -> Result<String, BatchError> {
        String::from_utf8(self.read(path)?)
            .map_err(|_| BatchError::NotUtf8 { path: path.to_string() })
    }

    /// The blocks of a file as shared byte buffers — one per map task.
    pub fn read_blocks(&self, path: &str) -> Result<Vec<Bytes>, BatchError> {
        let ns = self.ns.read();
        let blocks =
            ns.files.get(path).ok_or_else(|| BatchError::FileNotFound(path.to_string()))?;
        Ok(blocks.iter().map(|b| b.data.clone()).collect())
    }

    /// The file split into **line-aligned chunks**, one per block: a line
    /// crossing a block boundary belongs to the chunk where it started,
    /// mirroring how Hadoop's `TextInputFormat` assigns records to splits.
    pub fn read_line_splits(&self, path: &str) -> Result<Vec<String>, BatchError> {
        let text = self.read_to_string(path)?;
        let bs = self.config.block_size;
        if text.is_empty() {
            return Ok(Vec::new());
        }
        let bytes = text.as_bytes();
        let mut splits = Vec::new();
        let mut start = 0usize;
        while start < bytes.len() {
            let tentative_end = (start + bs).min(bytes.len());
            // Extend to the end of the line that straddles the boundary.
            let end = match bytes[tentative_end..].iter().position(|&b| b == b'\n') {
                Some(off) => tentative_end + off + 1,
                None => bytes.len(),
            };
            splits.push(text[start..end].to_string());
            start = end;
        }
        Ok(splits)
    }

    /// Deletes a file.
    pub fn delete(&self, path: &str) -> Result<(), BatchError> {
        self.ns
            .write()
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| BatchError::FileNotFound(path.to_string()))
    }

    /// Whether the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.ns.read().files.contains_key(path)
    }

    /// All paths under a prefix (HDFS-style directory listing), sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.ns
            .read()
            .files
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// File metadata.
    pub fn status(&self, path: &str) -> Result<FileStatus, BatchError> {
        let ns = self.ns.read();
        let blocks =
            ns.files.get(path).ok_or_else(|| BatchError::FileNotFound(path.to_string()))?;
        Ok(FileStatus {
            path: path.to_string(),
            len: blocks.iter().map(|b| b.data.len() as u64).sum(),
            blocks: blocks.len(),
            replication: self.config.replication,
        })
    }

    /// Replica placements of each block (datanode ids), for tests and the
    /// scheduler's locality bookkeeping.
    pub fn block_locations(&self, path: &str) -> Result<Vec<Vec<usize>>, BatchError> {
        let ns = self.ns.read();
        let blocks =
            ns.files.get(path).ok_or_else(|| BatchError::FileNotFound(path.to_string()))?;
        Ok(blocks.iter().map(|b| b.replicas.clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dfs() -> Dfs {
        Dfs::new(DfsConfig { block_size: 16, replication: 2, datanodes: 3 }).unwrap()
    }

    #[test]
    fn create_read_round_trip() {
        let dfs = small_dfs();
        let data = b"hello distributed filesystem".as_slice();
        dfs.create("/a", data).unwrap();
        assert_eq!(dfs.read("/a").unwrap(), data);
        let st = dfs.status("/a").unwrap();
        assert_eq!(st.len, data.len() as u64);
        assert_eq!(st.blocks, 2); // 28 bytes at block_size 16
    }

    #[test]
    fn create_existing_fails() {
        let dfs = small_dfs();
        dfs.create("/a", b"x").unwrap();
        assert!(matches!(dfs.create("/a", b"y"), Err(BatchError::FileExists(_))));
    }

    #[test]
    fn append_fills_tail_block_then_splits() {
        let dfs = small_dfs();
        dfs.create("/a", b"12345678").unwrap(); // half a block
        dfs.append("/a", b"abcdefghij").unwrap(); // fills to 16, spills 2
        assert_eq!(dfs.read("/a").unwrap(), b"12345678abcdefghij");
        assert_eq!(dfs.status("/a").unwrap().blocks, 2);
        // Append to a missing file creates it.
        dfs.append("/b", b"new").unwrap();
        assert_eq!(dfs.read("/b").unwrap(), b"new");
    }

    #[test]
    fn replication_and_placement() {
        let dfs = small_dfs();
        dfs.create("/a", &[0u8; 50]).unwrap();
        let locs = dfs.block_locations("/a").unwrap();
        assert_eq!(locs.len(), 4); // ceil(50/16)
        for replicas in &locs {
            assert_eq!(replicas.len(), 2);
            assert!(replicas.iter().all(|&n| n < 3));
            assert_ne!(replicas[0], replicas[1], "replicas on distinct nodes");
        }
    }

    #[test]
    fn line_splits_are_line_aligned_and_lossless() {
        let dfs = small_dfs();
        let text = "line one\nline two is longer\nthree\nand the fourth line\n";
        dfs.create("/t", text.as_bytes()).unwrap();
        let splits = dfs.read_line_splits("/t").unwrap();
        assert!(splits.len() > 1, "text spans multiple blocks");
        for s in &splits {
            assert!(s.ends_with('\n') || s == splits.last().unwrap());
            // No split starts mid-line.
        }
        assert_eq!(splits.concat(), text);
    }

    #[test]
    fn line_split_of_file_without_trailing_newline() {
        let dfs = small_dfs();
        dfs.create("/t", b"abcdefghijklmnopqrs no newline at all").unwrap();
        let splits = dfs.read_line_splits("/t").unwrap();
        assert_eq!(splits.len(), 1, "one giant line belongs to one split");
    }

    #[test]
    fn list_and_delete() {
        let dfs = small_dfs();
        dfs.create("/data/day1.csv", b"x").unwrap();
        dfs.create("/data/day2.csv", b"y").unwrap();
        dfs.create("/out/part0", b"z").unwrap();
        assert_eq!(dfs.list("/data/"), vec!["/data/day1.csv", "/data/day2.csv"]);
        dfs.delete("/data/day1.csv").unwrap();
        assert!(!dfs.exists("/data/day1.csv"));
        assert!(matches!(dfs.delete("/nope"), Err(BatchError::FileNotFound(_))));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Dfs::new(DfsConfig { block_size: 0, replication: 1, datanodes: 1 }).is_err());
        assert!(Dfs::new(DfsConfig { block_size: 1, replication: 0, datanodes: 1 }).is_err());
        assert!(Dfs::new(DfsConfig { block_size: 1, replication: 3, datanodes: 2 }).is_err());
    }

    #[test]
    fn non_utf8_read_to_string_fails() {
        let dfs = small_dfs();
        dfs.create("/bin", &[0xff, 0xfe, 0x00]).unwrap();
        assert!(matches!(dfs.read_to_string("/bin"), Err(BatchError::NotUtf8 { .. })));
    }

    #[test]
    fn clones_share_the_namespace() {
        let dfs = small_dfs();
        let clone = dfs.clone();
        clone.create("/shared", b"data").unwrap();
        assert!(dfs.exists("/shared"));
    }
}
