//! Error types for the batch layer.

use std::fmt;

/// Errors produced by the batch layer.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// No file with that path exists in the DFS.
    FileNotFound(String),
    /// A file with that path already exists.
    FileExists(String),
    /// The DFS was configured with impossible parameters.
    InvalidDfsConfig {
        /// What went wrong.
        reason: String,
    },
    /// A job was configured with impossible parameters.
    InvalidJobConfig {
        /// What went wrong.
        reason: String,
    },
    /// A map or reduce task panicked.
    TaskFailed {
        /// The task (e.g. `map-3`).
        task: String,
        /// The panic message.
        reason: String,
    },
    /// Input data was not valid UTF-8 when a text reader was requested.
    NotUtf8 {
        /// The offending file.
        path: String,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::FileNotFound(p) => write!(f, "file not found: {p}"),
            BatchError::FileExists(p) => write!(f, "file already exists: {p}"),
            BatchError::InvalidDfsConfig { reason } => {
                write!(f, "invalid DFS configuration: {reason}")
            }
            BatchError::InvalidJobConfig { reason } => {
                write!(f, "invalid job configuration: {reason}")
            }
            BatchError::TaskFailed { task, reason } => write!(f, "task {task} failed: {reason}"),
            BatchError::NotUtf8 { path } => write!(f, "file {path} is not valid UTF-8"),
        }
    }
}

impl std::error::Error for BatchError {}
