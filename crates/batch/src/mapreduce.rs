//! A miniature MapReduce execution engine (Section 2.1.3 of the paper).
//!
//! `map(k1, v1) → [k2, v2]`, `reduce(k2, [v2]) → [k3, v3]` — as in the
//! paper's formulation. Input records are text lines read from the
//! [`Dfs`](crate::dfs::Dfs); each input split (one per DFS block) becomes
//! one map task; intermediate pairs are hash-partitioned into `reducers`
//! partitions, sorted and grouped by key, and each partition becomes one
//! reduce task. Map and reduce tasks run on a pool of worker threads.

use crate::dfs::Dfs;
use crate::error::BatchError;
use crossbeam::channel;
use std::collections::BTreeMap;
use std::hash::{DefaultHasher, Hash, Hasher};

/// The map side of a job.
///
/// `map` is called once per input record (a text line, stripped of its
/// newline) and emits intermediate pairs through `emit`.
pub trait Mapper: Sync {
    /// Intermediate key type.
    type Key: Ord + Hash + Clone + Send;
    /// Intermediate value type.
    type Value: Send;

    /// Processes one input record, emitting intermediate pairs.
    fn map(&self, record: &str, emit: &mut dyn FnMut(Self::Key, Self::Value));
}

/// The reduce side of a job.
///
/// `reduce` is called once per distinct intermediate key with all of the
/// key's values, and emits output pairs through `emit`.
pub trait Reducer<K, V>: Sync {
    /// Output key type.
    type OutKey: Send;
    /// Output value type.
    type OutValue: Send;

    /// Folds one key's values into output pairs.
    fn reduce(
        &self,
        key: &K,
        values: &[V],
        emit: &mut dyn FnMut(Self::OutKey, Self::OutValue),
    );
}

/// An optional map-side combiner: folds the values of one key within a
/// single map task before the shuffle, cutting intermediate volume —
/// Hadoop's classic optimization, useful for our statistics job where
/// partial (count, sum, sum-of-squares) triples merge associatively.
pub trait Combiner<K, V>: Sync {
    /// Folds one key's map-side values into (usually fewer) values.
    fn combine(&self, key: &K, values: Vec<V>) -> Vec<V>;
}

/// Job configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobConfig {
    /// Number of reduce tasks (and output partitions).
    pub reducers: usize,
    /// Number of worker threads executing tasks.
    pub workers: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig { reducers: 4, workers: 4 }
    }
}

/// Execution statistics for a finished job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobStats {
    /// Map tasks executed (one per input split).
    pub map_tasks: usize,
    /// Reduce tasks executed (= output partitions).
    pub reduce_tasks: usize,
    /// Input records consumed.
    pub input_records: u64,
    /// Pairs that crossed the shuffle (post-combiner).
    pub intermediate_pairs: u64,
    /// Output pairs produced.
    pub output_pairs: u64,
}

fn partition_of<K: Hash>(key: &K, reducers: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % reducers as u64) as usize
}

/// The output of a job: one `Vec` of `(key, value)` pairs per reduce
/// partition, like Hadoop part files.
pub type JobOutput<K, V> = Vec<Vec<(K, V)>>;

/// A finished job: its outputs plus execution statistics.
pub type JobResult<K, V> = (JobOutput<K, V>, JobStats);

/// One partition's intermediate pairs, each tagged with the map task
/// that produced it (the canonical-merge-order tag).
type TaggedPairs<K, V> = Vec<(usize, K, V)>;

/// One partition's shuffled groups, values still carrying their map-task
/// tag so they can be sorted into canonical order before reduction.
type TaggedGroups<K, V> = BTreeMap<K, Vec<(usize, V)>>;

/// Runs a MapReduce job over the given DFS input files.
///
/// Returns the output pairs of every reduce partition (partition index →
/// pairs) together with execution statistics. Outputs inside a partition
/// follow the sorted key order, like Hadoop part files.
pub fn run_job<M, R, C>(
    dfs: &Dfs,
    inputs: &[&str],
    mapper: &M,
    reducer: &R,
    combiner: Option<&C>,
    config: JobConfig,
) -> Result<JobResult<R::OutKey, R::OutValue>, BatchError>
where
    M: Mapper,
    R: Reducer<M::Key, M::Value>,
    C: Combiner<M::Key, M::Value>,
{
    if config.reducers == 0 {
        return Err(BatchError::InvalidJobConfig { reason: "reducers must be > 0".into() });
    }
    if config.workers == 0 {
        return Err(BatchError::InvalidJobConfig { reason: "workers must be > 0".into() });
    }

    // Input splits: one per DFS block, line-aligned.
    let mut splits: Vec<String> = Vec::new();
    for path in inputs {
        splits.extend(dfs.read_line_splits(path)?);
    }
    let map_tasks = splits.len();

    // ---- Map phase -------------------------------------------------------
    // Workers pull splits from a channel; each produces per-partition
    // intermediate vectors.
    let (split_tx, split_rx) = channel::unbounded::<(usize, String)>();
    for (i, s) in splits.into_iter().enumerate() {
        split_tx.send((i, s)).expect("channel open");
    }
    drop(split_tx);

    // Each intermediate pair is tagged with the map task that produced it,
    // so the shuffle can merge partials in canonical task order no matter
    // which worker ran which split, or in what order workers finished.
    // Float reduction is order-sensitive; without the tag, multi-worker
    // runs would sum partial moments in scheduling order and produce
    // run-to-run different low bits.
    struct MapOut<K, V> {
        partitions: Vec<TaggedPairs<K, V>>,
        records: u64,
        pairs: u64,
    }

    let map_results: Vec<MapOut<M::Key, M::Value>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..config.workers.min(map_tasks.max(1)) {
            let split_rx = split_rx.clone();
            handles.push(scope.spawn(move || -> Result<MapOut<M::Key, M::Value>, BatchError> {
                let mut partitions: Vec<TaggedPairs<M::Key, M::Value>> =
                    (0..config.reducers).map(|_| Vec::new()).collect();
                let mut records = 0u64;
                let mut pairs = 0u64;
                while let Ok((task_id, split)) = split_rx.recv() {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut local: Vec<(M::Key, M::Value)> = Vec::new();
                        for line in split.lines() {
                            records += 1;
                            mapper.map(line, &mut |k, v| local.push((k, v)));
                        }
                        local
                    }));
                    let mut local = result.map_err(|e| BatchError::TaskFailed {
                        task: format!("map-{task_id} (worker {worker})"),
                        reason: panic_message(e.as_ref()),
                    })?;
                    if let Some(c) = combiner {
                        local = run_combiner(c, local);
                    }
                    pairs += local.len() as u64;
                    for (k, v) in local {
                        let p = partition_of(&k, config.reducers);
                        partitions[p].push((task_id, k, v));
                    }
                }
                Ok(MapOut { partitions, records, pairs })
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker threads do not panic"))
            .collect::<Result<Vec<_>, _>>()
    })?;

    let mut stats = JobStats {
        map_tasks,
        reduce_tasks: config.reducers,
        ..JobStats::default()
    };

    // ---- Shuffle ---------------------------------------------------------
    // Merge every mapper's partition p into one sorted multimap per p,
    // then canonicalize each key's value list into map-task order (stable,
    // so the in-task emission order survives). After this, reducers see
    // exactly the same value sequence on every run of the same input.
    let mut tagged: Vec<TaggedGroups<M::Key, M::Value>> =
        (0..config.reducers).map(|_| BTreeMap::new()).collect();
    for out in map_results {
        stats.input_records += out.records;
        stats.intermediate_pairs += out.pairs;
        for (p, pairs) in out.partitions.into_iter().enumerate() {
            for (task_id, k, v) in pairs {
                tagged[p].entry(k).or_default().push((task_id, v));
            }
        }
    }
    let shuffled: Vec<BTreeMap<M::Key, Vec<M::Value>>> = tagged
        .into_iter()
        .map(|m| {
            m.into_iter()
                .map(|(k, mut vs)| {
                    vs.sort_by_key(|(task_id, _)| *task_id);
                    (k, vs.into_iter().map(|(_, v)| v).collect())
                })
                .collect()
        })
        .collect();

    // ---- Reduce phase ----------------------------------------------------
    let (task_tx, task_rx) =
        channel::unbounded::<(usize, BTreeMap<M::Key, Vec<M::Value>>)>();
    for (p, m) in shuffled.into_iter().enumerate() {
        task_tx.send((p, m)).expect("channel open");
    }
    drop(task_tx);

    type ReduceOuts<K, V> = Vec<(usize, Vec<(K, V)>)>;
    let reduce_results: Vec<ReduceOuts<R::OutKey, R::OutValue>> =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..config.workers.min(config.reducers) {
                let task_rx = task_rx.clone();
                handles.push(scope.spawn(
                    move || -> Result<ReduceOuts<R::OutKey, R::OutValue>, BatchError> {
                        let mut outs = Vec::new();
                        while let Ok((p, groups)) = task_rx.recv() {
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let mut out = Vec::new();
                                    for (k, vs) in &groups {
                                        reducer.reduce(k, vs, &mut |ok, ov| out.push((ok, ov)));
                                    }
                                    out
                                }));
                            let out = result.map_err(|e| BatchError::TaskFailed {
                                task: format!("reduce-{p}"),
                                reason: panic_message(e.as_ref()),
                            })?;
                            outs.push((p, out));
                        }
                        Ok(outs)
                    },
                ));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker threads do not panic"))
                .collect::<Result<Vec<_>, _>>()
        })?;

    let mut outputs: Vec<Vec<(R::OutKey, R::OutValue)>> =
        (0..config.reducers).map(|_| Vec::new()).collect();
    for worker_outs in reduce_results {
        for (p, out) in worker_outs {
            stats.output_pairs += out.len() as u64;
            outputs[p] = out;
        }
    }
    Ok((outputs, stats))
}

fn run_combiner<K: Ord + Clone, V, C: Combiner<K, V> + ?Sized>(
    combiner: &C,
    pairs: Vec<(K, V)>,
) -> Vec<(K, V)> {
    let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for (k, v) in pairs {
        grouped.entry(k).or_default().push(v);
    }
    let mut out = Vec::new();
    for (k, vs) in grouped {
        for v in combiner.combine(&k, vs) {
            out.push((k.clone(), v));
        }
    }
    out
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// A no-op combiner for jobs that do not use one; pass
/// `None::<&NoCombiner>` to [`run_job`].
pub struct NoCombiner;

impl<K, V> Combiner<K, V> for NoCombiner {
    fn combine(&self, _key: &K, values: Vec<V>) -> Vec<V> {
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::DfsConfig;

    struct WordMapper;
    impl Mapper for WordMapper {
        type Key = String;
        type Value = u64;
        fn map(&self, record: &str, emit: &mut dyn FnMut(String, u64)) {
            for w in record.split_whitespace() {
                emit(w.to_string(), 1);
            }
        }
    }

    struct SumReducer;
    impl Reducer<String, u64> for SumReducer {
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, key: &String, values: &[u64], emit: &mut dyn FnMut(String, u64)) {
            emit(key.clone(), values.iter().sum());
        }
    }

    struct SumCombiner;
    impl Combiner<String, u64> for SumCombiner {
        fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.iter().sum()]
        }
    }

    fn dfs_with(text: &str) -> Dfs {
        let dfs = Dfs::new(DfsConfig { block_size: 32, replication: 1, datanodes: 2 }).unwrap();
        dfs.create("/in", text.as_bytes()).unwrap();
        dfs
    }

    fn collect(outputs: Vec<Vec<(String, u64)>>) -> BTreeMap<String, u64> {
        outputs.into_iter().flatten().collect()
    }

    #[test]
    fn word_count_end_to_end() {
        let dfs = dfs_with("the quick brown fox\nthe lazy dog\nthe fox again\n");
        let (out, stats) = run_job(
            &dfs,
            &["/in"],
            &WordMapper,
            &SumReducer,
            None::<&NoCombiner>,
            JobConfig { reducers: 3, workers: 2 },
        )
        .unwrap();
        let counts = collect(out);
        assert_eq!(counts["the"], 3);
        assert_eq!(counts["fox"], 2);
        assert_eq!(counts["dog"], 1);
        assert_eq!(stats.input_records, 3);
        assert!(stats.map_tasks >= 2, "small blocks force multiple map tasks");
        assert_eq!(stats.reduce_tasks, 3);
    }

    #[test]
    fn combiner_preserves_results_and_cuts_traffic() {
        let text = "a a a a a a a a\nb b b b\n".repeat(10);
        let dfs = dfs_with(&text);
        let cfg = JobConfig { reducers: 2, workers: 3 };
        let (out_plain, stats_plain) =
            run_job(&dfs, &["/in"], &WordMapper, &SumReducer, None::<&NoCombiner>, cfg).unwrap();
        let (out_comb, stats_comb) =
            run_job(&dfs, &["/in"], &WordMapper, &SumReducer, Some(&SumCombiner), cfg).unwrap();
        assert_eq!(collect(out_plain), collect(out_comb));
        assert!(
            stats_comb.intermediate_pairs < stats_plain.intermediate_pairs,
            "combiner must shrink the shuffle ({} vs {})",
            stats_comb.intermediate_pairs,
            stats_plain.intermediate_pairs
        );
    }

    #[test]
    fn multiple_input_files() {
        let dfs = dfs_with("x y\n");
        dfs.create("/in2", b"x z\n").unwrap();
        let (out, _) = run_job(
            &dfs,
            &["/in", "/in2"],
            &WordMapper,
            &SumReducer,
            None::<&NoCombiner>,
            JobConfig::default(),
        )
        .unwrap();
        let counts = collect(out);
        assert_eq!(counts["x"], 2);
        assert_eq!(counts["y"], 1);
        assert_eq!(counts["z"], 1);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let dfs = dfs_with("");
        let (out, stats) = run_job(
            &dfs,
            &["/in"],
            &WordMapper,
            &SumReducer,
            None::<&NoCombiner>,
            JobConfig::default(),
        )
        .unwrap();
        assert!(collect(out).is_empty());
        assert_eq!(stats.input_records, 0);
        assert_eq!(stats.map_tasks, 0);
    }

    #[test]
    fn missing_input_is_an_error() {
        let dfs = dfs_with("x\n");
        let err = run_job(
            &dfs,
            &["/does-not-exist"],
            &WordMapper,
            &SumReducer,
            None::<&NoCombiner>,
            JobConfig::default(),
        );
        assert!(matches!(err, Err(BatchError::FileNotFound(_))));
    }

    #[test]
    fn invalid_config_rejected() {
        let dfs = dfs_with("x\n");
        for cfg in [
            JobConfig { reducers: 0, workers: 1 },
            JobConfig { reducers: 1, workers: 0 },
        ] {
            let err =
                run_job(&dfs, &["/in"], &WordMapper, &SumReducer, None::<&NoCombiner>, cfg);
            assert!(matches!(err, Err(BatchError::InvalidJobConfig { .. })));
        }
    }

    struct PanickyMapper;
    impl Mapper for PanickyMapper {
        type Key = String;
        type Value = u64;
        fn map(&self, record: &str, _emit: &mut dyn FnMut(String, u64)) {
            if record.contains("boom") {
                panic!("bad record: {record}");
            }
        }
    }

    #[test]
    fn mapper_panic_becomes_task_failure() {
        let dfs = dfs_with("fine\nboom here\n");
        let err = run_job(
            &dfs,
            &["/in"],
            &PanickyMapper,
            &SumReducer,
            None::<&NoCombiner>,
            JobConfig { reducers: 1, workers: 1 },
        );
        match err {
            Err(BatchError::TaskFailed { task, reason }) => {
                assert!(task.starts_with("map-"));
                assert!(reason.contains("bad record"));
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    /// Float-summing reducer whose output exposes merge order: summing the
    /// same multiset of doubles in different orders flips low bits.
    struct FloatMapper;
    impl Mapper for FloatMapper {
        type Key = String;
        type Value = f64;
        fn map(&self, record: &str, emit: &mut dyn FnMut(String, f64)) {
            for (i, w) in record.split_whitespace().enumerate() {
                if let Ok(v) = w.parse::<f64>() {
                    emit(format!("k{}", i % 3), v);
                }
            }
        }
    }
    struct FloatSumReducer;
    impl Reducer<String, f64> for FloatSumReducer {
        type OutKey = String;
        type OutValue = f64;
        fn reduce(&self, key: &String, values: &[f64], emit: &mut dyn FnMut(String, f64)) {
            emit(key.clone(), values.iter().sum());
        }
    }

    #[test]
    fn float_reduction_is_byte_identical_across_runs() {
        // Many small splits + more workers than splits maximizes scheduling
        // freedom; irrational-ish values make the sum order-sensitive in the
        // low mantissa bits. The task-ordered shuffle must erase all of it.
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("{} {} {}\n", (i as f64).sqrt(), 1.0 / (i + 1) as f64, i));
        }
        let dfs = dfs_with(&text);
        let cfg = JobConfig { reducers: 3, workers: 8 };
        let reference: Vec<Vec<(String, u64)>> = {
            let (out, _) = run_job(
                &dfs,
                &["/in"],
                &FloatMapper,
                &FloatSumReducer,
                None::<&NoCombiner>,
                cfg,
            )
            .unwrap();
            out.into_iter()
                .map(|p| p.into_iter().map(|(k, v)| (k, v.to_bits())).collect())
                .collect()
        };
        for _ in 0..10 {
            let (out, _) = run_job(
                &dfs,
                &["/in"],
                &FloatMapper,
                &FloatSumReducer,
                None::<&NoCombiner>,
                cfg,
            )
            .unwrap();
            let bits: Vec<Vec<(String, u64)>> = out
                .into_iter()
                .map(|p| p.into_iter().map(|(k, v)| (k, v.to_bits())).collect())
                .collect();
            assert_eq!(bits, reference, "shuffle order leaked into float sums");
        }
    }

    #[test]
    fn same_key_lands_in_one_partition() {
        // Statistical sanity for the hash partitioner: every occurrence of
        // a key must reduce together (already implied by word_count, but
        // assert the partition function is deterministic).
        for reducers in [1, 2, 7] {
            let p1 = partition_of(&"delay-R17-8", reducers);
            let p2 = partition_of(&"delay-R17-8", reducers);
            assert_eq!(p1, p2);
            assert!(p1 < reducers);
        }
    }
}
