//! Batch-processing substrate: a MapReduce framework over a distributed-
//! filesystem analogue (the paper's Hadoop + HDFS layer, Section 2.1.3).
//!
//! The paper uses Hadoop for exactly one thing — periodically recomputing
//! per-(location, hour, day-type) statistics over the historical bus
//! traces stored in HDFS (Section 4.1.3) — but the framework here is a
//! faithful general-purpose miniature:
//!
//! * [`dfs`] — a block-structured filesystem: files are sequences of
//!   fixed-size blocks, each block placed on a configurable number of
//!   simulated datanodes (replication), with line-oriented readers so map
//!   tasks can each consume one block, exactly like HDFS input splits;
//! * [`mapreduce`] — `Mapper`/`Reducer`/`Combiner` traits and a job runner
//!   that executes map tasks in parallel (one per input block), hash-
//!   partitions intermediate pairs into a user-defined number of reduce
//!   tasks, sorts/groups per partition, runs reducers in parallel and
//!   returns (and optionally persists) the outputs.

pub mod dfs;
pub mod error;
pub mod mapreduce;

pub use dfs::{Dfs, DfsConfig, FileStatus};
pub use error::BatchError;
pub use mapreduce::{run_job, Combiner, JobConfig, JobStats, Mapper, Reducer};
