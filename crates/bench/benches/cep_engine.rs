//! Criterion microbenchmarks for the CEP engine hot path — the real
//! measurements behind Function 1 (per-tuple latency vs window length and
//! threshold count) and Function 2 (multi-rule engines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tms_core::rules::{LocationSelector, RuleSpec};
use tms_core::thresholds::{RetrievalMethod, RuleEngine};
use tms_storage::{DayType, StatRecord, TableStore, ThresholdStore};
use tms_traffic::{Attribute, BusTrace, EnrichedTrace};

fn store_with(locations: usize) -> (ThresholdStore, Vec<String>) {
    let store = ThresholdStore::new(TableStore::new());
    let names: Vec<String> = (0..locations).map(|i| format!("L{i}")).collect();
    let mut records = Vec::new();
    for n in &names {
        for hour in 0..24u8 {
            for day in [DayType::Weekday, DayType::Weekend] {
                records.push(StatRecord {
                    area_id: n.clone(),
                    hour,
                    day_type: day,
                    mean: 1e9,
                    stdv: 0.0,
                    count: 10,
                });
            }
        }
    }
    store.publish("delay", &records).unwrap();
    (store, names)
}

fn trace(i: usize, location: &str) -> EnrichedTrace {
    EnrichedTrace {
        trace: BusTrace {
            timestamp_ms: 8 * tms_traffic::HOUR_MS + i as u64 * 50,
            line_id: 1,
            direction: true,
            position: tms_geo::GeoPoint::new_unchecked(53.33, -6.26),
            delay_s: (i % 300) as f64,
            congestion: false,
            reported_stop: None,
            at_stop: false,
            vehicle_id: 1,
        },
        speed_kmh: Some(20.0),
        actual_delay_s: Some(1.0),
        areas: vec![location.to_string()],
        bus_stop: None,
    }
}

fn engine_with(windows: &[usize], locations: usize) -> (RuleEngine, Vec<String>) {
    let (store, names) = store_with(locations);
    let mut engine = RuleEngine::new(RetrievalMethod::ThresholdStream, store, None);
    for (i, &l) in windows.iter().enumerate() {
        let mut spec = rule_spec(i, l);
        spec.s = 0.0;
        engine.install_rule(&spec, names.iter().cloned()).unwrap();
    }
    // Fill the windows.
    let warm = windows.iter().copied().max().unwrap_or(1).min(1000) * locations.min(20);
    for i in 0..warm {
        engine.send_trace(&trace(i, &names[i % names.len()])).unwrap();
    }
    (engine, names)
}

fn rule_spec(i: usize, l: usize) -> RuleSpec {
    RuleSpec::new(
        format!("bench-{i}-l{l}"),
        Attribute::Delay,
        LocationSelector::QuadtreeLeaves,
        l,
    )
}

/// Function 1's first input: per-tuple cost vs window length.
fn bench_window_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("cep/send_trace_by_window");
    for l in [1usize, 10, 100, 1000] {
        let (mut engine, names) = engine_with(&[l], 10);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            b.iter(|| {
                i += 1;
                engine.send_trace(black_box(&trace(i, &names[i % names.len()]))).unwrap()
            })
        });
    }
    group.finish();
}

/// Function 1's second input: per-tuple cost vs threshold count.
fn bench_threshold_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("cep/send_trace_by_thresholds");
    for locations in [1usize, 10, 50] {
        let (mut engine, names) = engine_with(&[100], locations);
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::from_parameter(locations * 48),
            &locations,
            |b, _| {
                b.iter(|| {
                    i += 1;
                    engine.send_trace(black_box(&trace(i, &names[i % names.len()]))).unwrap()
                })
            },
        );
    }
    group.finish();
}

/// Function 2: per-tuple cost vs rule count.
fn bench_rule_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("cep/send_trace_by_rules");
    for rules in [1usize, 2, 5, 10] {
        let (mut engine, names) = engine_with(&vec![100; rules], 10);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, _| {
            b.iter(|| {
                i += 1;
                engine.send_trace(black_box(&trace(i, &names[i % names.len()]))).unwrap()
            })
        });
    }
    group.finish();
}

/// Ablation: the version-cached join index vs rebuilding per event. The
/// threshold `keepall` stream is what the cache exists for; with 50
/// locations (2400 threshold rows) the uncached engine pays O(t) per
/// tuple.
fn bench_join_cache_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cep/join_cache_ablation");
    for (name, enabled) in [("cached", true), ("uncached", false)] {
        let (mut engine, names) = engine_with(&[100], 50);
        engine.set_join_cache_enabled(enabled);
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                i += 1;
                engine.send_trace(black_box(&trace(i, &names[i % names.len()]))).unwrap()
            })
        });
    }
    group.finish();
}

/// Ablation: the delta-maintained incremental evaluation path vs the
/// full-window rescan. A single grouped avg+stddev statement over
/// `win:length(100)` — the rescan arm walks all 100 window events and
/// rebuilds every group's accumulators per tuple, while the incremental
/// arm applies the insert/evict delta in O(1).
fn bench_incremental_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cep/incremental_ablation");
    for (name, enabled) in [("incremental", true), ("rescan", false)] {
        let mut engine = tms_cep::Engine::new();
        engine
            .register_type(
                tms_cep::EventType::with_fields(
                    "bus",
                    &[
                        ("location", tms_cep::FieldType::Str),
                        ("delay", tms_cep::FieldType::Float),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        engine.set_incremental_enabled(enabled).unwrap();
        engine
            .create_statement(
                "SELECT w.location AS loc, avg(w.delay) AS m, stddev(w.delay) AS sd \
                 FROM bus.win:length(100) AS w GROUP BY w.location",
                Box::new(|_, rows| {
                    black_box(rows.len());
                }),
            )
            .unwrap();
        let locations: Vec<String> = (0..10).map(|i| format!("L{i}")).collect();
        let mut i = 0usize;
        let send = |engine: &mut tms_cep::Engine, i: usize| {
            let ev = engine
                .make_event(
                    "bus",
                    i as u64 * 50,
                    &[
                        ("location", locations[i % locations.len()].as_str().into()),
                        ("delay", ((i % 300) as f64).into()),
                    ],
                )
                .unwrap();
            engine.send_event(ev).unwrap();
        };
        // Fill the window so eviction deltas flow from the first sample.
        for _ in 0..200 {
            i += 1;
            send(&mut engine, i);
        }
        group.bench_function(name, |b| {
            b.iter(|| {
                i += 1;
                send(&mut engine, black_box(i));
            })
        });
    }
    group.finish();
}

/// EPL front-end: parsing + compiling a Listing 1 statement.
fn bench_statement_compile(c: &mut Criterion) {
    let epl = rule_spec(0, 100).to_epl();
    c.bench_function("cep/parse_statement", |b| {
        b.iter(|| tms_cep::parse_statement(black_box(&epl)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_window_length, bench_threshold_count, bench_rule_count, bench_join_cache_ablation, bench_incremental_ablation, bench_statement_compile
}
criterion_main!(benches);
