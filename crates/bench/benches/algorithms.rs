//! Criterion microbenchmarks for the paper's algorithms: rule
//! partitioning (Algorithm 1), rules allocation (Algorithm 2), the
//! polynomial regression fit, and the spatial substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tms_core::allocation::{allocate, Grouping};
use tms_core::latency::{EstimationModel, PolyModel};
use tms_core::partitioning::{partition_rule, RegionRate};
use tms_core::rules::{LocationSelector, RuleSpec};
use tms_geo::{Denclue, DenclueConfig, GeoPoint, QuadtreeConfig, RegionQuadtree, DUBLIN_BBOX};
use tms_traffic::Attribute;

fn regions(n: usize, seed: u64) -> Vec<RegionRate> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| RegionRate { region: format!("R{i}"), rate: rng.random_range(1.0..500.0) })
        .collect()
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms/partition_rule");
    for n in [64usize, 512, 4096] {
        let rs = regions(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| partition_rule(black_box(&rs), 16).unwrap())
        });
    }
    group.finish();
}

fn bench_allocate(c: &mut Criterion) {
    let model = EstimationModel::default_paper_shaped();
    let groupings: Vec<Grouping> = (0..4)
        .map(|g| Grouping {
            name: format!("g{g}"),
            layers: vec![g as u8],
            rules: (0..5)
                .map(|i| {
                    RuleSpec::new(
                        format!("r{g}-{i}"),
                        Attribute::Delay,
                        LocationSelector::QuadtreeLeaves,
                        100,
                    )
                })
                .collect(),
            regions: regions(64, g as u64),
            thresholds: vec![64 * 48; 5],
        })
        .collect();
    c.bench_function("algorithms/allocate_30_engines", |b| {
        b.iter(|| allocate(black_box(&model), black_box(&groupings), 30).unwrap())
    });
}

fn bench_polyfit(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let samples: Vec<(Vec<f64>, f64)> = (0..200)
        .map(|_| {
            let x1 = rng.random_range(0.0..100.0);
            let x2 = rng.random_range(0.0..100.0);
            (vec![x1, x2], 1.0 + 0.5 * x1 + 0.25 * x2 + rng.random_range(-0.1..0.1))
        })
        .collect();
    let mut group = c.benchmark_group("algorithms/polyfit");
    for degree in [1u8, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, &d| {
            b.iter(|| PolyModel::fit(black_box(&samples), d).unwrap())
        });
    }
    group.finish();
}

fn bench_quadtree(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let seeds: Vec<GeoPoint> = (0..500)
        .map(|_| {
            GeoPoint::new_unchecked(
                rng.random_range(53.21..53.41),
                rng.random_range(-6.44..-6.06),
            )
        })
        .collect();
    let tree = RegionQuadtree::build(
        DUBLIN_BBOX,
        &seeds,
        QuadtreeConfig { max_points_per_region: 8, max_depth: 10 },
    )
    .unwrap();
    let probes: Vec<GeoPoint> = (0..1000)
        .map(|_| {
            GeoPoint::new_unchecked(
                rng.random_range(53.21..53.41),
                rng.random_range(-6.44..-6.06),
            )
        })
        .collect();
    let mut i = 0usize;
    c.bench_function("geo/quadtree_locate_all_layers", |b| {
        b.iter(|| {
            i = (i + 1) % probes.len();
            black_box(tree.locate_all_layers(&probes[i]).len())
        })
    });
}

fn bench_denclue(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut points = Vec::new();
    for cluster in 0..10 {
        let center = GeoPoint::new_unchecked(53.25 + cluster as f64 * 0.015, -6.30);
        for _ in 0..100 {
            points.push(center.destination(rng.random_range(0.0..360.0), rng.random_range(0.0..25.0)));
        }
    }
    let engine = Denclue::new(DenclueConfig::default()).unwrap();
    c.bench_function("geo/denclue_1000_points", |b| {
        b.iter(|| engine.cluster(black_box(&points)).unwrap().clusters.len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_partition, bench_allocate, bench_polyfit, bench_quadtree, bench_denclue
}
criterion_main!(benches);
