//! Criterion benchmarks for the DSPS data plane: tuples/second through a
//! two-stage topology for each grouping, with and without the acker, in
//! per-tuple and micro-batched delivery modes.
//!
//! The matching experiment snapshot (`experiments -- bench_snapshot`)
//! writes `BENCH_dsps_throughput.json`; this bench is the
//! statistically-sampled view of the same pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tms_dsps::runtime::{BatchConfig, LocalCluster, ReliabilityConfig, RuntimeConfig};
use tms_dsps::scheduler::ClusterSpec;
use tms_dsps::topology::{Parallelism, TopologyBuilder};
use tms_dsps::{Bolt, Emitter, Grouping, Spout};

const TUPLES: u64 = 4000;

#[derive(Clone)]
struct Msg {
    key: u64,
    value: u64,
}

struct RangeSpout {
    next: u64,
    end: u64,
}
impl Spout<Msg> for RangeSpout {
    fn next(&mut self) -> Option<Msg> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        Some(Msg { key: v % 13, value: v })
    }
}

struct NullSink;
impl Bolt<Msg> for NullSink {
    fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
        std::hint::black_box(msg.value);
    }
}

fn grouping(name: &str) -> Grouping<Msg> {
    match name {
        "shuffle" => Grouping::Shuffle,
        "fields" => Grouping::fields_hashed(|m: &Msg| m.key),
        "all" => Grouping::All,
        other => panic!("unknown grouping {other}"),
    }
}

/// One spout task fanning into four sink tasks; returns after the
/// topology drains all [`TUPLES`] emissions.
fn run_once(g: &str, reliable: bool, batch: Option<BatchConfig>) {
    let t = TopologyBuilder::new("bench")
        .add_spout("src", Parallelism::of(1), |_| {
            Box::new(RangeSpout { next: 0, end: TUPLES })
        })
        .add_bolt("sink", Parallelism::of(4), vec![("src", grouping(g))], |_| {
            Box::new(NullSink)
        })
        .build()
        .unwrap();
    let cluster =
        LocalCluster::new(ClusterSpec { nodes: 2, slots_per_node: 2, cores_per_node: 4 }).unwrap();
    let cfg = RuntimeConfig {
        batch,
        reliability: reliable.then(ReliabilityConfig::default),
        ..RuntimeConfig::default()
    };
    cluster.submit(t, cfg).unwrap().join().unwrap();
}

fn bench_emit_throughput(c: &mut Criterion) {
    let batched = Some(BatchConfig { max_batch: 128, max_linger: Duration::from_millis(1) });
    let mut group = c.benchmark_group("dsps/emit_throughput");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for g in ["shuffle", "fields", "all"] {
        for (rel_name, reliable) in [("at_most_once", false), ("at_least_once", true)] {
            group.bench_function(
                BenchmarkId::new(format!("{g}/per_tuple"), rel_name),
                |b| b.iter(|| run_once(g, reliable, None)),
            );
            group.bench_function(
                BenchmarkId::new(format!("{g}/batched"), rel_name),
                |b| b.iter(|| run_once(g, reliable, batched)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500));
    targets = bench_emit_throughput
}
criterion_main!(benches);
