//! Criterion benchmarks for the surrounding pipeline: fleet generation,
//! the MapReduce statistics job, the threshold query, and the cluster
//! simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tms_batch::{Dfs, DfsConfig};
use tms_core::offline::{enrich_and_store, run_statistics_job, stop_observations, OfflineConfig};
use tms_core::rules::SpatialContext;
use tms_geo::{busstops::SubclusterConfig, BusStopIndex, DenclueConfig, QuadtreeConfig, RegionQuadtree, DUBLIN_BBOX};
use tms_sim::{simulate, EngineSpec, SimConfig};
use tms_storage::{TableStore, ThresholdQuery, ThresholdStore};
use tms_traffic::{BusTrace, FleetConfig, FleetGenerator, HOUR_MS};

fn small_day() -> Vec<BusTrace> {
    FleetGenerator::new(FleetConfig::small(77), 0)
        .unwrap()
        .take_while(|t| t.timestamp_ms < 9 * HOUR_MS)
        .collect()
}

fn spatial() -> SpatialContext {
    let generator = FleetGenerator::new(FleetConfig::small(77), 0).unwrap();
    let seeds = generator.route_seed_points();
    let quadtree = RegionQuadtree::build(
        DUBLIN_BBOX,
        &seeds,
        QuadtreeConfig { max_points_per_region: 16, max_depth: 7 },
    )
    .unwrap();
    let traces = small_day();
    let stops = BusStopIndex::build(
        &stop_observations(&traces),
        DenclueConfig::default(),
        SubclusterConfig::default(),
    )
    .unwrap();
    SpatialContext { quadtree, stops }
}

fn bench_fleet_generation(c: &mut Criterion) {
    c.bench_function("traffic/generate_one_hour_small_fleet", |b| {
        b.iter(|| {
            FleetGenerator::new(FleetConfig::small(7), 0)
                .unwrap()
                .take_while(|t| t.timestamp_ms < 7 * HOUR_MS)
                .count()
        })
    });
}

fn bench_statistics_job(c: &mut Criterion) {
    let ctx = spatial();
    let traces = small_day();
    let dfs = Dfs::new(DfsConfig { block_size: 1 << 20, replication: 1, datanodes: 4 }).unwrap();
    enrich_and_store(&traces, &ctx, &dfs, "/history.csv").unwrap();
    c.bench_function("batch/statistics_job_3h_small_fleet", |b| {
        b.iter(|| {
            let store = TableStore::new();
            run_statistics_job(
                black_box(&dfs),
                &["/history.csv"],
                &store,
                &OfflineConfig::default(),
            )
            .unwrap()
            .len()
        })
    });
}

fn bench_threshold_query(c: &mut Criterion) {
    let ctx = spatial();
    let traces = small_day();
    let dfs = Dfs::with_defaults();
    enrich_and_store(&traces, &ctx, &dfs, "/history.csv").unwrap();
    let store = TableStore::new();
    run_statistics_job(&dfs, &["/history.csv"], &store, &OfflineConfig::default()).unwrap();
    let ts = ThresholdStore::new(store);
    let q = ThresholdQuery { attribute: "delay".into(), s: 1.0 };
    c.bench_function("storage/threshold_snapshot_query", |b| {
        b.iter(|| ts.thresholds(black_box(&q)).unwrap().len())
    });
}

fn bench_simulator(c: &mut Criterion) {
    let engines: Vec<EngineSpec> = (0..30)
        .map(|i| EngineSpec { service_ms: 0.5 + (i % 5) as f64 * 0.2, input_rate: 2000.0 })
        .collect();
    c.bench_function("sim/fluid_40s_30_engines", |b| {
        b.iter(|| {
            simulate(
                black_box(&engines),
                SimConfig { nodes: 7, cores_per_node: 1, ..SimConfig::default() },
            )
            .unwrap()
            .total_throughput
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fleet_generation, bench_statistics_job, bench_threshold_query, bench_simulator
}
criterion_main!(benches);
