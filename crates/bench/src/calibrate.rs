//! Real-engine latency measurement — the data behind the regression
//! model (Section 4.1.4).
//!
//! The paper "ran several experiments in order to build the appropriate
//! dataset" before fitting the three functions. We do the same against
//! our CEP engine: stand up a [`RuleEngine`] with a Listing 1 rule of
//! window `l` joining `t` thresholds, replay traces through it, and time
//! the per-tuple cost.

use std::time::Instant;
use tms_core::rules::{LocationSelector, RuleSpec};
use tms_core::thresholds::{RetrievalMethod, RuleEngine};
use tms_storage::{DayType, StatRecord, TableStore, ThresholdStore};
use tms_traffic::{Attribute, BusTrace, EnrichedTrace};

/// The measurement grid for Function 1 (window lengths × threshold
/// counts, per Tables 3 and 6).
#[derive(Debug, Clone)]
pub struct CalibrationGrid {
    pub windows: Vec<usize>,
    pub threshold_counts: Vec<usize>,
    /// Tuples replayed per measurement (after warm-up).
    pub tuples: usize,
}

impl Default for CalibrationGrid {
    fn default() -> Self {
        CalibrationGrid {
            windows: vec![1, 10, 100, 1000],
            threshold_counts: vec![48, 480, 2400],
            tuples: 2_000,
        }
    }
}

fn synthetic_trace(i: usize, location: &str) -> EnrichedTrace {
    EnrichedTrace {
        trace: BusTrace {
            timestamp_ms: 8 * tms_traffic::HOUR_MS + i as u64 * 50,
            line_id: 1,
            direction: true,
            position: tms_geo::GeoPoint::new_unchecked(53.33, -6.26),
            delay_s: (i % 400) as f64,
            congestion: false,
            reported_stop: None,
            at_stop: false,
            vehicle_id: 1,
        },
        speed_kmh: Some(20.0),
        actual_delay_s: Some(1.0),
        areas: vec![location.to_string()],
        bus_stop: None,
    }
}

/// Builds a threshold store with `t` cells spread over `t / 48` locations
/// (48 = 24 hours × 2 day types, the paper's statistics granularity).
fn store_with_thresholds(t: usize) -> (ThresholdStore, Vec<String>) {
    let locations = (t / 48).max(1);
    let store = ThresholdStore::new(TableStore::new());
    let mut records = Vec::with_capacity(t);
    let mut names = Vec::with_capacity(locations);
    for loc in 0..locations {
        let area = format!("L{loc}");
        names.push(area.clone());
        for hour in 0..24u8 {
            for day in [DayType::Weekday, DayType::Weekend] {
                records.push(StatRecord {
                    area_id: area.clone(),
                    hour,
                    day_type: day,
                    // High threshold so the rule never fires during the
                    // measurement (firing cost is a separate matter).
                    mean: 1.0e9,
                    stdv: 0.0,
                    count: 100,
                });
            }
        }
    }
    store.publish("delay", &records).expect("publishing synthetic thresholds");
    (store, names)
}

fn rule(l: usize) -> RuleSpec {
    let mut r = RuleSpec::new(
        format!("cal-l{l}"),
        Attribute::Delay,
        LocationSelector::QuadtreeLeaves,
        l,
    );
    r.s = 0.0;
    r
}

/// Which engine configuration a measurement runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Sharing planner on (clusters served from shared bank/index state),
    /// incremental paths on — the engine's default configuration.
    Shared,
    /// Sharing off, per-statement incremental evaluation on — the
    /// configuration the latency regression model (Function 1) is
    /// calibrated against, where cost grows with window length.
    Incremental,
    /// Sharing and incremental off: every arrival rescans (the
    /// pre-optimization baseline).
    Rescan,
}

/// Measures the average per-tuple latency (ms) of one rule with window
/// `l` joining `t` thresholds — a Function 1 sample.
pub fn measure_rule_latency(l: usize, t: usize, tuples: usize) -> f64 {
    measure_engine_latency(&[l], t, tuples)
}

/// Measures the average per-tuple latency (ms) of an engine running one
/// rule per entry of `windows`, each joining `t` thresholds — Function 2
/// samples come from calling this with two windows.
///
/// Runs in [`EngineMode::Incremental`]: the regression model predicts
/// *per-rule, window-length-dependent* cost, so calibration keeps the
/// sharing planner (which flattens exactly that dependence) off.
///
/// Takes the **median of three runs**: one descheduling hiccup would
/// otherwise poison the regression fit (and, through the sequential F2
/// fold, everything downstream).
pub fn measure_engine_latency(windows: &[usize], t: usize, tuples: usize) -> f64 {
    measure_engine_latency_in_mode(windows, t, tuples, EngineMode::Incremental)
}

/// Like [`measure_engine_latency`], but selecting the engine's evaluation
/// mode: `incremental = false` forces full-window rescans, so the latency
/// model can be recalibrated under either ablation arm.
pub fn measure_engine_latency_with_mode(
    windows: &[usize],
    t: usize,
    tuples: usize,
    incremental: bool,
) -> f64 {
    let mode = if incremental { EngineMode::Incremental } else { EngineMode::Rescan };
    measure_engine_latency_in_mode(windows, t, tuples, mode)
}

/// Like [`measure_engine_latency`], but under an explicit [`EngineMode`]
/// (median of three runs).
pub fn measure_engine_latency_in_mode(
    windows: &[usize],
    t: usize,
    tuples: usize,
    mode: EngineMode,
) -> f64 {
    let mut runs = [
        measure_engine_latency_once(windows, t, tuples, mode),
        measure_engine_latency_once(windows, t, tuples, mode),
        measure_engine_latency_once(windows, t, tuples, mode),
    ];
    runs.sort_by(f64::total_cmp);
    runs[1]
}

fn measure_engine_latency_once(
    windows: &[usize],
    t: usize,
    tuples: usize,
    mode: EngineMode,
) -> f64 {
    let (store, locations) = store_with_thresholds(t);
    let mut engine = RuleEngine::new(RetrievalMethod::ThresholdStream, store, None);
    engine
        .set_sharing_enabled(mode == EngineMode::Shared)
        .expect("selecting sharing mode");
    engine
        .set_incremental_enabled(mode != EngineMode::Rescan)
        .expect("selecting evaluation mode");
    let specs: Vec<RuleSpec> = windows
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let mut spec = rule(l);
            spec.name = format!("cal-{i}-l{l}");
            spec
        })
        .collect();
    if mode == EngineMode::Shared {
        // Batch install: all statements stand before the first threshold
        // event, so their windows are pristine and the planner can share.
        engine
            .install_rules(&specs, locations.iter().cloned())
            .expect("installing calibration rules");
    } else {
        // Sequential install — the exact conditions the committed private
        // baselines were measured under.
        for spec in &specs {
            engine
                .install_rule(spec, locations.iter().cloned())
                .expect("installing calibration rule");
        }
    }
    // Warm-up: fill every location's groupwin pane to its window length,
    // so the steady-state per-tuple cost is what gets measured (capped to
    // keep calibration runs short; panes at the cap are representative).
    let max_window = windows.iter().copied().max().unwrap_or(1);
    let warmup = (max_window * locations.len()).min(60_000);
    for i in 0..warmup {
        let loc = &locations[i % locations.len()];
        engine.send_trace(&synthetic_trace(i, loc)).expect("warm-up trace");
    }
    let start = Instant::now();
    for i in 0..tuples {
        let loc = &locations[i % locations.len()];
        engine.send_trace(&synthetic_trace(warmup + i, loc)).expect("measured trace");
    }
    let elapsed = start.elapsed();
    elapsed.as_secs_f64() * 1000.0 / tuples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_window_length() {
        let small = measure_rule_latency(1, 48, 300);
        let big = measure_rule_latency(1000, 48, 300);
        assert!(small > 0.0);
        assert!(
            big > small,
            "window 1000 ({big} ms) should cost more than window 1 ({small} ms)"
        );
    }

    #[test]
    fn two_rules_cost_more_than_one() {
        let one = measure_engine_latency(&[100], 48, 300);
        let two = measure_engine_latency(&[100, 100], 48, 300);
        assert!(two > one, "two rules {two} vs one {one}");
    }
}
