//! Shared infrastructure for the experiment harness: real-engine latency
//! calibration, result tables and JSON output.

pub mod calibrate;
pub mod report;

pub use calibrate::{
    measure_engine_latency, measure_engine_latency_with_mode, measure_rule_latency,
    CalibrationGrid,
};
pub use report::{print_series, print_table, ExperimentResult, Series};
