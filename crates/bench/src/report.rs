//! Result rendering: aligned text tables (the rows/series the paper's
//! tables and figures report) plus machine-readable JSON dumps so
//! EXPERIMENTS.md numbers can be regenerated and diffed.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// One named data series (a figure line): x values with y values.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    pub name: String,
    pub x: Vec<f64>,
    pub y: Vec<f64>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Self {
        Series { name: name.into(), x: Vec::new(), y: Vec::new() }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.x.push(x);
        self.y.push(y);
    }
}

/// A complete experiment result: identifies the paper artifact it
/// regenerates and carries its series/rows.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// e.g. `fig11`, `table2`.
    pub id: String,
    /// Human description.
    pub title: String,
    /// Data series (figures).
    pub series: Vec<Series>,
    /// Key/value facts (tables).
    pub facts: Vec<(String, String)>,
}

impl ExperimentResult {
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentResult { id: id.into(), title: title.into(), series: Vec::new(), facts: Vec::new() }
    }

    pub fn fact(&mut self, key: impl Into<String>, value: impl ToString) {
        self.facts.push((key.into(), value.to_string()));
    }

    /// Writes the result as JSON under `dir/<id>.json`.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let json = serde_json::to_string_pretty(self).expect("results serialize");
        f.write_all(json.as_bytes())
    }
}

/// Prints an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Prints series as a table with x in the first column.
pub fn print_series(title: &str, x_label: &str, series: &[Series]) {
    let mut headers = vec![x_label.to_string()];
    headers.extend(series.iter().map(|s| s.name.clone()));
    let n = series.iter().map(|s| s.x.len()).max().unwrap_or(0);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::with_capacity(headers.len());
        let x = series.iter().find_map(|s| s.x.get(i)).copied().unwrap_or(f64::NAN);
        row.push(format_num(x));
        for s in series {
            row.push(s.y.get(i).map(|v| format_num(*v)).unwrap_or_default());
        }
        rows.push(row);
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(title, &header_refs, &rows);
}

/// Compact numeric formatting: integers as integers, floats to 3 s.f.
pub fn format_num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_and_result_accumulate() {
        let mut s = Series::new("ours");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.x, vec![1.0, 2.0]);
        let mut r = ExperimentResult::new("figX", "demo");
        r.series.push(s);
        r.fact("buses", 911);
        assert_eq!(r.facts[0].1, "911");
    }

    #[test]
    fn json_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("tms-bench-test");
        let r = ExperimentResult::new("t", "demo");
        r.save_json(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert!(body.contains("\"id\": \"t\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn num_formatting() {
        assert_eq!(format_num(42.0), "42");
        assert_eq!(format_num(1234.567), "1234.6");
        assert_eq!(format_num(5.4321), "5.43");
        assert_eq!(format_num(0.01234), "0.0123");
    }
}
