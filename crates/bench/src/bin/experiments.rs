//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section 5).
//!
//! ```text
//! cargo run --release -p tms-bench --bin experiments -- all
//! cargo run --release -p tms-bench --bin experiments -- fig11
//! ```
//!
//! Results print as aligned tables and are saved as JSON under
//! `results/`. Absolute numbers differ from the paper (its testbed was 7
//! VMs running Storm/Esper/Hadoop; ours is a from-scratch re-implementation
//! plus a calibrated simulator) — the *shapes* are the reproduction
//! target, as recorded in EXPERIMENTS.md.

use std::path::PathBuf;
use tms_bench::calibrate::{
    measure_engine_latency, measure_engine_latency_in_mode, measure_rule_latency, EngineMode,
};
use tms_bench::report::{format_num, print_series, print_table, ExperimentResult, Series};
use tms_core::allocation::{allocate, round_robin, Grouping};
use tms_core::latency::{EstimationModel, PolyModel};
use tms_core::partitioning::RegionRate;
use tms_core::rules::{LocationSelector, RuleSpec};
use tms_core::system::SystemConfig;
use tms_core::thresholds::{RetrievalMethod, RuleEngine};
use tms_core::TrafficSystem;
use tms_sim::{
    simulate, ChaosSpec, KappaSpec, MonitorSpec, PartitioningApproach, ScaleoutSpec,
    ScenarioBuilder, SimConfig,
};
use tms_storage::{DayType, RemoteDb, StatRecord, TableStore, ThresholdStore};
use tms_traffic::{Attribute, FleetConfig, FleetGenerator};

fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

fn main() {
    // Scale-out worker processes re-execute this binary with the worker
    // environment set; divert to the worker entry before argument parsing.
    if tms_dsps::net::worker_scenario().is_some() {
        scaleout_worker();
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let t0 = std::time::Instant::now();
    match which {
        "table1" => table1(),
        "table2" => table2(),
        "table6" => table6(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12_13" => fig12_13(),
        "fig14_15" => fig14_15(),
        "fig16_17" => fig16_17(),
        "bench_snapshot" | "--bench-snapshot" => bench_snapshot(),
        "bench_guard" => bench_guard(),
        "lineage" => lineage(),
        "lineage_guard" => lineage_guard(),
        "rebalance" => rebalance(),
        "rebalance_guard" => rebalance_guard(),
        "drift" => drift(),
        "profile" => profile(),
        "staleness" => staleness(),
        "staleness_guard" => staleness_guard(),
        "scaleout" => scaleout(),
        "scaleout_guard" => scaleout_guard(),
        "all" => {
            table1();
            table2();
            table6();
            fig9();
            fig10();
            fig11();
            fig12_13();
            fig14_15();
            fig16_17();
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected one of: table1 table2 table6 \
                 fig9 fig10 fig11 fig12_13 fig14_15 fig16_17 bench_snapshot bench_guard \
                 lineage lineage_guard rebalance rebalance_guard drift profile staleness \
                 staleness_guard scaleout scaleout_guard all"
            );
            std::process::exit(2);
        }
    }
    println!("\n(done in {:.1}s; JSON in {:?})", t0.elapsed().as_secs_f64(), results_dir());
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

/// Table 1: the bus tuple schema.
fn table1() {
    let mut result = ExperimentResult::new("table1", "Table 1: description of the dataset");
    let rows = vec![
        vec!["Timestamp".into(), "the time of the measurement".into()],
        vec!["LineId".into(), "the line of the bus".into()],
        vec!["Direction".into(), "true or false".into()],
        vec!["GPS position".into(), "Longitude and Latitude of the bus".into()],
        vec!["Delay".into(), "seconds relative to schedule".into()],
        vec!["Congestion".into(), "true or false".into()],
        vec!["Bus Stop".into(), "the id of the closest bus stop".into()],
        vec!["Vehicle Id".into(), "distinguishes different buses".into()],
    ];
    print_table("Table 1: bus tuple attributes (model::BusTrace)", &["Attribute", "Description"], &rows);
    for r in &rows {
        result.fact(r[0].clone(), r[1].clone());
    }
    result.save_json(&results_dir()).expect("writing results");
}

/// Table 2: the dataset properties — regenerated from one simulated day.
fn table2() {
    let config = FleetConfig::default();
    let gen = FleetGenerator::new(config.clone(), 0).expect("default fleet config is valid");
    let expected = gen.expected_count();
    let mut lines: u64 = 0;
    let mut bytes: u64 = 0;
    let mut vehicles = std::collections::HashSet::new();
    let mut line_ids = std::collections::HashSet::new();
    let (mut min_ts, mut max_ts) = (u64::MAX, 0u64);
    for t in gen {
        lines += 1;
        bytes += tms_traffic::csv::to_csv_line(&t).len() as u64 + 1;
        vehicles.insert(t.vehicle_id);
        line_ids.insert(t.line_id);
        min_ts = min_ts.min(t.timestamp_ms);
        max_ts = max_ts.max(t.timestamp_ms);
    }
    let per_bus_per_min =
        lines as f64 / vehicles.len() as f64 / ((max_ts - min_ts) as f64 / 60000.0);
    let mb = bytes as f64 / 1e6;
    let rows = vec![
        vec!["Number of buses".into(), "911".into(), vehicles.len().to_string()],
        vec!["Size of data".into(), "160 MB per day".into(), format!("{mb:.0} MB per day")],
        vec!["Number of lines".into(), "67".into(), line_ids.len().to_string()],
        vec![
            "Data frequency".into(),
            "3 tuples/min per bus".into(),
            format!("{per_bus_per_min:.2} tuples/min per bus"),
        ],
        vec![
            "Time interval".into(),
            "6am till 3am".into(),
            format!(
                "{:02}:00 till {:02}:00 (+1d)",
                min_ts / tms_traffic::HOUR_MS,
                (max_ts / tms_traffic::HOUR_MS) % 24 + 1
            ),
        ],
        vec!["Traces generated".into(), "-".into(), lines.to_string()],
    ];
    print_table("Table 2: dataset properties (paper vs generated)", &["Property", "Paper", "Generated"], &rows);
    assert_eq!(lines, expected, "generator must hit its advertised count");
    let mut result = ExperimentResult::new("table2", "Table 2: dataset properties");
    for r in &rows {
        result.fact(r[0].clone(), format!("paper={} generated={}", r[1], r[2]));
    }
    result.save_json(&results_dir()).expect("writing results");
}

/// Table 6: the generic rule template's parameter grid.
fn table6() {
    let rows = vec![
        vec![
            "Attribute".into(),
            "Delay, Actual Delay, Speed, Delay and Congestion, All".into(),
        ],
        vec!["Location".into(), "Bus Stops and Quadtree Areas".into()],
        vec!["Window Length".into(), "1, 10, 100, 1000".into()],
    ];
    print_table("Table 6: generic rule template parameters", &["Parameter", "Values"], &rows);
    // Instantiate the full grid to prove every combination compiles.
    let mut count = 0;
    for attr in Attribute::ALL {
        for loc in [LocationSelector::QuadtreeLeaves, LocationSelector::BusStops] {
            for l in [1usize, 10, 100, 1000] {
                let r = RuleSpec::new(format!("t6-{count}"), attr, loc.clone(), l);
                tms_cep::parse_statement(&r.to_epl()).expect("Table 6 rule parses");
                count += 1;
            }
        }
    }
    let mut result = ExperimentResult::new("table6", "Table 6: rule template parameters");
    result.fact("instantiated rules", count);
    result.save_json(&results_dir()).expect("writing results");
    println!("({count} template instantiations parsed)");
}

// ---------------------------------------------------------------------------
// Figure 9 + Section 5.1: the regression model
// ---------------------------------------------------------------------------

fn fig9() {
    println!("\n== Figure 9 / §5.1: Multiple-Rules latency function (regression) ==");
    // Measure single-rule latencies for the Table 6 window grid.
    let windows = [1usize, 10, 100, 1000];
    let t = 480; // 10 locations × 48 cells
    let tuples = 800;
    let mut singles = Vec::new();
    for &l in &windows {
        let ms = measure_rule_latency(l, t, tuples);
        singles.push((l, ms));
    }
    print_table(
        "Function 1 samples: single-rule latency",
        &["window l", "latency (ms/tuple)"],
        &singles.iter().map(|&(l, ms)| vec![l.to_string(), format_num(ms)]).collect::<Vec<_>>(),
    );

    // Function 2 dataset: engine latency for every pair of windows.
    let mut samples: Vec<(Vec<f64>, f64)> = Vec::new();
    let mut rows = Vec::new();
    for &(l1, lat1) in &singles {
        for &(l2, lat2) in &singles {
            let engine = measure_engine_latency(&[l1, l2], t, tuples);
            samples.push((vec![lat1, lat2], engine));
            rows.push(vec![
                l1.to_string(),
                l2.to_string(),
                format_num(lat1),
                format_num(lat2),
                format_num(engine),
            ]);
        }
    }
    print_table(
        "Function 2 samples: two-rule engine latency (the Figure 9 surface)",
        &["l1", "l2", "latency1 (ms)", "latency2 (ms)", "engine (ms)"],
        &rows,
    );

    // Train/test split (the paper "splitted it in training and test
    // set"): every fourth grid point is held out, leaving a training set
    // that still spans both axes.
    let train: Vec<_> = samples
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 4 != 3)
        .map(|(_, s)| s.clone())
        .collect();
    let test: Vec<_> = samples
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 4 == 3)
        .map(|(_, s)| s.clone())
        .collect();
    let m1 = PolyModel::fit(&train, 1).expect("degree-1 fit");
    let m2 = PolyModel::fit(&train, 2).expect("degree-2 fit");
    let e1 = m1.mean_abs_error(&test).expect("MAE");
    let e2 = m2.mean_abs_error(&test).expect("MAE");
    print_table(
        "Polynomial order comparison (paper: 1st order ~60% lower error)",
        &["order", "test MAE (ms)", "coefficients"],
        &[
            vec!["1".into(), format_num(e1), format!("{:?}", m1.coefficients)],
            vec!["2".into(), format_num(e2), format!("{:?}", m2.coefficients)],
        ],
    );
    println!(
        "1st order {} 2nd order on held-out pairs ({}% difference)",
        if e1 <= e2 { "beats" } else { "LOSES TO" },
        format_num(((e2 - e1) / e2 * 100.0).abs()),
    );

    let mut result = ExperimentResult::new("fig9", "Figure 9: multiple-rules latency function");
    let mut surface = Series::new("engine_latency_ms");
    for (i, (_, y)) in samples.iter().enumerate() {
        surface.push(i as f64, *y);
    }
    result.series.push(surface);
    result.fact("mae_order1_ms", format_num(e1));
    result.fact("mae_order2_ms", format_num(e2));
    result.fact("order1_coefficients", format!("{:?}", m1.coefficients));
    result.save_json(&results_dir()).expect("writing results");
}

// ---------------------------------------------------------------------------
// Figure 10: threshold retrieval methods
// ---------------------------------------------------------------------------

fn fig10() {
    println!("\n== Figure 10: retrieving location thresholds (real engines) ==");
    let locations = 20usize;
    let tuples = 6_000usize;
    let bucket = 500usize;
    // Simulated MySQL round trip. The paper's Figure 10(a) shows the
    // per-tuple SQL join costing ~40–60 ms against ~5 ms for the
    // multiple-rules method, i.e. their LAN MySQL round trip dominated
    // everything; 2 ms per query is a conservative stand-in that keeps
    // the published ordering (see EXPERIMENTS.md for the sensitivity
    // discussion).
    let round_trip = std::time::Duration::from_millis(2);

    // Statistics: `locations` areas × 48 cells, thresholds high enough
    // that rules rarely fire (the retrieval cost is what is measured).
    let store = ThresholdStore::new(TableStore::new());
    let mut records = Vec::new();
    let names: Vec<String> = (0..locations).map(|i| format!("L{i}")).collect();
    for name in &names {
        for hour in 0..24u8 {
            for day in [DayType::Weekday, DayType::Weekend] {
                records.push(StatRecord {
                    area_id: name.clone(),
                    hour,
                    day_type: day,
                    mean: 1e9,
                    stdv: 0.0,
                    count: 100,
                });
            }
        }
    }
    store.publish("delay", &records).expect("publishing thresholds");

    let methods: Vec<(&str, RetrievalMethod)> = vec![
        ("Join With SQL", RetrievalMethod::JoinWithDatabase),
        ("Many Rules", RetrievalMethod::MultipleRules),
        ("New Stream", RetrievalMethod::ThresholdStream),
        ("Optimal (static)", RetrievalMethod::StaticOptimal(1e9)),
    ];

    let mut series = Vec::new();
    let mut means = Vec::new();
    for (name, method) in methods {
        let db = RemoteDb::new(store.store().clone(), round_trip);
        let mut engine = RuleEngine::new(method, store.clone(), Some(db));
        let mut rule = RuleSpec::new(
            "fig10-delay",
            Attribute::Delay,
            LocationSelector::QuadtreeLeaves,
            100,
        );
        rule.s = 0.0;
        engine.install_rule(&rule, names.iter().cloned()).expect("installing rule");
        let mut s = Series::new(name);
        let mut total_ms = 0.0;
        for b in 0..(tuples / bucket) {
            let start = std::time::Instant::now();
            for i in 0..bucket {
                let idx = b * bucket + i;
                let e = synthetic_trace(idx, &names[idx % names.len()]);
                engine.send_trace(&e).expect("trace accepted");
            }
            let ms = start.elapsed().as_secs_f64() * 1000.0 / bucket as f64;
            total_ms += ms * bucket as f64;
            s.push((b * bucket) as f64, ms);
        }
        means.push(vec![
            name.to_string(),
            format_num(total_ms / tuples as f64),
            engine.statement_count().to_string(),
        ]);
        series.push(s);
    }
    print_series("Figure 10: per-tuple latency over time (ms)", "tuple#", &series);
    print_table(
        "Figure 10 summary",
        &["method", "mean latency (ms/tuple)", "statements"],
        &means,
    );
    let mut result = ExperimentResult::new("fig10", "Figure 10: threshold retrieval methods");
    result.series = series;
    result.save_json(&results_dir()).expect("writing results");
}

fn synthetic_trace(i: usize, location: &str) -> tms_traffic::EnrichedTrace {
    tms_traffic::EnrichedTrace {
        trace: tms_traffic::BusTrace {
            timestamp_ms: 8 * tms_traffic::HOUR_MS + i as u64 * 50,
            line_id: 1,
            direction: true,
            position: tms_geo::GeoPoint::new_unchecked(53.33, -6.26),
            delay_s: (i % 400) as f64,
            congestion: false,
            reported_stop: None,
            at_stop: false,
            vehicle_id: 1,
        },
        speed_kmh: Some(20.0),
        actual_delay_s: Some(1.0),
        areas: vec![location.to_string()],
        bus_stop: None,
    }
}

// ---------------------------------------------------------------------------
// Throughput snapshot (BENCH_cep_throughput.json)
// ---------------------------------------------------------------------------

/// Headline engine throughput: one engine running ten Table 6 rules
/// (the window grid cycled, threshold-stream retrieval) measured under
/// all three evaluation modes, plus one incremental-eligible
/// grouped-aggregate statement isolating the delta-maintenance win.
/// `shared` runs the sharing planner (batch-installed rules collapse into
/// one cluster served from shared accumulator banks and the keyed
/// threshold index); `incremental` and `rescan` run each rule privately,
/// bracketing the pre-sharing mode switch's effect. Results land in
/// `BENCH_cep_throughput.json` at the repository root.
fn bench_snapshot() {
    println!("\n== Bench snapshot: engine throughput (events/sec) ==");
    let windows: Vec<usize> = (0..10).map(|i| [1usize, 10, 100, 1000][i % 4]).collect();
    let t = 480;
    let tuples = 2_000;
    let mut headline = Vec::new();
    for (name, mode) in [
        ("shared", EngineMode::Shared),
        ("incremental", EngineMode::Incremental),
        ("rescan", EngineMode::Rescan),
    ] {
        let ms = measure_engine_latency_in_mode(&windows, t, tuples, mode);
        let eps = 1000.0 / ms;
        println!(
            "  10 Table-6 rules, {name:>11}: {} events/s ({} ms/tuple)",
            format_num(eps),
            format_num(ms)
        );
        headline.push((ms, eps));
    }
    let sharing_speedup = headline[0].1 / headline[1].1;
    println!("  sharing speedup over incremental: {:.1}x", sharing_speedup);
    let single_inc = single_statement_events_per_sec(true);
    let single_scan = single_statement_events_per_sec(false);
    println!(
        "  grouped avg+stddev win:length(100): incremental {} events/s, \
         rescan {} events/s ({:.1}x)",
        format_num(single_inc),
        format_num(single_scan),
        single_inc / single_scan
    );
    let json = format!(
        "{{\n  \"benchmark\": \"cep_engine_throughput\",\n  \
         \"workload\": \"one engine, 10 Table-6 rules (windows 1/10/100/1000 cycled), \
         480 thresholds, threshold-stream retrieval\",\n  \
         \"tuples_measured\": {tuples},\n  \
         \"ten_table6_rules\": {{\n    \
         \"shared\": {{ \"ms_per_tuple\": {:.6}, \"events_per_sec\": {:.1} }},\n    \
         \"incremental\": {{ \"ms_per_tuple\": {:.6}, \"events_per_sec\": {:.1} }},\n    \
         \"rescan\": {{ \"ms_per_tuple\": {:.6}, \"events_per_sec\": {:.1} }}\n  }},\n  \
         \"sharing_speedup_over_incremental\": {:.2},\n  \
         \"single_grouped_avg_stddev_len100\": {{\n    \
         \"incremental_events_per_sec\": {:.1},\n    \
         \"rescan_events_per_sec\": {:.1},\n    \
         \"speedup\": {:.2}\n  }}\n}}\n",
        headline[0].0, headline[0].1, headline[1].0, headline[1].1,
        headline[2].0, headline[2].1, sharing_speedup,
        single_inc, single_scan, single_inc / single_scan,
    );
    std::fs::write("BENCH_cep_throughput.json", json)
        .expect("writing BENCH_cep_throughput.json");
    println!("(wrote BENCH_cep_throughput.json)");
    dsps_snapshot();
}

/// `bench_guard`: smoke-mode regression guard for the shared evaluation
/// path. Re-measures the 10-rule Table 6 workload in Shared mode with a
/// reduced tuple budget and exits non-zero if ms/tuple regresses more
/// than 2x over the committed snapshot's shared entry.
fn bench_guard() {
    println!("\n== Bench guard: shared-mode smoke check ==");
    let committed = std::fs::read_to_string("BENCH_cep_throughput.json")
        .expect("reading committed BENCH_cep_throughput.json");
    let baseline = extract_shared_ms(&committed)
        .expect("committed snapshot carries ten_table6_rules.shared.ms_per_tuple");
    let windows: Vec<usize> = (0..10).map(|i| [1usize, 10, 100, 1000][i % 4]).collect();
    let ms = measure_engine_latency_in_mode(&windows, 480, 500, EngineMode::Shared);
    println!(
        "  shared mode: measured {} ms/tuple vs committed {} ms/tuple (limit 2x)",
        format_num(ms),
        format_num(baseline)
    );
    if ms > baseline * 2.0 {
        eprintln!(
            "bench_guard FAILED: shared-mode ms/tuple ({ms:.6}) is more than 2x the \
             committed snapshot ({baseline:.6})"
        );
        std::process::exit(1);
    }
    println!("bench_guard OK");
}

/// Pulls `ten_table6_rules.shared.ms_per_tuple` out of the committed
/// snapshot without a JSON dependency (the file is machine-written by
/// `bench_snapshot`, so shape drift shows up here as a hard failure).
fn extract_shared_ms(json: &str) -> Option<f64> {
    let shared = json.split("\"shared\"").nth(1)?;
    let val = shared.split("\"ms_per_tuple\":").nth(1)?;
    let end = val.find([',', '}'])?;
    val[..end].trim().parse().ok()
}

// ---------------------------------------------------------------------------
// Data-plane throughput snapshot (BENCH_dsps_throughput.json)
// ---------------------------------------------------------------------------

/// Source tuples/second through a 1-spout → 4-sink topology, one row per
/// grouping × delivery mode × reliability setting. The all-grouping rows
/// are the headline: broadcast amplifies every emission 4×, so per-edge
/// buffering and `Arc`-shared fan-out pay off most there. Best-of-three
/// wall-clock runs; results land in `BENCH_dsps_throughput.json` at the
/// repository root.
fn dsps_snapshot() {
    use std::time::Duration;
    use tms_dsps::runtime::{BatchConfig, LocalCluster, ReliabilityConfig, RuntimeConfig};
    use tms_dsps::scheduler::ClusterSpec;
    use tms_dsps::topology::{Parallelism, TopologyBuilder};
    use tms_dsps::{Bolt, Emitter, Grouping, Spout};

    const TUPLES: u64 = 20_000;

    #[derive(Clone)]
    struct Msg {
        key: u64,
        value: u64,
    }
    struct RangeSpout {
        next: u64,
        end: u64,
    }
    impl Spout<Msg> for RangeSpout {
        fn next(&mut self) -> Option<Msg> {
            if self.next >= self.end {
                return None;
            }
            let v = self.next;
            self.next += 1;
            Some(Msg { key: v % 13, value: v })
        }
    }
    struct NullSink;
    impl Bolt<Msg> for NullSink {
        fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
            std::hint::black_box(msg.value);
        }
    }

    let grouping = |name: &str| -> Grouping<Msg> {
        match name {
            "shuffle" => Grouping::Shuffle,
            "fields" => Grouping::fields_hashed(|m: &Msg| m.key),
            "all" => Grouping::All,
            other => unreachable!("unknown grouping {other}"),
        }
    };
    let run = |g: &str, reliable: bool, batch: Option<BatchConfig>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = TopologyBuilder::new("bench")
                .add_spout("src", Parallelism::of(1), |_| {
                    Box::new(RangeSpout { next: 0, end: TUPLES })
                })
                .add_bolt("sink", Parallelism::of(4), vec![("src", grouping(g))], |_| {
                    Box::new(NullSink)
                })
                .build()
                .unwrap();
            let cluster = LocalCluster::new(ClusterSpec {
                nodes: 2,
                slots_per_node: 2,
                cores_per_node: 4,
            })
            .unwrap();
            let cfg = RuntimeConfig {
                batch,
                reliability: reliable.then(ReliabilityConfig::default),
                ..RuntimeConfig::default()
            };
            let t0 = std::time::Instant::now();
            cluster.submit(t, cfg).unwrap().join().unwrap();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        TUPLES as f64 / best
    };

    println!("\n== Bench snapshot: data-plane throughput (source tuples/sec) ==");
    let batch = BatchConfig { max_batch: 128, max_linger: Duration::from_millis(1) };
    let mut rows = String::new();
    let mut all_speedup = 0.0;
    for g in ["shuffle", "fields", "all"] {
        for (rel_name, reliable) in [("at_most_once", false), ("at_least_once", true)] {
            let per_tuple = run(g, reliable, None);
            let batched = run(g, reliable, Some(batch));
            let speedup = batched / per_tuple;
            if g == "all" && !reliable {
                all_speedup = speedup;
            }
            println!(
                "  {g:>7}/{rel_name:<13} per_tuple {:>9} t/s, batched {:>9} t/s ({speedup:.2}x)",
                format_num(per_tuple),
                format_num(batched)
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{ \"grouping\": \"{g}\", \"reliability\": \"{rel_name}\", \
                 \"per_tuple_tuples_per_sec\": {per_tuple:.1}, \
                 \"batched_tuples_per_sec\": {batched:.1}, \"speedup\": {speedup:.2} }}"
            ));
        }
    }
    let json = format!(
        "{{\n  \"benchmark\": \"dsps_data_plane_throughput\",\n  \
         \"workload\": \"1 spout task -> 4 sink tasks, {TUPLES} source tuples, \
         best of 3 runs; batched = max_batch 128 / max_linger 1ms\",\n  \
         \"rows\": [\n{rows}\n  ],\n  \
         \"all_grouping_at_most_once_speedup\": {all_speedup:.2}\n}}\n"
    );
    std::fs::write("BENCH_dsps_throughput.json", json)
        .expect("writing BENCH_dsps_throughput.json");
    println!("(wrote BENCH_dsps_throughput.json)");
}

// ---------------------------------------------------------------------------
// Lineage tracing overhead snapshot (BENCH_trace_overhead.json)
// ---------------------------------------------------------------------------

/// Source tuples/second through the `dsps_snapshot` shuffle workload with
/// the monitor off entirely (the PR-8-era configuration), or on with
/// lineage tracing off, sampled at `sample_rate`, or capturing every tree.
fn lineage_run(
    tuples: u64,
    monitor: bool,
    lineage: Option<tms_dsps::LineageConfig>,
    runs: usize,
) -> f64 {
    use std::time::Duration;
    use tms_dsps::runtime::{LocalCluster, RuntimeConfig};
    use tms_dsps::scheduler::ClusterSpec;
    use tms_dsps::topology::{Parallelism, TopologyBuilder};
    use tms_dsps::{Bolt, Emitter, Grouping as DspsGrouping, MonitorConfig, Spout};

    #[derive(Clone)]
    struct Msg {
        value: u64,
    }
    struct RangeSpout {
        next: u64,
        end: u64,
    }
    impl Spout<Msg> for RangeSpout {
        fn next(&mut self) -> Option<Msg> {
            if self.next >= self.end {
                return None;
            }
            let v = self.next;
            self.next += 1;
            Some(Msg { value: v })
        }
    }
    struct NullSink;
    impl Bolt<Msg> for NullSink {
        fn process(&mut self, msg: Msg, _e: &mut dyn Emitter<Msg>) {
            std::hint::black_box(msg.value);
        }
    }

    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = TopologyBuilder::new("lineage-bench")
            .add_spout("src", Parallelism::of(1), move |_| {
                Box::new(RangeSpout { next: 0, end: tuples })
            })
            .add_bolt("sink", Parallelism::of(4), vec![("src", DspsGrouping::Shuffle)], |_| {
                Box::new(NullSink)
            })
            .build()
            .unwrap();
        let cluster = LocalCluster::new(ClusterSpec {
            nodes: 2,
            slots_per_node: 2,
            cores_per_node: 4,
        })
        .unwrap();
        let cfg = RuntimeConfig {
            monitor: monitor.then(|| MonitorConfig {
                // A window far longer than the run: the monitor thread is
                // alive (draining span rings) but never samples mid-run.
                window: Duration::from_secs(3600),
                lineage,
                ..MonitorConfig::default()
            }),
            ..RuntimeConfig::default()
        };
        let t0 = std::time::Instant::now();
        cluster.submit(t, cfg).unwrap().join().unwrap();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    tuples as f64 / best
}

/// `lineage`: measures the tuple-lineage tracing tax on the data plane and
/// writes `BENCH_trace_overhead.json`. Four modes over the same workload:
/// the monitor off entirely (the exact pre-lineage configuration — the
/// baseline), the monitor on with lineage off (must sit within noise of
/// the baseline: the feature is free unless enabled), the default 1%
/// sample, and sample-everything.
fn lineage() {
    use tms_dsps::LineageConfig;
    // Large enough that the monitor thread's shutdown quantum (≤20 ms) is
    // amortized into noise: the lineage-off run takes over half a second.
    const TUPLES: u64 = 1_000_000;

    println!("\n== Bench snapshot: lineage tracing overhead (source tuples/sec) ==");
    // Interleave the modes round-robin and keep each mode's best round:
    // scheduler noise (this often runs on a heavily shared box) then hits
    // every mode alike instead of biasing whichever ran during a spike.
    let (mut bare, mut off, mut sampled, mut full) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for _ in 0..5 {
        bare = bare.max(lineage_run(TUPLES, false, None, 1));
        off = off.max(lineage_run(TUPLES, true, None, 1));
        sampled = sampled.max(lineage_run(TUPLES, true, Some(LineageConfig::default()), 1));
        full = full.max(lineage_run(
            TUPLES,
            true,
            // Big rings: sample-everything at full throughput outruns the
            // monitor's drain cadence with the default 4096 slots.
            Some(LineageConfig { ring_capacity: 1 << 16, ..LineageConfig::full() }),
            1,
        ));
    }
    let overhead = |with: f64| (off / with - 1.0) * 100.0;
    let (sampled_pct, full_pct) = (overhead(sampled), overhead(full));
    let off_vs_baseline = (off / bare - 1.0) * 100.0;
    println!("  no monitor        : {:>9} t/s (pre-lineage baseline)", format_num(bare));
    println!("  lineage off       : {:>9} t/s ({off_vs_baseline:+.1}% vs baseline)", format_num(off));
    println!("  sampled (1%)      : {:>9} t/s ({sampled_pct:+.1}% overhead)", format_num(sampled));
    println!("  full (100%)       : {:>9} t/s ({full_pct:+.1}% overhead)", format_num(full));

    let json = format!(
        "{{\n  \"benchmark\": \"dsps_trace_overhead\",\n  \
         \"workload\": \"1 spout task -> 4 sink tasks, shuffle, at-most-once, {TUPLES} source \
         tuples, best of 5 interleaved rounds; baseline = monitor off, other modes run the \
         monitor thread\",\n  \
         \"baseline_tuples_per_sec\": {bare:.1},\n  \
         \"off_tuples_per_sec\": {off:.1},\n  \
         \"sampled_1pct_tuples_per_sec\": {sampled:.1},\n  \
         \"full_tuples_per_sec\": {full:.1},\n  \
         \"off_vs_baseline_pct\": {off_vs_baseline:.1},\n  \
         \"sampled_overhead_pct\": {sampled_pct:.1},\n  \
         \"full_overhead_pct\": {full_pct:.1}\n}}\n"
    );
    std::fs::write("BENCH_trace_overhead.json", json)
        .expect("writing BENCH_trace_overhead.json");
    println!("(wrote BENCH_trace_overhead.json)");
}

/// `lineage_guard`: CI gate over the committed lineage-overhead snapshot
/// plus a reduced live smoke run. Fails (exit 1) if the committed numbers
/// claim more than a 10% sampled tax or a lineage-off data plane outside
/// noise of the pre-lineage baseline, or if a live re-measure shows the
/// default sample rate costing more than half the lineage-off throughput.
fn lineage_guard() {
    use tms_dsps::LineageConfig;
    println!("\n== Bench guard: lineage overhead check ==");
    let committed = std::fs::read_to_string("BENCH_trace_overhead.json")
        .expect("reading committed BENCH_trace_overhead.json");
    let committed_off = extract_json_number(&committed, "off_tuples_per_sec")
        .expect("committed snapshot carries off_tuples_per_sec");
    let committed_sampled_pct = extract_json_number(&committed, "sampled_overhead_pct")
        .expect("committed snapshot carries sampled_overhead_pct");
    if committed_sampled_pct > 10.0 {
        eprintln!(
            "lineage_guard FAILED: committed sampled overhead {committed_sampled_pct:.1}% \
             exceeds the 10% budget"
        );
        std::process::exit(1);
    }
    if let Some(delta) = extract_json_number(&committed, "off_vs_baseline_pct") {
        if delta.abs() > 10.0 {
            eprintln!(
                "lineage_guard FAILED: committed lineage-off throughput is {delta:+.1}% off \
                 the pre-lineage baseline (|noise| budget 10%)"
            );
            std::process::exit(1);
        }
    }

    // Live smoke with a reduced budget: catch a hot-path regression that
    // makes the default sample rate expensive, with generous slack for CI.
    let off = lineage_run(100_000, true, None, 2);
    let sampled = lineage_run(100_000, true, Some(LineageConfig::default()), 2);
    println!(
        "  live smoke: off {} t/s, sampled {} t/s (committed off {} t/s)",
        format_num(off),
        format_num(sampled),
        format_num(committed_off)
    );
    if sampled < off * 0.5 {
        eprintln!(
            "lineage_guard FAILED: live sampled throughput ({sampled:.0} t/s) is less than \
             half the live lineage-off throughput ({off:.0} t/s)"
        );
        std::process::exit(1);
    }
    if off * 2.0 < committed_off {
        eprintln!(
            "lineage_guard FAILED: live lineage-off throughput ({off:.0} t/s) regressed more \
             than 2x against the committed snapshot ({committed_off:.0} t/s)"
        );
        std::process::exit(1);
    }
    println!("lineage_guard OK");
}

/// Events/sec through a bare CEP engine running one grouped avg+stddev
/// statement over `win:length(100)` — the statement shape the incremental
/// path accelerates.
fn single_statement_events_per_sec(incremental: bool) -> f64 {
    let mut engine = tms_cep::Engine::new();
    engine
        .register_type(
            tms_cep::EventType::with_fields(
                "bus",
                &[
                    ("location", tms_cep::FieldType::Str),
                    ("delay", tms_cep::FieldType::Float),
                ],
            )
            .expect("bus type is valid"),
        )
        .expect("registering bus type");
    engine.set_incremental_enabled(incremental).expect("selecting evaluation mode");
    engine
        .create_statement(
            "SELECT w.location AS loc, avg(w.delay) AS m, stddev(w.delay) AS sd \
             FROM bus.win:length(100) AS w GROUP BY w.location",
            Box::new(|_, _| {}),
        )
        .expect("creating benchmark statement");
    let locations: Vec<String> = (0..10).map(|i| format!("L{i}")).collect();
    let send = |engine: &mut tms_cep::Engine, i: usize| {
        let ev = engine
            .make_event(
                "bus",
                i as u64 * 50,
                &[
                    ("location", locations[i % locations.len()].as_str().into()),
                    ("delay", ((i % 300) as f64).into()),
                ],
            )
            .expect("benchmark event");
        engine.send_event(ev).expect("benchmark event accepted");
    };
    // Fill the window so evictions flow from the first measured sample.
    let warmup = 1_500;
    for i in 0..warmup {
        send(&mut engine, i);
    }
    let n = 30_000;
    let start = std::time::Instant::now();
    for i in 0..n {
        send(&mut engine, warmup + i);
    }
    n as f64 / start.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------------------
// Elastic rebalance acceptance (BENCH_rebalance.json)
// ---------------------------------------------------------------------------

/// One elastic hotspot run's headline numbers.
struct RebalanceOutcome {
    stats: tms_dsps::MigrationStats,
    /// Theoretical imbalance the hotspot induces under the start-up table.
    pre_imbalance: f64,
    bound: f64,
    detections: usize,
}

/// The elastic acceptance scenario: a start-up plan balanced against a
/// uniform history, then a live stream concentrating 80% of the traffic
/// on regions the plan routed to engine 0. The rebalancer must migrate
/// partitions between the two live engines and plan the load back under
/// `bound` (see `crates/dsps/tests/elastic.rs` for the test twin).
fn hotspot_rebalance_run(bound: f64) -> RebalanceOutcome {
    use tms_core::topology::TopologyParallelism;
    let gen = FleetGenerator::new(FleetConfig::small(17), 0).expect("fleet config is valid");
    let seeds = gen.route_seed_points();
    let history: Vec<tms_traffic::BusTrace> =
        gen.take_while(|t| t.timestamp_ms < 9 * tms_traffic::HOUR_MS).collect();
    let config = SystemConfig {
        parallelism: TopologyParallelism {
            spout_tasks: 1,
            preprocess_tasks: 1,
            tracker_tasks: 1,
            splitter_tasks: 1,
            esper_tasks: 1,
        },
        elastic: Some(tms_core::ElasticConfig {
            // A tight cadence relative to the replay speed: the stream
            // drains in a few hundred ms under the release build, and
            // convergence is only recorded by a post-migration cycle that
            // still sees live traffic.
            imbalance_bound: bound,
            check_interval: std::time::Duration::from_millis(15),
            cooldown: std::time::Duration::from_millis(45),
            drain_timeout: std::time::Duration::from_secs(2),
            max_moves_per_cycle: 8,
            min_observed: 100,
        }),
        ..SystemConfig::default()
    };
    let sys = TrafficSystem::bootstrap(tms_geo::DUBLIN_BBOX, &seeds, &history, config)
        .expect("bootstrap");
    let mut rule = RuleSpec::new(
        "rebalance-leaves",
        Attribute::Delay,
        LocationSelector::QuadtreeLeaves,
        10,
    );
    rule.s = 0.5;
    let plan = sys.startup_plan(std::slice::from_ref(&rule), 2).expect("start-up plan");

    // The hotspot: up to four regions the plan routed to engine 0, hit
    // through a GPS point at each region's bbox center.
    let quadtree = &sys.artifacts.spatial.quadtree;
    let route = &plan.split_plan.routes[0];
    let mut hot: Vec<String> =
        route.table.iter().filter(|(_, &e)| e == 0).map(|(r, _)| r.clone()).collect();
    hot.sort();
    hot.truncate(4);
    let targets: Vec<tms_geo::GeoPoint> = hot
        .iter()
        .filter_map(|r| {
            let id: u32 = r.strip_prefix('R')?.parse().ok()?;
            Some(quadtree.region(tms_geo::RegionId(id))?.bbox.center())
        })
        .collect();
    assert!(targets.len() >= 2, "need at least two movable hot regions");
    let spec = tms_sim::HotspotSpec {
        hot_share: 0.8,
        hot_regions: targets.len(),
        total_rate: 1000.0,
    };

    // Theoretical pre-migration imbalance: the skewed per-region rates
    // summed per engine under the original routing table.
    let mut ordered: Vec<String> = hot.clone();
    for r in route.table.keys() {
        if !hot.contains(r) {
            ordered.push(r.clone());
        }
    }
    let mut per_engine = vec![0.0f64; 2];
    for rr in spec.region_rates(&ordered) {
        if let Some(&e) = route.table.get(&rr.region) {
            per_engine[e] += rr.rate;
        }
    }
    let pre_imbalance = tms_core::partitioning::Partition {
        assignments: vec![Vec::new(); 2],
        rates: per_engine,
    }
    .imbalance();

    let slots = targets.len() + 1; // the extra slot keeps the original position
    let live: Vec<tms_traffic::BusTrace> = FleetGenerator::new(FleetConfig::small(17), 1)
        .expect("fleet config is valid")
        .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * tms_traffic::HOUR_MS)
        .enumerate()
        .map(|(i, mut t)| {
            let slot = spec.pick(i, slots);
            if slot < targets.len() {
                t.position = targets[slot];
            }
            t
        })
        .collect();
    let report = sys.run(live, &plan, None).expect("elastic run");
    RebalanceOutcome {
        stats: report.elastic.expect("elastic runs report migration stats"),
        pre_imbalance,
        bound,
        detections: report.detections.len(),
    }
}

/// `rebalance`: the elastic acceptance run, written to
/// `BENCH_rebalance.json` at the repository root. Exits non-zero when no
/// migration completes or the re-planned imbalance stays above the bound.
fn rebalance() {
    println!("\n== Rebalance: elastic hotspot acceptance ==");
    let out = hotspot_rebalance_run(1.5);
    let s = &out.stats;
    let cycles = s
        .cycles_to_converge
        .map(|c| c.to_string())
        .unwrap_or_else(|| "null".into());
    print_table(
        "Elastic rebalance outcome",
        &["metric", "value"],
        &[
            vec!["rebalance decisions".into(), s.decisions.to_string()],
            vec!["migrations completed".into(), s.completed.to_string()],
            vec!["migrations aborted".into(), s.aborted.to_string()],
            vec!["pause last (ms)".into(), format_num(s.last_pause_ms)],
            vec!["pause max (ms)".into(), format_num(s.max_pause_ms)],
            vec!["pre imbalance (theoretical)".into(), format_num(out.pre_imbalance)],
            vec!["post imbalance (planned)".into(), format_num(s.post_imbalance)],
            vec!["observed imbalance (final)".into(), format_num(s.observed_imbalance)],
            vec!["cycles to converge".into(), cycles.clone()],
            vec!["detections".into(), out.detections.to_string()],
        ],
    );
    let json = format!(
        "{{\n  \"benchmark\": \"elastic_rebalance\",\n  \
         \"workload\": \"small fleet, 1 QuadtreeLeaves rule on 2 engines, 80% of the live \
         stream on up to 4 engine-0 regions; rebalancer at 15ms cadence\",\n  \
         \"imbalance_bound\": {:.2},\n  \
         \"pre_imbalance\": {:.4},\n  \
         \"post_imbalance\": {:.4},\n  \
         \"observed_imbalance\": {:.4},\n  \
         \"rebalance_decisions\": {},\n  \
         \"migrations_completed\": {},\n  \
         \"migrations_aborted\": {},\n  \
         \"pause_last_ms\": {:.3},\n  \
         \"pause_max_ms\": {:.3},\n  \
         \"windows_to_convergence\": {cycles}\n}}\n",
        out.bound,
        out.pre_imbalance,
        s.post_imbalance,
        s.observed_imbalance,
        s.decisions,
        s.completed,
        s.aborted,
        s.last_pause_ms,
        s.max_pause_ms,
    );
    std::fs::write("BENCH_rebalance.json", json).expect("writing BENCH_rebalance.json");
    println!("(wrote BENCH_rebalance.json)");
    if s.completed == 0 {
        eprintln!("rebalance FAILED: no migration completed");
        std::process::exit(1);
    }
    if s.post_imbalance.is_nan() || s.post_imbalance > out.bound {
        eprintln!(
            "rebalance FAILED: post imbalance {:.4} above the bound {:.2}",
            s.post_imbalance, out.bound
        );
        std::process::exit(1);
    }
    println!("rebalance OK");
}

/// `rebalance_guard`: regression guard over the committed
/// `BENCH_rebalance.json`, then a live re-run of the acceptance scenario.
/// Fails when the committed snapshot records no migration or an
/// over-bound post imbalance, or when the re-run does.
fn rebalance_guard() {
    println!("\n== Rebalance guard: elastic acceptance check ==");
    let committed = std::fs::read_to_string("BENCH_rebalance.json")
        .expect("reading committed BENCH_rebalance.json");
    let bound = extract_json_number(&committed, "imbalance_bound")
        .expect("committed snapshot carries imbalance_bound");
    let post = extract_json_number(&committed, "post_imbalance")
        .expect("committed snapshot carries post_imbalance");
    let completed = extract_json_number(&committed, "migrations_completed")
        .expect("committed snapshot carries migrations_completed");
    println!(
        "  committed: {completed} migrations, post imbalance {} (bound {})",
        format_num(post),
        format_num(bound)
    );
    if completed < 1.0 || post.is_nan() || post > bound {
        eprintln!("rebalance_guard FAILED: committed snapshot violates the acceptance bar");
        std::process::exit(1);
    }
    let out = hotspot_rebalance_run(bound);
    println!(
        "  re-run: {} migrations, post imbalance {} (bound {})",
        out.stats.completed,
        format_num(out.stats.post_imbalance),
        format_num(bound)
    );
    if out.stats.completed == 0 || out.stats.post_imbalance.is_nan() || out.stats.post_imbalance > bound {
        eprintln!("rebalance_guard FAILED: live re-run violates the acceptance bar");
        std::process::exit(1);
    }
    println!("rebalance_guard OK");
}

/// Pulls a top-level numeric field out of a machine-written snapshot
/// without a JSON dependency (shape drift shows up as a hard failure).
fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let val = json.split(&format!("\"{key}\":")).nth(1)?;
    let end = val.find([',', '}'])?;
    val[..end].trim().parse().ok()
}

// ---------------------------------------------------------------------------
// Latency drift: chaos run with end-to-end tracing (BENCH_latency_drift.jsonl)
// ---------------------------------------------------------------------------

/// A chaos-enabled live run (the `ChaosSpec::light` acceptance scenario)
/// with end-to-end tracing on: per-component completion-latency
/// percentiles, queue-depth gauges, and the per-window predicted-vs-
/// observed Esper latency drift (the Figure 7 model against the real
/// engines). The drift series is exported as JSON Lines to
/// `BENCH_latency_drift.jsonl` at the repository root. The same workload
/// runs once more with tracing off to measure the instrumentation
/// overhead (budget: <5%).
fn drift() {
    println!("\n== Latency drift: chaos run with end-to-end tracing ==");
    let chaos = ChaosSpec::light();
    chaos.validate().expect("light preset is valid");
    let monitor = MonitorSpec::traced(500);
    monitor.validate().expect("traced spec is valid");

    let gen = FleetGenerator::new(FleetConfig::small(17), 0).expect("fleet config is valid");
    let seeds = gen.route_seed_points();
    let history: Vec<tms_traffic::BusTrace> =
        gen.take_while(|t| t.timestamp_ms < 9 * tms_traffic::HOUR_MS).collect();
    let live: Vec<tms_traffic::BusTrace> = FleetGenerator::new(FleetConfig::small(17), 1)
        .expect("fleet config is valid")
        .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * tms_traffic::HOUR_MS)
        .collect();
    let rules: Vec<RuleSpec> = [
        ("drift-leaves", LocationSelector::QuadtreeLeaves),
        ("drift-stops", LocationSelector::BusStops),
    ]
    .into_iter()
    .map(|(name, loc)| {
        let mut r = RuleSpec::new(name, Attribute::Delay, loc, 10);
        r.s = 0.5;
        r
    })
    .collect();
    let config = |m: Option<tms_dsps::MonitorConfig>| SystemConfig {
        monitor: m,
        reliability: Some(chaos.reliability_config()),
        chaos: Some(chaos.fault_config()),
        ..SystemConfig::default()
    };

    // Tracing-off baseline: identical workload and chaos schedule, so the
    // wall-clock delta is the instrumentation cost.
    let sys = TrafficSystem::bootstrap(tms_geo::DUBLIN_BBOX, &seeds, &history, config(None))
        .expect("bootstrap");
    let t = std::time::Instant::now();
    sys.plan_and_run(live.clone(), &rules, 3).expect("baseline run");
    let base_s = t.elapsed().as_secs_f64();

    let sys = TrafficSystem::bootstrap(
        tms_geo::DUBLIN_BBOX,
        &seeds,
        &history,
        config(Some(monitor.monitor_config())),
    )
    .expect("bootstrap");
    let t = std::time::Instant::now();
    let (_, report) = sys.plan_and_run(live, &rules, 3).expect("traced run");
    let traced_s = t.elapsed().as_secs_f64();
    let overhead_pct = (traced_s - base_s) / base_s * 100.0;

    let ms = |d: Option<std::time::Duration>| {
        d.map(|d| format_num(d.as_secs_f64() * 1e3)).unwrap_or_else(|| "-".into())
    };
    let rows: Vec<Vec<String>> = report
        .metrics
        .iter()
        .map(|w| {
            let peak = report
                .history
                .iter()
                .filter(|h| h.component == w.component)
                .map(|h| h.queue_depth_max)
                .max()
                .unwrap_or(0);
            vec![
                w.component.clone(),
                w.e2e.count().to_string(),
                ms(w.e2e.p50()),
                ms(w.e2e.p95()),
                ms(w.e2e.p99()),
                peak.to_string(),
                w.queue_capacity.to_string(),
            ]
        })
        .collect();
    print_table(
        "Per-component end-to-end completion latency and queue gauges",
        &["component", "e2e count", "p50 (ms)", "p95 (ms)", "p99 (ms)", "peak queue", "capacity"],
        &rows,
    );

    let mean_ratio = if report.drift.is_empty() {
        f64::NAN
    } else {
        report.drift.iter().map(|d| d.ratio).sum::<f64>() / report.drift.len() as f64
    };
    println!(
        "drift: {} windows, mean observed/predicted ratio {}",
        report.drift.len(),
        format_num(mean_ratio)
    );
    println!(
        "tracing overhead: baseline {}s vs traced {}s ({}%)",
        format_num(base_s),
        format_num(traced_s),
        format_num(overhead_pct)
    );
    std::fs::write("BENCH_latency_drift.jsonl", report.drift_jsonl())
        .expect("writing BENCH_latency_drift.jsonl");
    println!("(wrote BENCH_latency_drift.jsonl, one JSON object per sampled Esper window)");

    let mut result =
        ExperimentResult::new("drift", "Predicted-vs-observed Esper latency drift under chaos");
    result.fact("drift_windows", report.drift.len());
    result.fact("mean_ratio", format_num(mean_ratio));
    result.fact("baseline_s", format_num(base_s));
    result.fact("traced_s", format_num(traced_s));
    result.fact("tracing_overhead_pct", format_num(overhead_pct));
    result.save_json(&results_dir()).expect("writing results");
}

/// `profile`: a profiled quickstart-style run — per-rule CEP cost table,
/// planner drift against Algorithm 1 and the estimation model, and the
/// online-recalibration error deltas, written to `BENCH_cep_profile.json`.
fn profile() {
    println!("\n== Rule-level CEP profile and planner drift ==");
    let monitor = MonitorSpec::profiled(500);
    monitor.validate().expect("profiled spec is valid");

    let gen = FleetGenerator::new(FleetConfig::small(17), 0).expect("fleet config is valid");
    let seeds = gen.route_seed_points();
    let history: Vec<tms_traffic::BusTrace> =
        gen.take_while(|t| t.timestamp_ms < 9 * tms_traffic::HOUR_MS).collect();
    let live: Vec<tms_traffic::BusTrace> = FleetGenerator::new(FleetConfig::small(17), 1)
        .expect("fleet config is valid")
        .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * tms_traffic::HOUR_MS)
        .collect();
    let rules: Vec<RuleSpec> = [
        ("profile-leaves", LocationSelector::QuadtreeLeaves),
        ("profile-stops", LocationSelector::BusStops),
    ]
    .into_iter()
    .map(|(name, loc)| {
        let mut r = RuleSpec::new(name, Attribute::Delay, loc, 10);
        r.s = 0.5;
        r
    })
    .collect();
    let config = SystemConfig {
        monitor: Some(monitor.monitor_config()),
        ..SystemConfig::default()
    };
    let sys = TrafficSystem::bootstrap(tms_geo::DUBLIN_BBOX, &seeds, &history, config)
        .expect("bootstrap");
    let (_, report) = sys.plan_and_run(live, &rules, 3).expect("profiled run");

    // The per-rule cost table, from the lifetime cumulative profiles.
    let esper = report
        .metrics
        .iter()
        .find(|w| w.component == "esper")
        .expect("esper totals present");
    let us = |d: Option<std::time::Duration>| {
        d.map(|d| format_num(d.as_secs_f64() * 1e6)).unwrap_or_else(|| "-".into())
    };
    let rows: Vec<Vec<String>> = esper
        .rules
        .iter()
        .map(|r| {
            vec![
                r.rule.clone(),
                r.engine.to_string(),
                r.events_in.to_string(),
                r.evals.to_string(),
                r.firings.to_string(),
                us(r.eval.mean()),
                us(r.eval.p95()),
                format!(
                    "{}/{}/{}/{}",
                    r.path_shared, r.path_incremental, r.path_anchor, r.path_rescan
                ),
                r.window_len.to_string(),
                r.threshold_age
                    .map(|a| format_num(a.as_secs_f64()))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(
        "Per-rule CEP cost (shared/inc/anchor/rescan are evaluation-path counts)",
        &[
            "rule", "engine", "events in", "evals", "firings", "mean eval (µs)",
            "p95 eval (µs)", "paths", "window", "thr age (s)",
        ],
        &rows,
    );

    let planner = report.planner.as_ref().expect("profiling runs produce a planner report");
    let drift_rows: Vec<Vec<String>> = planner
        .engines
        .iter()
        .map(|e| {
            vec![
                e.engine.to_string(),
                format_num(e.planned_rate),
                format_num(e.observed_rate),
                format_num(e.predicted_latency_ms),
                format_num(e.observed_latency_ms),
            ]
        })
        .collect();
    print_table(
        "Planner drift: Algorithm 1 planned vs observed per engine",
        &["engine", "planned rate/s", "observed rate/s", "pred lat (ms)", "obs lat (ms)"],
        &drift_rows,
    );
    println!(
        "input-rate imbalance (max/min): planned {} vs observed {}",
        format_num(planner.imbalance_planned),
        format_num(planner.imbalance_observed)
    );
    match &planner.calibration {
        Some(c) => println!(
            "online recalibration: {} samples, MAE {} ms -> {} ms",
            c.samples,
            format_num(c.mae_before_ms),
            format_num(c.mae_after_ms)
        ),
        None => println!("online recalibration: not enough samples"),
    }

    let profiled_windows = report
        .history
        .iter()
        .filter(|w| w.component == "esper" && !w.rules.is_empty())
        .count();
    let json = format!(
        "{{\"profiled_windows\":{},\"planner\":{}}}\n",
        profiled_windows,
        planner.to_json()
    );
    std::fs::write("BENCH_cep_profile.json", &json).expect("writing BENCH_cep_profile.json");
    println!("(wrote BENCH_cep_profile.json)");

    let mut result = ExperimentResult::new(
        "profile",
        "Per-rule CEP profile, planner drift, and online recalibration",
    );
    result.fact("profiled_windows", profiled_windows);
    result.fact("rules", esper.rules.len());
    result.fact("imbalance_planned", format_num(planner.imbalance_planned));
    result.fact("imbalance_observed", format_num(planner.imbalance_observed));
    if let Some(c) = &planner.calibration {
        result.fact("calibration_samples", c.samples);
        result.fact("mae_before_ms", format_num(c.mae_before_ms));
        result.fact("mae_after_ms", format_num(c.mae_after_ms));
    }
    result.save_json(&results_dir()).expect("writing results");
}

// ---------------------------------------------------------------------------
// Threshold staleness: kappa path vs batch ablation (BENCH_staleness.json)
// ---------------------------------------------------------------------------

/// One profiled live run's threshold-age evidence: every per-rule
/// `threshold_age` gauge the monitor sampled (wall-clock ms), plus the
/// wall-to-stream compression so ablation ages can be projected onto
/// deployment time.
struct StalenessRun {
    ages_ms: Vec<f64>,
    wall_s: f64,
    stream_span_ms: u64,
    detections: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the quickstart workload with profiling on and harvests the
/// sampled per-rule threshold ages. `kappa` switches between the
/// in-stream StatsBolt path and the batch ablation (thresholds computed
/// once by the offline job at bootstrap, never refreshed mid-run —
/// exactly the Lambda deployment between two batch rounds).
fn staleness_run(kappa: Option<tms_core::kappa::KappaConfig>) -> StalenessRun {
    let monitor = MonitorSpec::profiled(100);
    monitor.validate().expect("profiled spec is valid");
    let gen = FleetGenerator::new(FleetConfig::small(17), 0).expect("fleet config is valid");
    let seeds = gen.route_seed_points();
    let history: Vec<tms_traffic::BusTrace> =
        gen.take_while(|t| t.timestamp_ms < 9 * tms_traffic::HOUR_MS).collect();
    let live: Vec<tms_traffic::BusTrace> = FleetGenerator::new(FleetConfig::small(17), 1)
        .expect("fleet config is valid")
        .take_while(|t| t.timestamp_ms < tms_traffic::DAY_MS + 9 * tms_traffic::HOUR_MS)
        .collect();
    let stream_span_ms = live.last().map(|t| t.timestamp_ms).unwrap_or(0)
        - live.first().map(|t| t.timestamp_ms).unwrap_or(0);
    let rules: Vec<RuleSpec> = [
        ("stale-leaves", LocationSelector::QuadtreeLeaves),
        ("stale-stops", LocationSelector::BusStops),
    ]
    .into_iter()
    .map(|(name, loc)| {
        let mut r = RuleSpec::new(name, Attribute::Delay, loc, 10);
        r.s = 0.5;
        r
    })
    .collect();
    let config = SystemConfig {
        monitor: Some(monitor.monitor_config()),
        kappa,
        ..SystemConfig::default()
    };
    let sys = TrafficSystem::bootstrap(tms_geo::DUBLIN_BBOX, &seeds, &history, config)
        .expect("bootstrap");
    let t0 = std::time::Instant::now();
    let (_, report) = sys.plan_and_run(live, &rules, 2).expect("profiled run");
    let wall_s = t0.elapsed().as_secs_f64();
    let mut ages_ms: Vec<f64> = report
        .history
        .iter()
        .filter(|w| w.component == "esper")
        .flat_map(|w| w.rules.iter())
        .filter_map(|r| r.threshold_age)
        .map(|a| a.as_secs_f64() * 1e3)
        .collect();
    ages_ms.sort_by(f64::total_cmp);
    StalenessRun { ages_ms, wall_s, stream_span_ms, detections: report.detections.len() }
}

/// `staleness`: the kappa acceptance snapshot. The same profiled live run
/// twice — in-stream StatsBolt refreshes vs the batch ablation — with the
/// sampled `threshold_age` percentiles side by side. The ablation's ages
/// only ever grow between batch rounds, so they are also projected onto
/// stream (deployment) time via the replay's compression factor; the
/// kappa ages are genuine wall-clock staleness, bounded by the refresh
/// cadence at any replay speed. Written to `BENCH_staleness.json` at the
/// repository root; exits non-zero when the kappa p99 exceeds 100 ms.
fn staleness() {
    println!("\n== Staleness: in-stream kappa thresholds vs the batch ablation ==");
    let spec = KappaSpec::fast_refresh(256);
    spec.validate().expect("kappa spec is valid");
    let kappa = staleness_run(Some(spec.kappa_config()));
    let batch = staleness_run(None);
    assert!(!kappa.ages_ms.is_empty(), "profiled windows must sample threshold ages");
    assert!(!batch.ages_ms.is_empty(), "the ablation must sample threshold ages too");
    assert!(kappa.detections > 0 && batch.detections > 0, "both runs must keep detecting");

    let kappa_p50 = percentile(&kappa.ages_ms, 50.0);
    let kappa_p99 = percentile(&kappa.ages_ms, 99.0);
    let batch_p50 = percentile(&batch.ages_ms, 50.0);
    let batch_p99 = percentile(&batch.ages_ms, 99.0);
    // The ablation replays ~27 h of stream in `wall_s` seconds; in
    // deployment the same architecture accrues age at stream speed.
    let compression = batch.stream_span_ms as f64 / (batch.wall_s * 1e3);
    let batch_p99_stream_min = batch_p99 * compression / 60_000.0;
    print_table(
        "Sampled per-rule threshold_age (wall-clock ms)",
        &["path", "samples", "p50 (ms)", "p99 (ms)", "deployment p99"],
        &[
            vec![
                "kappa (in-stream)".into(),
                kappa.ages_ms.len().to_string(),
                format_num(kappa_p50),
                format_num(kappa_p99),
                format!("{} ms (refresh-bounded)", format_num(kappa_p99)),
            ],
            vec![
                "batch ablation".into(),
                batch.ages_ms.len().to_string(),
                format_num(batch_p50),
                format_num(batch_p99),
                format!("{batch_p99_stream_min:.1} min (grows to the batch period)"),
            ],
        ],
    );
    let json = format!(
        "{{\n  \"benchmark\": \"threshold_staleness\",\n  \
         \"workload\": \"small fleet, 2 Delay rules on 2 engines, profiled at 100ms; \
         kappa = StatsBolt refresh every 256 samples, ablation = offline thresholds \
         never refreshed mid-run\",\n  \
         \"kappa\": {{\n    \
         \"refresh_every\": 256,\n    \
         \"samples\": {},\n    \
         \"p50_ms\": {kappa_p50:.3},\n    \
         \"p99_ms\": {kappa_p99:.3}\n  }},\n  \
         \"batch_ablation\": {{\n    \
         \"samples\": {},\n    \
         \"p50_ms\": {batch_p50:.3},\n    \
         \"p99_ms\": {batch_p99:.3},\n    \
         \"wall_to_stream_compression\": {compression:.1},\n    \
         \"p99_stream_minutes\": {batch_p99_stream_min:.2}\n  }},\n  \
         \"note\": \"kappa ages are wall-clock and bounded by the refresh cadence at any \
         replay speed; ablation ages grow linearly until the next batch round, so their \
         deployment-time staleness is the batch period itself\"\n}}\n",
        kappa.ages_ms.len(),
        batch.ages_ms.len(),
    );
    std::fs::write("BENCH_staleness.json", json).expect("writing BENCH_staleness.json");
    println!("(wrote BENCH_staleness.json)");
    if kappa_p99.is_nan() || kappa_p99 > 100.0 {
        eprintln!("staleness FAILED: kappa p99 threshold age {kappa_p99:.1} ms above 100 ms");
        std::process::exit(1);
    }
    if batch_p99_stream_min.is_nan() || batch_p99_stream_min < 1.0 {
        eprintln!(
            "staleness FAILED: the ablation's projected staleness \
             ({batch_p99_stream_min:.2} min) must reach batch-period minutes"
        );
        std::process::exit(1);
    }
    println!("staleness OK");
}

/// `staleness_guard`: regression guard over the committed
/// `BENCH_staleness.json`, then a live kappa re-run. Fails when the
/// committed snapshot breaks the 100 ms p99 acceptance bar (or the
/// ablation fails to show batch-period staleness), or when a fresh kappa
/// run regresses past 2x the bar.
fn staleness_guard() {
    println!("\n== Staleness guard: kappa threshold-age check ==");
    let committed = std::fs::read_to_string("BENCH_staleness.json")
        .expect("reading committed BENCH_staleness.json");
    let kappa_section = committed.split("\"kappa\"").nth(1).expect("kappa section present");
    let committed_p99 = extract_json_number(kappa_section, "p99_ms")
        .expect("committed snapshot carries kappa.p99_ms");
    let batch_min = extract_json_number(&committed, "p99_stream_minutes")
        .expect("committed snapshot carries batch_ablation.p99_stream_minutes");
    println!(
        "  committed: kappa p99 {} ms (bar 100 ms), ablation {} stream-min",
        format_num(committed_p99),
        format_num(batch_min)
    );
    if committed_p99.is_nan() || committed_p99 > 100.0 || batch_min.is_nan() || batch_min < 1.0 {
        eprintln!("staleness_guard FAILED: committed snapshot violates the acceptance bar");
        std::process::exit(1);
    }
    let spec = KappaSpec::fast_refresh(256);
    let run = staleness_run(Some(spec.kappa_config()));
    let p99 = percentile(&run.ages_ms, 99.0);
    println!("  re-run: kappa p99 {} ms over {} samples", format_num(p99), run.ages_ms.len());
    // 2x headroom on the live re-run: CI machines are noisier than the
    // machine that wrote the snapshot, but a kappa path that lost its
    // in-stream refresh altogether overshoots this by orders of magnitude.
    if run.ages_ms.is_empty() || p99.is_nan() || p99 > 200.0 {
        eprintln!("staleness_guard FAILED: live kappa p99 {p99:.1} ms above the 200 ms ceiling");
        std::process::exit(1);
    }
    println!("staleness_guard OK");
}

// ---------------------------------------------------------------------------
// Multi-process scale-out (BENCH_scaleout.json)
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct ScaleMsg {
    value: u64,
}

impl tms_dsps::WireCodec for ScaleMsg {
    fn encode(&self, buf: &mut tms_dsps::bytes::BytesMut) {
        tms_dsps::WireCodec::encode(&self.value, buf);
    }
    fn decode(r: &mut tms_dsps::WireReader<'_>) -> Result<Self, tms_dsps::DspsError> {
        Ok(ScaleMsg { value: u64::decode(r)? })
    }
}

const SCALEOUT_TUPLES: u64 = 30_000;
const SCALEOUT_TASKS: usize = 8;

/// Fixed CPU cost per tuple (~tens of µs of integer mixing), heavy enough
/// that compute dominates framing and the workload can actually scale
/// with added worker processes.
fn scaleout_spin(value: u64) -> u64 {
    let mut x = value.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..25_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// 1 spout task feeding [`SCALEOUT_TASKS`] CPU-bound bolt tasks; the
/// scheduler spreads the bolt tasks across however many workers the run
/// uses, so the same topology measures 1, 2, and 4 processes.
fn scaleout_topology(tuples: u64) -> tms_dsps::Topology<ScaleMsg> {
    use tms_dsps::topology::{Parallelism, TopologyBuilder};
    use tms_dsps::{Bolt, Emitter, Grouping, Spout};

    struct Src {
        next: u64,
        end: u64,
    }
    impl Spout<ScaleMsg> for Src {
        fn next(&mut self) -> Option<ScaleMsg> {
            if self.next >= self.end {
                return None;
            }
            let v = self.next;
            self.next += 1;
            Some(ScaleMsg { value: v })
        }
    }
    struct Work;
    impl Bolt<ScaleMsg> for Work {
        fn process(&mut self, msg: ScaleMsg, _e: &mut dyn Emitter<ScaleMsg>) {
            std::hint::black_box(scaleout_spin(msg.value));
        }
    }
    TopologyBuilder::new("scaleout")
        .add_spout("src", Parallelism::of(1), move |_| Box::new(Src { next: 0, end: tuples }))
        .add_bolt("work", Parallelism::of(SCALEOUT_TASKS), vec![("src", Grouping::Shuffle)], |_| {
            Box::new(Work)
        })
        .build()
        .expect("scaleout topology builds")
}

/// Entry point for a spawned scale-out worker process (reached from
/// `main` before argument parsing). Only the bolt slice assigned by the
/// coordinator runs here; the spout factory is never invoked, so the
/// tuple count baked into the worker's copy of the topology is inert.
fn scaleout_worker() {
    tms_dsps::net::run_worker(|_hooks| scaleout_topology(SCALEOUT_TUPLES))
        .expect("worker slice drains cleanly");
}

/// One timed scale-out run: returns (best tuples/sec over `runs`, bolt
/// tuples counted by the merged metrics on the *worst* run). The count
/// comes from the coordinator's whole-topology view, so it doubles as the
/// tuple-conservation check across process boundaries.
fn scaleout_run(workers: usize, tuples: u64, runs: usize) -> (f64, u64) {
    let spec = ScaleoutSpec::of(workers);
    spec.validate().expect("scaleout spec is valid");
    let mut best = f64::INFINITY;
    let mut processed = u64::MAX;
    for _ in 0..runs {
        let t = scaleout_topology(tuples);
        let cluster = tms_dsps::DistributedCluster::new(spec.cluster_spec(), workers)
            .expect("cluster spec fits the worker count")
            .with_worker_args(Vec::new());
        let t0 = std::time::Instant::now();
        let hub = cluster
            .submit("scaleout", t, tms_dsps::RuntimeConfig::default())
            .expect("submit")
            .join()
            .expect("scaleout run completes");
        best = best.min(t0.elapsed().as_secs_f64());
        let counted: u64 = hub
            .merged_totals()
            .iter()
            .filter(|(_, c)| c.component == "work")
            .map(|(_, c)| c.throughput)
            .sum();
        processed = processed.min(counted);
    }
    (tuples as f64 / best, processed)
}

/// `scaleout`: the multi-process scale-out snapshot, written to
/// `BENCH_scaleout.json` at the repository root. The same CPU-bound
/// workload runs in 1, 2, and 4 worker processes over loopback TCP;
/// every run must conserve tuples across the process boundaries. The
/// recorded `cores` field tells the guard whether the ≥3x-at-4-workers
/// bar is meaningful for this snapshot (a 1-core box cannot scale out,
/// and honestly records that).
fn scaleout() {
    println!("\n== Scale-out: multi-process workers over loopback TCP ==");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut rows = Vec::new();
    let mut table = Vec::new();
    let mut base_tps = 0.0f64;
    let mut speedup_at_4 = 0.0f64;
    let mut conserved = true;
    for workers in [1usize, 2, 4] {
        let (tps, processed) = scaleout_run(workers, SCALEOUT_TUPLES, 3);
        if base_tps == 0.0 {
            base_tps = tps;
        }
        let speedup = tps / base_tps;
        if workers == 4 {
            speedup_at_4 = speedup;
        }
        let ok = processed == SCALEOUT_TUPLES;
        conserved &= ok;
        table.push(vec![
            workers.to_string(),
            format_num(tps),
            format!("{speedup:.2}x"),
            format!("{processed}/{SCALEOUT_TUPLES}{}", if ok { "" } else { "  <-- LOST TUPLES" }),
        ]);
        rows.push(format!(
            "    {{ \"workers\": {workers}, \"tuples_per_sec\": {tps:.1}, \
             \"speedup_vs_1\": {speedup:.3}, \"tuples_conserved\": {ok} }}"
        ));
    }
    print_table(
        "Scale-out: source tuples/sec by worker-process count (best of 3)",
        &["workers", "tuples/sec", "speedup vs 1", "conservation"],
        &table,
    );
    println!("  ({cores} cores visible to this run)");
    let json = format!(
        "{{\n  \"benchmark\": \"dsps_multiprocess_scaleout\",\n  \
         \"workload\": \"1 spout task -> {SCALEOUT_TASKS} CPU-bound bolt tasks \
         (25k-round integer mix per tuple), {SCALEOUT_TUPLES} source tuples, shuffle, \
         at-most-once, best of 3 runs per worker count; workers communicate over \
         loopback TCP with length-prefixed frames\",\n  \
         \"cores\": {cores},\n  \
         \"tuples\": {SCALEOUT_TUPLES},\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"speedup_at_4_workers\": {speedup_at_4:.3}\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write("BENCH_scaleout.json", json).expect("writing BENCH_scaleout.json");
    println!("(wrote BENCH_scaleout.json)");
    if !conserved {
        eprintln!("scaleout FAILED: tuples were lost crossing the process boundary");
        std::process::exit(1);
    }
    if cores >= 4 && speedup_at_4 < 3.0 {
        eprintln!(
            "scaleout FAILED: {speedup_at_4:.2}x at 4 workers on a {cores}-core box \
             (the acceptance bar is 3x)"
        );
        std::process::exit(1);
    }
    println!("scaleout OK");
}

/// `scaleout_guard`: CI gate over the committed `BENCH_scaleout.json`
/// plus a live 2-worker smoke run. The schema and conservation invariants
/// are checked unconditionally; the ≥3x-at-4-workers bar applies only
/// when the snapshot was taken on a box with at least 4 cores — a 1-core
/// CI runner cannot re-measure scale-out, but it can still prove the
/// multi-process path delivers every tuple.
fn scaleout_guard() {
    println!("\n== Scale-out guard: multi-process invariants ==");
    let committed = std::fs::read_to_string("BENCH_scaleout.json")
        .expect("reading committed BENCH_scaleout.json");
    let cores = extract_json_number(&committed, "cores")
        .expect("committed snapshot carries cores");
    let speedup_at_4 = extract_json_number(&committed, "speedup_at_4_workers")
        .expect("committed snapshot carries speedup_at_4_workers");
    for workers in [1, 2, 4] {
        assert!(
            committed.contains(&format!("\"workers\": {workers}")),
            "committed snapshot carries a row for {workers} workers"
        );
    }
    if committed.contains("\"tuples_conserved\": false") {
        eprintln!("scaleout_guard FAILED: committed snapshot records lost tuples");
        std::process::exit(1);
    }
    println!("  committed: {speedup_at_4:.2}x at 4 workers on a {cores:.0}-core box");
    if cores >= 4.0 && speedup_at_4 < 3.0 {
        eprintln!(
            "scaleout_guard FAILED: committed snapshot shows {speedup_at_4:.2}x at 4 \
             workers on a {cores:.0}-core box (bar: 3x)"
        );
        std::process::exit(1);
    }
    // Live smoke: a short 2-worker run must complete and conserve tuples
    // regardless of the box's core count.
    let (tps, processed) = scaleout_run(2, 4_000, 1);
    println!("  live smoke: 2 workers, {} t/s, {processed}/4000 tuples", format_num(tps));
    if processed != 4_000 {
        eprintln!("scaleout_guard FAILED: live 2-worker run lost tuples ({processed}/4000)");
        std::process::exit(1);
    }
    println!("scaleout_guard OK");
}

// ---------------------------------------------------------------------------
// Simulator-backed figures (11–17)
// ---------------------------------------------------------------------------

/// The paper feeds 60 000 bus traces per second (Section 5).
const STREAM_RATE: f64 = 60_000.0;

/// A calibrated estimation model: Function 1/2 fitted from real engine
/// measurements, Function 3 from the default contention shape. Calibrated
/// once per process (the measurements take ~a minute).
fn calibrated_model() -> EstimationModel {
    static MODEL: std::sync::OnceLock<EstimationModel> = std::sync::OnceLock::new();
    MODEL.get_or_init(calibrate_model).clone()
}

fn calibrate_model() -> EstimationModel {
    println!("(calibrating the latency model against the real CEP engine...)");
    let windows = [1usize, 10, 100, 1000];
    let tcounts = [48usize, 480, 2400];
    let tuples = 500;
    let mut f1 = Vec::new();
    for &l in &windows {
        for &t in &tcounts {
            f1.push((vec![l as f64, t as f64], measure_rule_latency(l, t, tuples)));
        }
    }
    let mut singles = std::collections::HashMap::new();
    for &l in &windows {
        singles.insert(l, measure_rule_latency(l, 480, tuples));
    }
    let mut f2 = Vec::new();
    for &l1 in &windows {
        for &l2 in &windows {
            f2.push((
                vec![singles[&l1], singles[&l2]],
                measure_engine_latency(&[l1, l2], 480, tuples),
            ));
        }
    }
    let default = EstimationModel::default_paper_shaped();
    let mut f1_model = PolyModel::fit(&f1, 1).expect("f1 fit");
    let mut f2_model = PolyModel::fit(&f2, 1).expect("f2 fit");
    // Stability guard for Function 2: the model is applied as a
    // *sequential fold* over an engine's rules (the paper's usage), so a
    // slope above ~1 compounds exponentially with the rule count. Our
    // engine is near-additive (engine ≈ latency1 + latency2); clamp the
    // fitted slopes into [0, 1.25] and refit the intercept so one noisy
    // grid point cannot blow the fold up.
    for c in &mut f2_model.coefficients[1..] {
        *c = c.clamp(0.0, 1.25);
    }
    {
        let n = f2.len() as f64;
        let resid: f64 = f2
            .iter()
            .map(|(x, y)| y - f2_model.coefficients[1] * x[0] - f2_model.coefficients[2] * x[1])
            .sum();
        f2_model.coefficients[0] = resid / n;
    }
    // Intercept floor correction: an OLS line over a range spanning three
    // orders of magnitude (l = 1..1000) can go negative at the small end,
    // which would credit cheap rules with *zero* cost and let the fold
    // collapse. Shift each intercept up just enough that the smallest
    // calibration point predicts at least its measured latency.
    for (model, samples) in [(&mut f1_model, &f1), (&mut f2_model, &f2)] {
        let (min_x, min_y) = samples
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(x, y)| (x.clone(), *y))
            .expect("calibration samples exist");
        let predicted = model.predict(&min_x).expect("predict in range");
        if predicted < min_y {
            model.coefficients[0] += min_y - predicted;
        }
    }
    EstimationModel { f1: f1_model, f2: f2_model, f3: default.f3 }
}

/// Layer groupings for the allocation experiments: two quadtree layers
/// plus the bus stops, every grouping seeing the full stream.
fn layer_groupings(windows: &[usize], model: &EstimationModel) -> Vec<Grouping> {
    let _ = model;
    let mk_regions = |n: usize, prefix: &str| -> Vec<RegionRate> {
        (0..n)
            .map(|i| RegionRate { region: format!("{prefix}{i}"), rate: STREAM_RATE / n as f64 })
            .collect()
    };
    let mk_rules = |tag: &str, loc: LocationSelector| -> Vec<RuleSpec> {
        windows
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                RuleSpec::new(format!("{tag}-w{w}-{i}"), Attribute::Delay, loc.clone(), w)
            })
            .collect()
    };
    vec![
        Grouping {
            name: "layer-2".into(),
            layers: vec![2],
            rules: mk_rules("l2", LocationSelector::QuadtreeLayer(2)),
            regions: mk_regions(16, "A"),
            thresholds: vec![16 * 48; windows.len()],
        },
        Grouping {
            name: "layer-3".into(),
            layers: vec![3],
            rules: mk_rules("l3", LocationSelector::QuadtreeLayer(3)),
            regions: mk_regions(64, "B"),
            thresholds: vec![64 * 48; windows.len()],
        },
        Grouping {
            name: "bus-stops".into(),
            layers: vec![9],
            rules: mk_rules("st", LocationSelector::BusStops),
            regions: mk_regions(192, "S"),
            thresholds: vec![192 * 48; windows.len()],
        },
    ]
}

/// Simulates an allocation: per-grouping engines → useful throughput
/// (bounded by the slowest grouping, since every grouping must see every
/// tuple) and weighted average latency.
fn simulate_allocation(
    groupings: &[Grouping],
    engines_per_grouping: &[usize],
    model: &EstimationModel,
    nodes: usize,
) -> (f64, f64) {
    let allocation = tms_core::allocation::Allocation {
        engines: engines_per_grouping.to_vec(),
        scores: vec![0.0; engines_per_grouping.len()],
    };
    let engines = ScenarioBuilder::allocation(groupings, &allocation, model, 48)
        .expect("scenario builds");
    let report = simulate(
        &engines,
        SimConfig { nodes, cores_per_node: 1, ..SimConfig::default() },
    )
    .expect("simulation runs");
    // Useful throughput: every grouping must process the full stream, so
    // the end-to-end rate is the slowest grouping's rate.
    let mut useful = f64::INFINITY;
    let mut idx = 0;
    for &k in engines_per_grouping {
        let tp: f64 = report.engines[idx..idx + k].iter().map(|e| e.throughput).sum();
        useful = useful.min(tp);
        idx += k;
    }
    (useful * 40.0, report.avg_latency_ms)
}

/// Merges consecutive layer groups per the contiguous-partition mask
/// (bit i set = split after group i), mirroring
/// `tms_core::allocation::best_grouping_allocation`'s candidate space.
fn merge_by_mask(layer_groups: &[Grouping], mask: u32) -> Vec<Grouping> {
    let n = layer_groups.len();
    let mut out: Vec<Grouping> = Vec::new();
    let mut current: Option<Grouping> = None;
    for (i, lg) in layer_groups.iter().enumerate() {
        match current.as_mut() {
            None => current = Some(lg.clone()),
            Some(c) => {
                c.layers.extend(lg.layers.iter().copied());
                c.rules.extend(lg.rules.iter().cloned());
                c.thresholds.extend(lg.thresholds.iter().copied());
                c.name = format!("{}+{}", c.name, lg.name);
            }
        }
        if i + 1 < n && (mask >> i) & 1 == 1 {
            out.push(current.take().expect("current set"));
        }
    }
    out.push(current.take().expect("current set"));
    out
}

fn fig11() {
    println!("\n== Figure 11: rules allocation, proposed vs round-robin ==");
    let model = calibrated_model();
    let workloads: Vec<(&str, Vec<usize>)> =
        vec![("Workload 1", vec![1, 10, 100]), ("Workload 2", vec![100, 1000])];
    let mut series = Vec::new();
    for (wname, windows) in &workloads {
        let layer_groups = layer_groupings(windows, &model);
        let mut ours = Series::new(format!("proposed {wname}"));
        let mut rr = Series::new(format!("round-robin {wname}"));
        for n in (3..=30).step_by(3) {
            // The start-up optimizer evaluates every candidate layer
            // grouping through the full Figure 7 model — including node
            // co-location (Function 3), which the simulator embodies —
            // and keeps the best.
            let mut best_tp = 0.0f64;
            for mask in 0..(1u32 << (layer_groups.len() - 1)) {
                let candidate = merge_by_mask(&layer_groups, mask);
                if n < candidate.len() {
                    continue;
                }
                // Two allocations per candidate: Algorithm 2's greedy and
                // the even split (the greedy's estimate ignores Function 3
                // contention, so the even split occasionally wins under
                // co-location; the optimizer keeps whichever the full
                // model scores higher).
                let greedy = allocate(&model, &candidate, n).expect("allocation");
                let even = round_robin(&candidate, n).expect("even split");
                for alloc in [&greedy, &even] {
                    let (tp, _) = simulate_allocation(&candidate, &alloc.engines, &model, 7);
                    best_tp = best_tp.max(tp);
                }
            }
            ours.push(n as f64, best_tp);
            let rr_alloc = round_robin(&layer_groups, n).expect("round robin");
            let (tp, _) = simulate_allocation(&layer_groups, &rr_alloc.engines, &model, 7);
            rr.push(n as f64, tp);
        }
        series.push(ours);
        series.push(rr);
    }
    print_series("Figure 11: throughput (tuples / 40 s window)", "engines", &series);
    let mut result = ExperimentResult::new("fig11", "Figure 11: rules allocation throughput");
    result.series = series;
    result.save_json(&results_dir()).expect("writing results");
}

fn fig12_13() {
    println!("\n== Figures 12/13: partitioning approaches ==");
    let model = calibrated_model();
    // 10 rules with window length 100 (5 bus-stop + 5 quadtree in the
    // paper; the routing policies are what differ here).
    let rules: Vec<RuleSpec> = (0..10)
        .map(|i| {
            RuleSpec::new(
                format!("p-{i}"),
                Attribute::Delay,
                LocationSelector::QuadtreeLeaves,
                100,
            )
        })
        .collect();
    let builder = ScenarioBuilder {
        model: model.clone(),
        regions: (0..64)
            .map(|i| RegionRate { region: format!("R{i}"), rate: STREAM_RATE / 64.0 })
            .collect(),
        threshold_cells_per_location: 48,
    };
    let approaches = [
        ("our approach", PartitioningApproach::Proposed),
        ("all grouping", PartitioningApproach::AllGrouping),
        ("all rules", PartitioningApproach::AllRules),
    ];
    let mut latency_series = Vec::new();
    let mut throughput_series = Vec::new();
    for (name, approach) in approaches {
        let mut lat = Series::new(name);
        let mut tp = Series::new(name);
        for n in 1..=15usize {
            let engines = builder.partitioning(approach, &rules, n).expect("scenario");
            let report = simulate(
                &engines,
                SimConfig { nodes: 7, cores_per_node: 1, ..SimConfig::default() },
            )
            .expect("simulation");
            // All-grouping processes each tuple n times: its useful
            // throughput divides by n.
            let useful = match approach {
                PartitioningApproach::AllGrouping => report.total_throughput / n as f64,
                _ => report.total_throughput,
            };
            lat.push(n as f64, report.avg_latency_ms);
            tp.push(n as f64, useful * 40.0);
        }
        latency_series.push(lat);
        throughput_series.push(tp);
    }
    print_series("Figure 12: observed latency (ms)", "engines", &latency_series);
    print_series("Figure 13: throughput (tuples / 40 s window)", "engines", &throughput_series);
    let mut result = ExperimentResult::new("fig12_13", "Figures 12/13: partitioning approaches");
    result.series.extend(latency_series.into_iter().map(|mut s| {
        s.name = format!("latency: {}", s.name);
        s
    }));
    result.series.extend(throughput_series.into_iter().map(|mut s| {
        s.name = format!("throughput: {}", s.name);
        s
    }));
    result.save_json(&results_dir()).expect("writing results");
}

fn workload_rules(windows: &[usize]) -> Vec<RuleSpec> {
    // Ten rules per workload: five on bus stops, five on quadtree leaves
    // (Section 5.5), cycling over the given window lengths.
    let mut out = Vec::new();
    for i in 0..5 {
        let w = windows[i % windows.len()];
        out.push(RuleSpec::new(
            format!("wl-stops-{i}"),
            Attribute::Delay,
            LocationSelector::BusStops,
            w,
        ));
    }
    for i in 0..5 {
        let w = windows[i % windows.len()];
        out.push(RuleSpec::new(
            format!("wl-leaves-{i}"),
            Attribute::Delay,
            LocationSelector::QuadtreeLeaves,
            w,
        ));
    }
    out
}

fn fig14_15() {
    println!("\n== Figures 14/15: different workloads ==");
    let model = calibrated_model();
    let workloads: Vec<(&str, Vec<usize>)> = vec![
        ("last event", vec![1]),
        ("last 10 values", vec![10]),
        ("last 100 values", vec![100]),
        ("last event + last 10", vec![1, 10]),
        ("last event + last 100", vec![1, 100]),
        ("last 10 and 100", vec![10, 100]),
        ("all the rules", vec![1, 10, 100]),
    ];
    let mut latency_series = Vec::new();
    let mut throughput_series = Vec::new();
    for (name, windows) in &workloads {
        let rules = workload_rules(windows);
        let builder = ScenarioBuilder {
            model: model.clone(),
            regions: (0..64)
                .map(|i| RegionRate { region: format!("R{i}"), rate: STREAM_RATE / 64.0 })
                .collect(),
            threshold_cells_per_location: 48,
        };
        let mut lat = Series::new(*name);
        let mut tp = Series::new(*name);
        for n in 1..=15usize {
            let engines = builder
                .partitioning(PartitioningApproach::Proposed, &rules, n)
                .expect("scenario");
            let report = simulate(
                &engines,
                SimConfig { nodes: 7, cores_per_node: 1, ..SimConfig::default() },
            )
            .expect("simulation");
            lat.push(n as f64, report.avg_latency_ms);
            tp.push(n as f64, report.window_throughput);
        }
        latency_series.push(lat);
        throughput_series.push(tp);
    }
    print_series("Figure 14: observed latency (ms)", "engines", &latency_series);
    print_series("Figure 15: throughput (tuples / 40 s window)", "engines", &throughput_series);
    let mut result = ExperimentResult::new("fig14_15", "Figures 14/15: workload mixes");
    result.series.extend(latency_series.into_iter().map(|mut s| {
        s.name = format!("latency: {}", s.name);
        s
    }));
    result.series.extend(throughput_series.into_iter().map(|mut s| {
        s.name = format!("throughput: {}", s.name);
        s
    }));
    result.save_json(&results_dir()).expect("writing results");
}

fn fig16_17() {
    println!("\n== Figures 16/17: scalability with 3/5/7 VMs ==");
    let model = calibrated_model();
    let rules = workload_rules(&[1, 10, 100]);
    let builder = ScenarioBuilder {
        model: model.clone(),
        regions: (0..64)
            .map(|i| RegionRate { region: format!("R{i}"), rate: STREAM_RATE / 64.0 })
            .collect(),
        threshold_cells_per_location: 48,
    };
    let mut latency_series = Vec::new();
    let mut throughput_series = Vec::new();
    for nodes in [3usize, 5, 7] {
        let mut lat = Series::new(format!("VMs {nodes}"));
        let mut tp = Series::new(format!("VMs {nodes}"));
        for n in 1..=15usize {
            let engines = builder
                .partitioning(PartitioningApproach::Proposed, &rules, n)
                .expect("scenario");
            let report = simulate(
                &engines,
                SimConfig { nodes, cores_per_node: 1, ..SimConfig::default() },
            )
            .expect("simulation");
            lat.push(n as f64, report.avg_latency_ms);
            tp.push(n as f64, report.window_throughput);
        }
        latency_series.push(lat);
        throughput_series.push(tp);
    }
    print_series("Figure 16: observed latency (ms)", "engines", &latency_series);
    print_series("Figure 17: throughput (tuples / 40 s window)", "engines", &throughput_series);
    let mut result = ExperimentResult::new("fig16_17", "Figures 16/17: VM scalability");
    result.series.extend(latency_series.into_iter().map(|mut s| {
        s.name = format!("latency: {}", s.name);
        s
    }));
    result.series.extend(throughput_series.into_iter().map(|mut s| {
        s.name = format!("throughput: {}", s.name);
        s
    }));
    result.save_json(&results_dir()).expect("writing results");
}

// fig11 uses `allocate` indirectly through best_grouping_allocation; keep
// the direct import exercised for API stability.
#[allow(dead_code)]
fn _api_stability(model: &EstimationModel, groupings: &[Grouping]) {
    let _ = allocate(model, groupings, groupings.len());
}
