//! The traffic monitoring topology (Figure 8): BusReader spout →
//! PreProcess → AreaTracker → BusStopsTracker → Splitter → Esper bolts →
//! EventsStorer, expressed over the DSPS substrate.

use crate::rules::{RuleSpec, SpatialContext};
use crate::thresholds::{Detection, RetrievalMethod, RuleEngine, RuleMigration};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tms_cep::CepError;
use tms_dsps::{
    chaos_wrap, Bolt, BoltContext, Emitter, FaultConfig, Grouping, MigrationCoordinator,
    Parallelism, RuleProfile, Spout, Topology, TopologyBuilder,
};
use tms_geo::{BusStopIndex, RegionQuadtree};
use tms_storage::{RemoteDb, TableStore, ThresholdStore};
use tms_traffic::{Attribute, BusTrace, EnrichedTrace, Preprocessor};

/// The message flowing through the topology.
///
/// Data tuples carry `seq`, the trace's global replay position assigned
/// by the spout. Every stage up to the Splitter is one-in/one-out, so the
/// sequence survives intact and the Splitter can restore the canonical
/// replay order no matter how the multi-task stages interleave — the
/// engines' windowed evaluation is order-sensitive, and without the
/// resequencer two runs of the same input could detect different events.
#[derive(Debug, Clone)]
pub enum TrafficMessage {
    /// A raw bus report from the spout.
    Raw {
        /// Global replay position of this trace.
        seq: u64,
        /// The raw report.
        trace: BusTrace,
    },
    /// An enriched trace (kinematics and/or spatial ids attached).
    Enriched {
        /// Global replay position, propagated from [`TrafficMessage::Raw`].
        seq: u64,
        /// The enriched report.
        trace: Arc<EnrichedTrace>,
    },
    /// A detection fired by an Esper bolt.
    Detection(Detection),
    /// Elastic drain barrier: per-sender FIFO guarantees the source engine
    /// sees it after every tuple routed under the old table, so the state
    /// it extracts for migration ticket `id` is complete.
    Barrier {
        /// The migration ticket this barrier drains for.
        id: u64,
    },
    /// Elastic install trigger: tells the destination engine to absorb
    /// ticket `id`'s payload from its coordinator mailbox now. Purely an
    /// accelerator — engines also poll their mailbox on every tuple, so a
    /// lost trigger delays absorption rather than losing state.
    Install {
        /// The migration ticket to absorb.
        id: u64,
    },
    /// In-stream statistics publication notice: the StatsBolt republished
    /// the statistics tables; engines with an older `version` re-read
    /// their thresholds from the store. Broadcast (all-grouped) to every
    /// Esper task.
    StatsRefresh {
        /// Monotonic publication version; engines ignore versions they
        /// have already applied (duplicates under at-least-once replay).
        version: u64,
    },
}

// ---------------------------------------------------------------------------
// Spout and bolts
// ---------------------------------------------------------------------------

/// The BusReader spout: replays a shared slice of traces. Tasks stripe
/// the input *by vehicle* (task `i` reads the vehicles with
/// `vehicle_id % n == i`) so multiple reader tasks divide the file, like
/// the paper's two-task spout, while each vehicle's whole history still
/// flows from a single reader. The vehicle-keyed PreProcess stage then
/// receives every vehicle's reports in timestamp order over one FIFO
/// channel pair — its per-vehicle kinematics stay deterministic no matter
/// how the reader threads interleave. Each emitted tuple carries its
/// global position in the replay as `seq` for the Splitter's resequencer.
pub struct BusReaderSpout {
    traces: Arc<Vec<BusTrace>>,
    cursor: usize,
    lane: u64,
    stride: u64,
}

impl BusReaderSpout {
    /// Creates the spout task reading stripe `task_index` of `task_count`.
    pub fn new(traces: Arc<Vec<BusTrace>>, task_index: usize, task_count: usize) -> Self {
        BusReaderSpout {
            traces,
            cursor: 0,
            lane: task_index as u64,
            stride: task_count.max(1) as u64,
        }
    }
}

impl Spout<TrafficMessage> for BusReaderSpout {
    fn next(&mut self) -> Option<TrafficMessage> {
        loop {
            let t = self.traces.get(self.cursor)?;
            let seq = self.cursor as u64;
            self.cursor += 1;
            if u64::from(t.vehicle_id) % self.stride == self.lane {
                return Some(TrafficMessage::Raw { seq, trace: *t });
            }
        }
    }
}

/// PreProcess bolt: computes speed and actual delay (Section 3.1).
/// Requires fields grouping on `vehicle_id` so one task sees a vehicle's
/// whole history.
pub struct PreProcessBolt {
    pre: Preprocessor,
}

impl PreProcessBolt {
    /// Creates a fresh preprocessor task.
    pub fn new() -> Self {
        PreProcessBolt { pre: Preprocessor::new() }
    }
}

impl Default for PreProcessBolt {
    fn default() -> Self {
        Self::new()
    }
}

impl Bolt<TrafficMessage> for PreProcessBolt {
    fn process(&mut self, msg: TrafficMessage, emitter: &mut dyn Emitter<TrafficMessage>) {
        if let TrafficMessage::Raw { seq, trace } = msg {
            let enriched = self.pre.enrich(trace);
            emitter.emit(TrafficMessage::Enriched { seq, trace: Arc::new(enriched) });
        }
    }
}

/// AreaTracker bolt: attaches the quadtree region chain ("each task of
/// this bolt has an instance of the Region Quadtree", Section 4.3.2).
pub struct AreaTrackerBolt {
    quadtree: Arc<RegionQuadtree>,
}

impl AreaTrackerBolt {
    /// Creates a task holding its own reference to the shared quadtree.
    pub fn new(quadtree: Arc<RegionQuadtree>) -> Self {
        AreaTrackerBolt { quadtree }
    }
}

impl Bolt<TrafficMessage> for AreaTrackerBolt {
    fn process(&mut self, msg: TrafficMessage, emitter: &mut dyn Emitter<TrafficMessage>) {
        if let TrafficMessage::Enriched { seq, trace: e } = msg {
            let mut enriched = (*e).clone();
            enriched.areas = self
                .quadtree
                .locate_all_layers(&enriched.trace.position)
                .iter()
                .map(|r| SpatialContext::region_id(r.id))
                .collect();
            emitter.emit(TrafficMessage::Enriched { seq, trace: Arc::new(enriched) });
        }
    }
}

/// BusStopsTracker bolt: attaches the recovered closest bus stop.
pub struct BusStopsTrackerBolt {
    stops: Arc<BusStopIndex>,
}

impl BusStopsTrackerBolt {
    /// Creates a task holding the shared bus-stop index.
    pub fn new(stops: Arc<BusStopIndex>) -> Self {
        BusStopsTrackerBolt { stops }
    }
}

impl Bolt<TrafficMessage> for BusStopsTrackerBolt {
    fn process(&mut self, msg: TrafficMessage, emitter: &mut dyn Emitter<TrafficMessage>) {
        if let TrafficMessage::Enriched { seq, trace: e } = msg {
            let mut enriched = (*e).clone();
            enriched.bus_stop = self
                .stops
                .closest_stop(enriched.trace.line_id, enriched.trace.direction, &enriched.trace.position)
                .map(|s| SpatialContext::stop_id(s.id));
            emitter.emit(TrafficMessage::Enriched { seq, trace: Arc::new(enriched) });
        }
    }
}

// ---------------------------------------------------------------------------
// Splitter: the partitioning schema at run time (Section 4.2.1)
// ---------------------------------------------------------------------------

/// How one grouping's tuples select their routing key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupingKind {
    /// Key = the trace's region at this quadtree layer.
    QuadtreeLayer(u8),
    /// Key = the trace's recovered bus stop.
    BusStops,
}

/// One grouping's routing: location key → global Esper-task index.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingRoute {
    /// How tuples select their routing key for this grouping.
    pub kind: GroupingKind,
    /// Location key → global Esper-task index.
    pub table: HashMap<String, usize>,
}

/// The Splitter's full plan: one route per grouping; each tuple is sent to
/// one engine per grouping (Section 4.2.2's re-transmission accounting).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SplitPlan {
    /// One route per grouping; a tuple is sent to one engine per route.
    pub routes: Vec<GroupingRoute>,
}

impl SplitPlan {
    /// The engines this trace must reach (deduplicated).
    pub fn engines_for(&self, e: &EnrichedTrace) -> Vec<usize> {
        let mut out = Vec::new();
        for route in &self.routes {
            let target = match &route.kind {
                GroupingKind::QuadtreeLayer(layer) => {
                    // The trace's area chain is root-first; the region at
                    // `layer` is areas[layer] when the tree is that deep
                    // here, otherwise the deepest (leaf) entry. Unknown
                    // regions walk up the chain until the table knows one.
                    if e.areas.is_empty() {
                        None
                    } else {
                        let idx = (*layer as usize).min(e.areas.len() - 1);
                        e.areas[..=idx]
                            .iter()
                            .rev()
                            .find_map(|a| route.table.get(a))
                            .copied()
                    }
                }
                GroupingKind::BusStops => {
                    e.bus_stop.as_ref().and_then(|s| route.table.get(s)).copied()
                }
            };
            if let Some(t) = target {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Like [`Self::engines_for`], but per grouping and without
    /// deduplication: `(grouping index, matched routing key, engine)`.
    /// The elastic splitter uses this to account observed per-region load
    /// while routing.
    pub fn routes_for(&self, e: &EnrichedTrace) -> Vec<(usize, String, usize)> {
        let mut out = Vec::new();
        for (g, route) in self.routes.iter().enumerate() {
            let hit = match &route.kind {
                GroupingKind::QuadtreeLayer(layer) => {
                    if e.areas.is_empty() {
                        None
                    } else {
                        let idx = (*layer as usize).min(e.areas.len() - 1);
                        e.areas[..=idx]
                            .iter()
                            .rev()
                            .find_map(|a| route.table.get(a).map(|t| (a.clone(), *t)))
                    }
                }
                GroupingKind::BusStops => e
                    .bus_stop
                    .as_ref()
                    .and_then(|s| route.table.get(s).map(|t| (s.clone(), *t))),
            };
            if let Some((key, target)) = hit {
                out.push((g, key, target));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Elastic re-partitioning plumbing
// ---------------------------------------------------------------------------

/// What one migration ticket moves: a routing-table region of one grouping
/// and the monitored location keys under it.
#[derive(Debug, Clone)]
pub struct MigrationMeta {
    /// Index into [`SplitPlan::routes`] / the allocation's groupings.
    pub grouping: usize,
    /// The routing-table key whose ownership moves.
    pub region: String,
    /// Monitored location keys under `region` (union over the grouping's
    /// rules) whose engine state ships with the move.
    pub locations: Vec<String>,
}

/// The state deposited by a source engine: the moved window/accumulator/
/// threshold partitions plus the rule specs the destination needs to
/// install any rule it does not run yet.
#[derive(Debug, Clone)]
pub struct MigrationPayload {
    /// Specs for every rule named in `migration`, in source order.
    pub specs: Vec<RuleSpec>,
    /// The extracted per-rule locations and shipped partition state.
    pub migration: RuleMigration,
}

/// The topology's migration coordinator specialization.
pub type TrafficCoordinator = MigrationCoordinator<MigrationMeta, MigrationPayload>;

/// Shared state of the elastic control loop: the coordinator, the *live*
/// routing and engine plans (swapped atomically under their locks as
/// migrations commit — restarted engine tasks rebuild from the live plan,
/// so supervised recovery and elasticity compose), and the splitter's
/// observed per-region tuple counts that the rebalancer drains.
pub struct ElasticHandle {
    /// Ticket rendezvous between rebalancer, splitter, and engines.
    pub coordinator: TrafficCoordinator,
    /// The live routing plan; the splitter routes from this on every tuple.
    pub split_plan: RwLock<SplitPlan>,
    /// The live rule assignment; engine tasks prepare from this.
    pub engine_plan: RwLock<EnginePlan>,
    /// `(grouping, region)` → tuples routed since the last drain.
    observed: Mutex<HashMap<(usize, String), u64>>,
    /// How long the splitter waits for a drain barrier's deposit before
    /// aborting the migration.
    pub drain_timeout: Duration,
}

impl ElasticHandle {
    /// Creates the handle with the start-up plans as the live state.
    pub fn new(split_plan: SplitPlan, engine_plan: EnginePlan, drain_timeout: Duration) -> Self {
        ElasticHandle {
            coordinator: TrafficCoordinator::new(),
            split_plan: RwLock::new(split_plan),
            engine_plan: RwLock::new(engine_plan),
            observed: Mutex::new(HashMap::new()),
            drain_timeout,
        }
    }

    /// Drains the observed per-region counts accumulated since the last
    /// call (the rebalancer's measurement window).
    pub fn take_observed(&self) -> HashMap<(usize, String), u64> {
        std::mem::take(&mut self.observed.lock())
    }
}

impl std::fmt::Debug for ElasticHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticHandle")
            .field("coordinator", &self.coordinator)
            .field("drain_timeout", &self.drain_timeout)
            .finish_non_exhaustive()
    }
}

/// Restores the spout's global emission order at the topology's merge
/// point. The shuffled multi-task stages between the spout and the
/// Splitter preserve each tuple's `seq` but interleave tuples from
/// different tasks in thread-scheduling order; the resequencer buffers
/// out-of-order arrivals and releases them in `seq` order, so a single
/// splitter task feeds the engines a canonical, reproducible stream.
///
/// Replayed tuples (at-least-once retries) whose sequence was already
/// released pass straight through — holding them back could lose a tuple
/// the engines never saw. If a sequence number never arrives (a tuple
/// dropped upstream by fault injection), the buffer caps at
/// [`Resequencer::MAX_PENDING`] and skips the gap rather than deadlock.
struct Resequencer {
    next_seq: u64,
    pending: BTreeMap<u64, Arc<EnrichedTrace>>,
}

impl Resequencer {
    /// Largest number of buffered out-of-order tuples before the
    /// resequencer gives up on a gap and releases what it has.
    const MAX_PENDING: usize = 1 << 16;

    fn new() -> Self {
        Resequencer { next_seq: 0, pending: BTreeMap::new() }
    }

    /// Accepts one arrival and returns every tuple now ready, in order.
    fn push(&mut self, seq: u64, trace: Arc<EnrichedTrace>) -> Vec<(u64, Arc<EnrichedTrace>)> {
        if seq < self.next_seq {
            return vec![(seq, trace)]; // replay of an already-released sequence
        }
        self.pending.insert(seq, trace);
        let mut ready = Vec::new();
        loop {
            let over_capacity = self.pending.len() > Self::MAX_PENDING;
            match self.pending.first_entry() {
                // In order — or a gap outlived the whole in-flight window
                // (the tuple was lost upstream): skip to the oldest
                // survivor rather than wait forever.
                Some(entry) if *entry.key() == self.next_seq || over_capacity => {
                    let head = *entry.key();
                    self.next_seq = head + 1;
                    ready.push((head, entry.remove()));
                }
                _ => break,
            }
        }
        ready
    }

    /// Releases everything still buffered (end of stream), in order.
    fn drain(&mut self) -> Vec<(u64, Arc<EnrichedTrace>)> {
        let pending = std::mem::take(&mut self.pending);
        pending
            .into_iter()
            .inspect(|(seq, _)| self.next_seq = seq + 1)
            .collect()
    }
}

/// The Splitter bolt: restores the canonical replay order via its
/// [`Resequencer`], then routes each tuple to the engines that own its
/// locations, via direct grouping. With an [`ElasticHandle`] attached it
/// also executes migrations: before each tuple it runs any pending
/// ticket's pause–drain–handoff sequence and routes from the live plan,
/// counting per-region load for the rebalancer.
pub struct SplitterBolt {
    plan: Arc<SplitPlan>,
    elastic: Option<Arc<ElasticHandle>>,
    reseq: Resequencer,
}

impl SplitterBolt {
    /// Creates a splitter task sharing the routing plan.
    pub fn new(plan: Arc<SplitPlan>) -> Self {
        SplitterBolt { plan, elastic: None, reseq: Resequencer::new() }
    }

    /// Attaches the elastic control loop (single-splitter topologies only:
    /// the drain barrier's FIFO argument needs one routing task).
    pub fn with_elastic(mut self, handle: Arc<ElasticHandle>) -> Self {
        self.elastic = Some(handle);
        self
    }

    /// Executes every pending migration ticket, pausing routing while each
    /// drains: emit the barrier to the source, await the deposit, then
    /// hand the payload to the destination's mailbox, swap the live plans,
    /// and trigger the install. A timed-out drain aborts the ticket (the
    /// source keeps its state; the rebalancer may retry later).
    fn run_migrations(&self, h: &ElasticHandle, emitter: &mut dyn Emitter<TrafficMessage>) {
        while let Some(req) = h.coordinator.begin_next() {
            let started = Instant::now();
            emitter.emit_direct(req.from, TrafficMessage::Barrier { id: req.id });
            let Some(payload) = h.coordinator.await_deposit(req.id, h.drain_timeout) else {
                continue; // aborted; the coordinator counted it
            };
            // Deposit-to-mailbox *before* the route swap: once tuples flow
            // to the destination, the state they extend is already there
            // (or arrives with the install trigger queued ahead of them).
            h.coordinator.post_install(req.to, req.id, payload.clone());
            {
                let mut plan = h.split_plan.write();
                if let Some(route) = plan.routes.get_mut(req.meta.grouping) {
                    route.table.insert(req.meta.region.clone(), req.to);
                }
            }
            h.engine_plan.write().apply_migration(req.from, req.to, &payload);
            emitter.emit_direct(req.to, TrafficMessage::Install { id: req.id });
            h.coordinator.note_completed(started.elapsed());
        }
    }
}

impl SplitterBolt {
    /// Routes one in-order tuple to the engines owning its locations.
    fn route(&self, seq: u64, e: Arc<EnrichedTrace>, emitter: &mut dyn Emitter<TrafficMessage>) {
        match &self.elastic {
            None => {
                for engine in self.plan.engines_for(&e) {
                    emitter
                        .emit_direct(engine, TrafficMessage::Enriched { seq, trace: e.clone() });
                }
            }
            Some(h) => {
                let routes = h.split_plan.read().routes_for(&e);
                let mut engines: Vec<usize> = Vec::new();
                {
                    let mut observed = h.observed.lock();
                    for (g, key, engine) in &routes {
                        *observed.entry((*g, key.clone())).or_insert(0) += 1;
                        if !engines.contains(engine) {
                            engines.push(*engine);
                        }
                    }
                }
                for engine in engines {
                    emitter
                        .emit_direct(engine, TrafficMessage::Enriched { seq, trace: e.clone() });
                }
            }
        }
    }
}

impl Bolt<TrafficMessage> for SplitterBolt {
    fn process(&mut self, msg: TrafficMessage, emitter: &mut dyn Emitter<TrafficMessage>) {
        if let Some(h) = self.elastic.clone() {
            self.run_migrations(&h, emitter);
        }
        if let TrafficMessage::Enriched { seq, trace } = msg {
            for (seq, e) in self.reseq.push(seq, trace) {
                self.route(seq, e, emitter);
            }
        }
    }

    fn finish(&mut self, emitter: &mut dyn Emitter<TrafficMessage>) {
        for (seq, e) in self.reseq.drain() {
            self.route(seq, e, emitter);
        }
    }
}

/// A Splitter baseline that fans every tuple to every engine — the *All
/// Grouping* approach of Figures 12/13.
pub struct BroadcastSplitterBolt {
    engines: usize,
}

impl BroadcastSplitterBolt {
    /// Creates a broadcast splitter over `engines` engines.
    pub fn new(engines: usize) -> Self {
        BroadcastSplitterBolt { engines }
    }
}

impl Bolt<TrafficMessage> for BroadcastSplitterBolt {
    fn process(&mut self, msg: TrafficMessage, emitter: &mut dyn Emitter<TrafficMessage>) {
        if let TrafficMessage::Enriched { seq, trace } = msg {
            for engine in 0..self.engines {
                emitter
                    .emit_direct(engine, TrafficMessage::Enriched { seq, trace: trace.clone() });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Esper bolt and events storer
// ---------------------------------------------------------------------------

/// The per-engine rule assignment computed at start-up: for every Esper
/// task, the rules it runs and the locations it monitors for each.
#[derive(Debug, Clone, Default)]
pub struct EnginePlan {
    /// `per_engine[e]` lists `(rule, monitored locations)`.
    pub per_engine: Vec<Vec<(RuleSpec, Vec<String>)>>,
}

impl EnginePlan {
    /// Number of engines planned.
    pub fn engines(&self) -> usize {
        self.per_engine.len()
    }

    /// Applies a committed migration to the live assignment: the moved
    /// locations leave engine `from`'s rule entries (entries emptied of
    /// locations are dropped) and join engine `to`'s, installing the
    /// shipped spec for any rule `to` did not run yet. Restarted engine
    /// tasks preparing from this plan then match the live routing table.
    pub fn apply_migration(&mut self, from: usize, to: usize, payload: &MigrationPayload) {
        for (rule, locs) in &payload.migration.rules {
            if let Some(entries) = self.per_engine.get_mut(from) {
                if let Some(pos) = entries.iter().position(|(s, _)| s.name == *rule) {
                    entries[pos].1.retain(|l| !locs.contains(l));
                    if entries[pos].1.is_empty() {
                        entries.remove(pos);
                    }
                }
            }
            if let Some(entries) = self.per_engine.get_mut(to) {
                match entries.iter_mut().find(|(s, _)| s.name == *rule) {
                    Some((_, existing)) => {
                        for l in locs {
                            if !existing.contains(l) {
                                existing.push(l.clone());
                            }
                        }
                    }
                    None => {
                        if let Some(spec) = payload.specs.iter().find(|s| s.name == *rule) {
                            entries.push((spec.clone(), locs.clone()));
                        }
                    }
                }
            }
        }
    }
}

/// Shared mailbox where Esper-bolt tasks publish their cumulative
/// per-rule profiles, keyed by task index. The monitor's profile source
/// reads [`Self::collect`] each sampling window; a restarted task simply
/// overwrites its slot (the hub's delta logic tolerates counter resets).
#[derive(Debug, Default)]
pub struct EsperProfileRegistry {
    slots: Mutex<HashMap<usize, Vec<RuleProfile>>>,
}

impl EsperProfileRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes task `task`'s cumulative profiles, replacing its slot.
    pub fn publish(&self, task: usize, profiles: Vec<RuleProfile>) {
        self.slots.lock().insert(task, profiles);
    }

    /// All published profiles flattened across tasks, ordered by
    /// `(rule, engine)` so snapshots are deterministic.
    pub fn collect(&self) -> Vec<RuleProfile> {
        let mut out: Vec<RuleProfile> =
            self.slots.lock().values().flatten().cloned().collect();
        out.sort_by(|a, b| a.rule.cmp(&b.rule).then(a.engine.cmp(&b.engine)));
        out
    }
}

/// The Esper bolt: one [`RuleEngine`] per task, rules installed from the
/// shared [`EnginePlan`]. Detections are forwarded downstream.
pub struct EsperBolt {
    plan: Arc<EnginePlan>,
    method: RetrievalMethod,
    store: ThresholdStore,
    db: Option<RemoteDb>,
    /// Whether the engine's incremental evaluation path is enabled.
    incremental: bool,
    /// Whether the engine's sharing planner is enabled (shared windows,
    /// accumulator banks, and keyed threshold indexes across same-shape
    /// rules).
    sharing: bool,
    /// When set, the engine profiles every statement and publishes
    /// per-rule profiles here after each processed tuple.
    profiles: Option<Arc<EsperProfileRegistry>>,
    /// When set, the task prepares from the handle's *live* engine plan
    /// and takes part in the migration protocol.
    elastic: Option<Arc<ElasticHandle>>,
    task_index: usize,
    engine: Option<RuleEngine>,
    /// Install errors surface on the first processed tuple (prepare()
    /// cannot fail in the Bolt contract).
    install_error: Option<String>,
    /// Highest [`TrafficMessage::StatsRefresh`] version applied, so
    /// replayed or duplicated refresh notices are idempotent.
    stats_version: u64,
}

impl EsperBolt {
    /// Creates an Esper bolt task factory state (the engine itself is
    /// built in `prepare`, on the executor thread).
    pub fn new(
        plan: Arc<EnginePlan>,
        method: RetrievalMethod,
        store: ThresholdStore,
        db: Option<RemoteDb>,
    ) -> Self {
        EsperBolt {
            plan,
            method,
            store,
            db,
            incremental: true,
            sharing: true,
            profiles: None,
            elastic: None,
            task_index: 0,
            engine: None,
            install_error: None,
            stats_version: 0,
        }
    }

    /// Selects the engine's evaluation mode (incremental by default;
    /// `false` forces full-window rescans — the ablation baseline).
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Selects whether the sharing planner may serve same-shape rules
    /// from shared cluster state (on by default; `false` keeps every
    /// statement on private windows).
    pub fn with_sharing(mut self, enabled: bool) -> Self {
        self.sharing = enabled;
        self
    }

    /// Enables per-rule profiling, publishing into `registry`.
    pub fn with_profiling(mut self, registry: Arc<EsperProfileRegistry>) -> Self {
        self.profiles = Some(registry);
        self
    }

    /// Attaches the elastic control loop: prepare from the live plan,
    /// honor drain barriers and install triggers.
    pub fn with_elastic(mut self, handle: Arc<ElasticHandle>) -> Self {
        self.elastic = Some(handle);
        self
    }

    /// Absorbs every payload waiting in this task's install mailbox.
    /// Called on install triggers and polled before every tuple, so a
    /// dropped trigger only delays absorption.
    fn absorb_installs(engine: &mut RuleEngine, h: &ElasticHandle, task: usize) {
        for (id, payload) in h.coordinator.take_installs(task) {
            if let Err(e) = engine.absorb_migration(&payload.specs, &payload.migration) {
                panic!("engine {task} failed to absorb migration ticket {id}: {e}");
            }
        }
    }

    /// Handles a drain barrier: extract the ticket's state, deposit it,
    /// and evict the source copy only if the deposit committed (a late
    /// deposit after the splitter gave up is refused, and the state
    /// stays). Extraction and eviction happen inside one `process()`
    /// call, so injected faults (which strike at process entry) cannot
    /// split them.
    fn drain_for_ticket(&mut self, h: &ElasticHandle, id: u64) {
        let Some(req) = h.coordinator.ticket(id) else {
            return; // unknown ticket: stale barrier after a restart
        };
        let engine = self.engine.as_mut().expect("prepare() ran");
        let migration = match engine.collect_migration(&req.meta.locations) {
            Ok(m) => m,
            Err(e) => panic!("engine {} failed to collect migration state: {e}", self.task_index),
        };
        let specs: Vec<RuleSpec> = {
            let plan = h.engine_plan.read();
            migration
                .rules
                .iter()
                .filter_map(|(rule, _)| {
                    plan.per_engine
                        .get(self.task_index)
                        .and_then(|entries| entries.iter().find(|(s, _)| s.name == *rule))
                        .map(|(s, _)| s.clone())
                })
                .collect()
        };
        if h.coordinator.deposit(id, MigrationPayload { specs, migration: migration.clone() }) {
            if let Err(e) = engine.evict_migration(&migration) {
                panic!("engine {} failed to evict migrated state: {e}", self.task_index);
            }
        }
    }

    /// The rule entries this task currently runs: the handle's *live*
    /// plan when elastic is attached, the start-up plan otherwise.
    fn planned_rules(&self) -> Vec<(RuleSpec, Vec<String>)> {
        match &self.elastic {
            Some(h) => {
                h.engine_plan.read().per_engine.get(self.task_index).cloned().unwrap_or_default()
            }
            None => self.plan.per_engine.get(self.task_index).cloned().unwrap_or_default(),
        }
    }
}

impl Bolt<TrafficMessage> for EsperBolt {
    fn prepare(&mut self, ctx: BoltContext) {
        let mut engine = RuleEngine::new(self.method.clone(), self.store.clone(), self.db.clone());
        if let Err(e) = engine.set_incremental_enabled(self.incremental) {
            self.install_error = Some(e.to_string());
        }
        if let Err(e) = engine.set_sharing_enabled(self.sharing) {
            self.install_error = Some(e.to_string());
        }
        if self.profiles.is_some() {
            engine.set_profiling_enabled(true);
        }
        self.task_index = ctx.task_index;
        // Elastic tasks prepare from the *live* plan so a supervised
        // restart after migrations rebuilds the current assignment, not
        // the start-up one.
        let rules = self.planned_rules();
        // Batch rules per monitored-location set: all statements of a
        // batch stand before its first threshold snapshot is fed, so
        // the sharing planner sees pristine windows and can cluster
        // same-shape rules.
        let mut batches: Vec<(&Vec<String>, Vec<RuleSpec>)> = Vec::new();
        for (spec, monitored) in &rules {
            match batches.iter_mut().find(|(m, _)| *m == monitored) {
                Some((_, specs)) => specs.push(spec.clone()),
                None => batches.push((monitored, vec![spec.clone()])),
            }
        }
        for (monitored, specs) in batches {
            if let Err(e) = engine.install_rules(&specs, monitored.iter().cloned()) {
                self.install_error = Some(e.to_string());
            }
        }
        self.engine = Some(engine);
    }

    fn process(&mut self, msg: TrafficMessage, emitter: &mut dyn Emitter<TrafficMessage>) {
        if let Some(err) = &self.install_error {
            panic!("esper bolt failed to install rules: {err}");
        }
        if self.engine.is_none() {
            panic!("esper bolt used before prepare()");
        };
        if let Some(h) = self.elastic.clone() {
            // Absorb any waiting payload *before* touching the tuple: the
            // splitter swaps routes only after posting the payload, so a
            // rerouted tuple never outruns its state past this point.
            Self::absorb_installs(
                self.engine.as_mut().expect("checked above"),
                &h,
                self.task_index,
            );
            match msg {
                TrafficMessage::Barrier { id } => {
                    self.drain_for_ticket(&h, id);
                    return;
                }
                TrafficMessage::Install { .. } => return, // absorbed above
                _ => {}
            }
        }
        let engine = self.engine.as_mut().expect("checked above");
        if let TrafficMessage::StatsRefresh { version } = msg {
            if version > self.stats_version {
                self.stats_version = version;
                // The refresh is atomic: on failure the engine keeps the
                // previous thresholds — the same degradation as a failed
                // batch publication.
                let _ = engine.refresh_thresholds();
            }
            return;
        }
        if let TrafficMessage::Enriched { trace: e, .. } = msg {
            let sink = engine.detections();
            let before = sink.lock().len();
            if let Err(err) = engine.send_trace(&e) {
                // Feed errors indicate a wiring bug, not bad data.
                if !matches!(err, crate::error::CoreError::Cep(CepError::UnknownStream(_))) {
                    panic!("esper engine rejected a trace: {err}");
                }
            }
            let mut sink = sink.lock();
            for d in sink.drain(before..) {
                emitter.emit(TrafficMessage::Detection(d));
            }
            drop(sink);
            if let Some(registry) = &self.profiles {
                registry.publish(self.task_index, engine.rule_profiles(self.task_index));
            }
        }
    }

    fn snapshot_state(&mut self) -> Option<Vec<u8>> {
        let engine = self.engine.as_ref()?;
        let union = engine.monitored_union();
        // Multiple-Rules has no migratable representation (locations are
        // baked into statements); such engines stay memory-only and
        // rebuild cold on restart.
        let migration = engine.collect_migration(&union).ok()?;
        let rule_ages = engine
            .threshold_ages()
            .into_iter()
            .map(|(rule, age)| (rule, age.map(|d| d.as_millis() as u64)))
            .collect();
        Some(crate::kappa::encode_esper_state(&crate::kappa::EsperState {
            migration,
            rule_ages,
            snapshot_unix_ms: crate::kappa::unix_ms_now(),
        }))
    }

    fn restore_state(&mut self, snapshot: Option<&[u8]>, _changelog: &[Vec<u8>]) {
        let Some(bytes) = snapshot else { return };
        let Some(state) = crate::kappa::decode_esper_state(bytes) else {
            return; // corrupt snapshot: keep the cold engine prepare() built
        };
        // prepare() already installed the plan's rules *and fed fresh
        // thresholds*; absorbing the snapshot on top of that would
        // duplicate threshold rows. Rebuild pristine instead: install the
        // same specs with an empty monitored set (no threshold feed,
        // windows untouched for the sharing planner), then absorb the
        // snapshot's state — the exact path an elastic handoff takes,
        // which reproduces a never-restarted engine.
        let mut engine = RuleEngine::new(self.method.clone(), self.store.clone(), self.db.clone());
        if engine.set_incremental_enabled(self.incremental).is_err()
            || engine.set_sharing_enabled(self.sharing).is_err()
        {
            return;
        }
        if self.profiles.is_some() {
            engine.set_profiling_enabled(true);
        }
        let specs: Vec<RuleSpec> =
            self.planned_rules().into_iter().map(|(spec, _)| spec).collect();
        if engine.install_rules(&specs, std::iter::empty()).is_err()
            || engine.absorb_migration(&specs, &state.migration).is_err()
        {
            return; // plan/snapshot mismatch: fall back to the cold engine
        }
        // The thresholds' real age spans the downtime; backdating keeps
        // the staleness gauge honest across the restart.
        let downtime_ms = crate::kappa::unix_ms_now().saturating_sub(state.snapshot_unix_ms);
        for (rule, age_ms) in &state.rule_ages {
            if let Some(ms) = age_ms {
                engine.backdate_thresholds(rule, Duration::from_millis(ms.saturating_add(downtime_ms)));
            }
        }
        self.engine = Some(engine);
    }
}

/// EventsStorer bolt: persists detections to the storage medium and a
/// shared in-memory sink for the caller.
pub struct EventsStorerBolt {
    store: TableStore,
    sink: Arc<Mutex<Vec<Detection>>>,
}

/// Schema of the `detected_events` table.
pub fn detected_events_schema() -> tms_storage::Schema {
    tms_storage::Schema::new(vec![
        tms_storage::Column::new("rule", tms_storage::ColumnType::Str),
        tms_storage::Column::new("location", tms_storage::ColumnType::Str),
        tms_storage::Column::new("observed", tms_storage::ColumnType::Float),
        tms_storage::Column::new("threshold", tms_storage::ColumnType::Float),
        tms_storage::Column::new("timestamp_ms", tms_storage::ColumnType::Int),
    ])
    .expect("detected_events schema is valid")
}

impl EventsStorerBolt {
    /// Creates the storer, ensuring the `detected_events` table exists.
    pub fn new(store: TableStore, sink: Arc<Mutex<Vec<Detection>>>) -> Self {
        store
            .create_table_if_missing("detected_events", detected_events_schema())
            .expect("detected_events schema is stable");
        EventsStorerBolt { store, sink }
    }
}

impl Bolt<TrafficMessage> for EventsStorerBolt {
    fn process(&mut self, msg: TrafficMessage, _emitter: &mut dyn Emitter<TrafficMessage>) {
        if let TrafficMessage::Detection(d) = msg {
            self.store
                .insert(
                    "detected_events",
                    vec![
                        tms_storage::Value::from(d.rule.clone()),
                        tms_storage::Value::from(d.location.clone()),
                        tms_storage::Value::Float(d.observed),
                        d.threshold.map(tms_storage::Value::Float).unwrap_or(tms_storage::Value::Null),
                        tms_storage::Value::Int(d.timestamp_ms as i64),
                    ],
                )
                .expect("detected_events table exists");
            self.sink.lock().push(d);
        }
    }
}

// ---------------------------------------------------------------------------
// Topology wiring
// ---------------------------------------------------------------------------

/// Parallelism knobs for the Figure 8 topology.
#[derive(Debug, Clone, Copy)]
pub struct TopologyParallelism {
    /// BusReader spout tasks.
    pub spout_tasks: usize,
    /// PreProcess bolt tasks.
    pub preprocess_tasks: usize,
    /// AreaTracker / BusStopsTracker tasks.
    pub tracker_tasks: usize,
    /// Splitter tasks.
    pub splitter_tasks: usize,
    /// Esper tasks = number of engines.
    pub esper_tasks: usize,
}

impl Default for TopologyParallelism {
    fn default() -> Self {
        TopologyParallelism {
            spout_tasks: 2,
            preprocess_tasks: 2,
            tracker_tasks: 2,
            splitter_tasks: 1,
            esper_tasks: 4,
        }
    }
}

/// Builds the Figure 8 topology.
///
/// `chaos` wraps the Esper bolts in fault-injecting [`ChaosBolt`]s
/// (`tms_dsps::fault`): the engine is the stateful heart of the topology
/// and rebuilds itself from the shared [`EnginePlan`] in `prepare`, so a
/// supervised restart after an injected panic recovers it completely.
///
/// `kappa` adds the in-stream statistics side branch: a single-task
/// [`StatsBolt`](crate::kappa::StatsBolt) fed from the BusStopsTracker,
/// whose [`TrafficMessage::StatsRefresh`] notices reach every Esper task
/// over an all-grouped edge — thresholds then track the stream instead of
/// the batch period.
#[allow(clippy::too_many_arguments)]
pub fn build_traffic_topology(
    traces: Arc<Vec<BusTrace>>,
    quadtree: Arc<RegionQuadtree>,
    stops: Arc<BusStopIndex>,
    split_plan: Arc<SplitPlan>,
    engine_plan: Arc<EnginePlan>,
    method: RetrievalMethod,
    store: TableStore,
    db: Option<RemoteDb>,
    detections: Arc<Mutex<Vec<Detection>>>,
    parallelism: TopologyParallelism,
    incremental: bool,
    sharing: bool,
    chaos: Option<FaultConfig>,
    profiling: Option<Arc<EsperProfileRegistry>>,
    elastic: Option<Arc<ElasticHandle>>,
    kappa: Option<crate::kappa::KappaConfig>,
    flight: Option<Arc<tms_dsps::FlightRecorder>>,
) -> Result<Topology<TrafficMessage>, tms_dsps::DspsError> {
    let threshold_store = ThresholdStore::new(store.clone());
    // The attributes the planned rules monitor, in `Attribute::ALL` order
    // — the statistics cells the kappa branch must maintain.
    let stats_attributes: Vec<Attribute> = Attribute::ALL
        .iter()
        .filter(|a| {
            engine_plan.per_engine.iter().flatten().any(|(spec, _)| spec.attribute == **a)
        })
        .copied()
        .collect();
    let spout_tasks = parallelism.spout_tasks.max(1);
    let esper_elastic = elastic.clone();
    let stats_store = threshold_store.clone();
    let esper_factory = move |_: usize| -> Box<dyn Bolt<TrafficMessage>> {
        let mut bolt = EsperBolt::new(
            engine_plan.clone(),
            method.clone(),
            threshold_store.clone(),
            db.clone(),
        )
        .with_incremental(incremental)
        .with_sharing(sharing);
        if let Some(registry) = &profiling {
            bolt = bolt.with_profiling(registry.clone());
        }
        if let Some(handle) = &esper_elastic {
            bolt = bolt.with_elastic(handle.clone());
        }
        Box::new(bolt)
    };
    let esper_factory: Box<dyn Fn(usize) -> Box<dyn Bolt<TrafficMessage>> + Send + Sync> =
        match chaos {
            Some(f) => Box::new(chaos_wrap(esper_factory, f)),
            None => Box::new(esper_factory),
        };
    let mut builder = TopologyBuilder::new("traffic")
        .add_spout("busReader", Parallelism::of(spout_tasks), move |ti| {
            Box::new(BusReaderSpout::new(traces.clone(), ti, spout_tasks))
        })
        .add_bolt(
            "preprocess",
            Parallelism::of(parallelism.preprocess_tasks.max(1)),
            vec![(
                "busReader",
                Grouping::fields(|m: &TrafficMessage| match m {
                    TrafficMessage::Raw { trace, .. } => u64::from(trace.vehicle_id),
                    _ => 0,
                }),
            )],
            |_| Box::new(PreProcessBolt::new()),
        )
        .add_bolt(
            "areaTracker",
            Parallelism::of(parallelism.tracker_tasks.max(1)),
            vec![("preprocess", Grouping::Shuffle)],
            move |_| Box::new(AreaTrackerBolt::new(quadtree.clone())),
        )
        .add_bolt(
            "busStopsTracker",
            Parallelism::of(parallelism.tracker_tasks.max(1)),
            vec![("areaTracker", Grouping::Shuffle)],
            move |_| Box::new(BusStopsTrackerBolt::new(stops.clone())),
        )
        .add_bolt(
            "splitter",
            Parallelism::of(parallelism.splitter_tasks.max(1)),
            vec![("busStopsTracker", Grouping::Shuffle)],
            move |_| {
                let bolt = SplitterBolt::new(split_plan.clone());
                let bolt = match &elastic {
                    Some(handle) => bolt.with_elastic(handle.clone()),
                    None => bolt,
                };
                Box::new(bolt)
            },
        );
    // The kappa side branch: single-task (its BTreeMap of cells is the
    // global statistics state; one task keeps publication deterministic),
    // fed the same enriched stream the splitter sees. Its refresh notices
    // must reach *every* engine, hence the all-grouped esper edge.
    let mut esper_inputs: Vec<(&str, Grouping<TrafficMessage>)> =
        vec![("splitter", Grouping::Direct)];
    if let Some(config) = kappa {
        builder = builder.add_bolt(
            "stats",
            Parallelism::of(1),
            vec![("busStopsTracker", Grouping::Shuffle)],
            move |_| {
                let bolt = crate::kappa::StatsBolt::new(
                    config,
                    stats_store.clone(),
                    stats_attributes.clone(),
                );
                let bolt = match &flight {
                    Some(recorder) => bolt.with_flight(recorder.clone()),
                    None => bolt,
                };
                Box::new(bolt)
            },
        );
        esper_inputs.push(("stats", Grouping::All));
    }
    builder
        .add_bolt(
            "esper",
            Parallelism::of(parallelism.esper_tasks.max(1)),
            esper_inputs,
            move |ti| esper_factory(ti),
        )
        .add_bolt(
            "eventsStorer",
            Parallelism::of(1),
            vec![("esper", Grouping::Shuffle)],
            move |_| Box::new(EventsStorerBolt::new(store.clone(), detections.clone())),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::LocationSelector;
    use tms_storage::{DayType, StatRecord};

    fn enriched(areas: Vec<&str>, stop: Option<&str>) -> EnrichedTrace {
        EnrichedTrace {
            trace: BusTrace {
                timestamp_ms: 0,
                line_id: 1,
                direction: true,
                position: tms_geo::GeoPoint::new_unchecked(53.33, -6.26),
                delay_s: 0.0,
                congestion: false,
                reported_stop: None,
                at_stop: false,
                vehicle_id: 1,
            },
            speed_kmh: None,
            actual_delay_s: None,
            areas: areas.into_iter().map(String::from).collect(),
            bus_stop: stop.map(String::from),
        }
    }

    #[test]
    fn split_plan_routes_by_layer_and_stop() {
        let plan = SplitPlan {
            routes: vec![
                GroupingRoute {
                    kind: GroupingKind::QuadtreeLayer(1),
                    table: [("R1".to_string(), 0), ("R2".to_string(), 1)].into(),
                },
                GroupingRoute {
                    kind: GroupingKind::BusStops,
                    table: [("S5".to_string(), 2)].into(),
                },
            ],
        };
        // Trace in R0→R1→R4 with stop S5: layer-1 region is R1 → engine 0;
        // stop S5 → engine 2.
        let e = enriched(vec!["R0", "R1", "R4"], Some("S5"));
        assert_eq!(plan.engines_for(&e), vec![0, 2]);
        // Trace in R2 without a stop.
        let e = enriched(vec!["R0", "R2"], None);
        assert_eq!(plan.engines_for(&e), vec![1]);
        // Unknown regions walk up the chain; fully unknown yields nothing.
        let e = enriched(vec!["R9"], Some("S9"));
        assert!(plan.engines_for(&e).is_empty());
    }

    #[test]
    fn split_plan_handles_shallow_leaves() {
        // Partition layer is 2 but the trace's chain stops at layer 1
        // (unbalanced tree): the leaf entry is used.
        let plan = SplitPlan {
            routes: vec![GroupingRoute {
                kind: GroupingKind::QuadtreeLayer(2),
                table: [("R3".to_string(), 4)].into(),
            }],
        };
        let e = enriched(vec!["R0", "R3"], None);
        assert_eq!(plan.engines_for(&e), vec![4]);
    }

    #[test]
    fn split_plan_deduplicates_engines() {
        let plan = SplitPlan {
            routes: vec![
                GroupingRoute {
                    kind: GroupingKind::QuadtreeLayer(0),
                    table: [("R0".to_string(), 3)].into(),
                },
                GroupingRoute {
                    kind: GroupingKind::QuadtreeLayer(1),
                    table: [("R1".to_string(), 3)].into(),
                },
            ],
        };
        let e = enriched(vec!["R0", "R1"], None);
        assert_eq!(plan.engines_for(&e), vec![3], "same engine listed once");
    }

    #[test]
    fn resequencer_restores_global_order_across_interleavings() {
        let mk = |_: u64| Arc::new(enriched(vec!["R0"], None));
        let released = |out: Vec<(u64, Arc<EnrichedTrace>)>| -> Vec<u64> {
            out.into_iter().map(|(seq, _)| seq).collect()
        };
        // Two upstream tasks interleave 0,2,4 and 1,3,5 arbitrarily.
        let mut r = Resequencer::new();
        assert_eq!(released(r.push(1, mk(1))), Vec::<u64>::new(), "gap at 0 buffers");
        assert_eq!(released(r.push(0, mk(0))), vec![0, 1], "filling the gap releases the run");
        assert_eq!(released(r.push(4, mk(4))), Vec::<u64>::new());
        assert_eq!(released(r.push(3, mk(3))), Vec::<u64>::new());
        assert_eq!(released(r.push(2, mk(2))), vec![2, 3, 4]);
        // An at-least-once replay of a released sequence passes through.
        assert_eq!(released(r.push(2, mk(2))), vec![2], "replay is not withheld");
        // End of stream flushes what is left, still in order.
        assert_eq!(released(r.push(7, mk(7))), Vec::<u64>::new());
        assert_eq!(released(r.push(6, mk(6))), Vec::<u64>::new());
        assert_eq!(released(r.drain()), vec![6, 7]);
        assert_eq!(released(r.push(8, mk(8))), vec![8], "drain advanced the cursor");
    }

    /// Collects emitted detections for bolt-level tests.
    #[derive(Default)]
    struct CaptureEmitter(Vec<Detection>);

    impl Emitter<TrafficMessage> for CaptureEmitter {
        fn emit(&mut self, msg: TrafficMessage) {
            if let TrafficMessage::Detection(d) = msg {
                self.0.push(d);
            }
        }
        fn emit_direct(&mut self, _task: usize, msg: TrafficMessage) {
            self.emit(msg);
        }
    }

    fn delay_trace(ts: u64, area: &str, delay: f64) -> TrafficMessage {
        let mut e = enriched(vec![area], None);
        // Hour 8 of day 0 (a Monday): the statistics cell below.
        e.trace.timestamp_ms = ts + 8 * tms_traffic::HOUR_MS;
        e.trace.delay_s = delay;
        TrafficMessage::Enriched { seq: ts / 1000, trace: Arc::new(e) }
    }

    #[test]
    fn esper_snapshot_restore_keeps_state_and_threshold_age() {
        // An engine snapshots mid-window, "restarts" (fresh bolt, prepare,
        // restore), and must (a) resume with its window state — detections
        // after the restart match a never-restarted reference — and (b)
        // keep the threshold staleness clock running across the downtime
        // instead of resetting it to zero.
        let store = TableStore::new();
        let tstore = ThresholdStore::new(store.clone());
        tstore
            .publish(
                "delay",
                &[StatRecord {
                    area_id: "R1".into(),
                    hour: 8,
                    day_type: DayType::Weekday,
                    mean: 100.0,
                    stdv: 0.0,
                    count: 10,
                }],
            )
            .unwrap();
        let mut spec =
            RuleSpec::new("delay-rule", Attribute::Delay, LocationSelector::QuadtreeLeaves, 3);
        spec.s = 0.0;
        let plan = Arc::new(EnginePlan {
            per_engine: vec![vec![(spec, vec!["R1".to_string()])]],
        });
        let mk = || {
            EsperBolt::new(
                plan.clone(),
                RetrievalMethod::ThresholdStream,
                tstore.clone(),
                None,
            )
        };
        let ctx = BoltContext { task_index: 0, task_count: 1 };

        let mut original = mk();
        original.prepare(ctx);
        let mut reference = mk();
        reference.prepare(ctx);
        let mut sink = CaptureEmitter::default();
        // Two below-threshold samples build window state (avg 55 < 100).
        for (ts, d) in [(1000u64, 50.0), (2000, 60.0)] {
            original.process(delay_trace(ts, "R1", d), &mut sink);
            reference.process(delay_trace(ts, "R1", d), &mut sink);
        }
        assert!(sink.0.is_empty(), "below threshold: nothing fires yet");

        std::thread::sleep(Duration::from_millis(150));
        let snapshot = original.snapshot_state().expect("threshold-stream engines snapshot");

        let mut restored = mk();
        restored.prepare(ctx);
        restored.restore_state(Some(&snapshot), &[]);
        let age = restored.engine.as_ref().unwrap().threshold_ages()[0]
            .1
            .expect("restored rule keeps its stamp");
        assert!(
            age >= Duration::from_millis(150),
            "staleness clock spans the downtime, got {age:?}"
        );
        // A fresh install stamps its thresholds *now*; the restore must
        // keep the snapshot's older stamp instead.
        let mut fresh = mk();
        fresh.prepare(ctx);
        let fresh_age = fresh.engine.as_ref().unwrap().threshold_ages()[0].1.unwrap();
        assert!(fresh_age < age, "a restore is not a refresh");

        // Post-restart: 250 pushes the window average to 120 > 100; the
        // restored engine must fire exactly like the reference (the third
        // sample only crosses when the pre-snapshot window survived).
        let mut rsink = CaptureEmitter::default();
        let mut refsink = CaptureEmitter::default();
        restored.process(delay_trace(3000, "R1", 250.0), &mut rsink);
        reference.process(delay_trace(3000, "R1", 250.0), &mut refsink);
        assert_eq!(rsink.0, refsink.0);
        assert!(!rsink.0.is_empty(), "the scenario must actually fire");

        // Corrupt snapshots fall back to the cold prepare()d engine.
        let mut cold = mk();
        cold.prepare(ctx);
        cold.restore_state(Some(&[0xFF, 0x01]), &[]);
        assert!(cold.engine.as_ref().unwrap().threshold_ages()[0].1.unwrap() < age);
    }

    #[test]
    fn stats_refresh_is_versioned_and_idempotent() {
        // A StatsRefresh with a newer version re-reads thresholds from
        // the store; replays of the same version do nothing.
        let store = TableStore::new();
        let tstore = ThresholdStore::new(store.clone());
        let publish = |mean: f64| {
            tstore
                .publish(
                    "delay",
                    &[StatRecord {
                        area_id: "R1".into(),
                        hour: 8,
                        day_type: DayType::Weekday,
                        mean,
                        stdv: 0.0,
                        count: 10,
                    }],
                )
                .unwrap()
        };
        publish(1_000_000.0); // nothing fires under this threshold
        let mut spec =
            RuleSpec::new("delay-rule", Attribute::Delay, LocationSelector::QuadtreeLeaves, 1);
        spec.s = 0.0;
        let plan = Arc::new(EnginePlan {
            per_engine: vec![vec![(spec, vec!["R1".to_string()])]],
        });
        let mut bolt =
            EsperBolt::new(plan, RetrievalMethod::ThresholdStream, tstore.clone(), None);
        bolt.prepare(BoltContext { task_index: 0, task_count: 1 });
        let mut sink = CaptureEmitter::default();
        bolt.process(delay_trace(1000, "R1", 50.0), &mut sink);
        assert!(sink.0.is_empty(), "50 < 1e6");
        // The in-stream stage publishes a realistic snapshot and notifies.
        publish(10.0);
        bolt.process(delay_trace(2000, "R1", 50.0), &mut sink);
        assert!(sink.0.is_empty(), "no refresh notice yet: old threshold holds");
        bolt.process(TrafficMessage::StatsRefresh { version: 1 }, &mut sink);
        bolt.process(delay_trace(3000, "R1", 50.0), &mut sink);
        assert_eq!(sink.0.len(), 1, "refreshed threshold 10 < 50 fires");
        // A replayed (duplicate) notice is a no-op even after republish.
        publish(1_000_000.0);
        bolt.process(TrafficMessage::StatsRefresh { version: 1 }, &mut sink);
        bolt.process(delay_trace(4000, "R1", 50.0), &mut sink);
        assert_eq!(sink.0.len(), 2, "stale version ignored: threshold still 10");
    }
}
