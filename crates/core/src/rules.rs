//! The generic rule template (Section 3.3, Listing 1, Table 6).
//!
//! A rule is `(attribute, spatial location, window length)`: it fires when
//! the windowed average of the attribute, over the buses inside a
//! location, crosses that location's dynamic threshold
//! `mean(attribute, location) ± s·stdv(attribute, location)` for the
//! current hour and day type.

// `!(x > 0.0)` is used deliberately in validations: unlike `x <= 0.0`
// it also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::error::CoreError;
use crate::latency::RuleLoad;
use serde::{Deserialize, Serialize};
use tms_geo::{BoundingBox, BusStopIndex, RegionQuadtree};
use tms_traffic::Attribute;

/// Where a rule looks (Table 6's *Location* values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LocationSelector {
    /// All regions of one quadtree layer.
    QuadtreeLayer(u8),
    /// The quadtree's leaf regions.
    QuadtreeLeaves,
    /// The recovered bus stops.
    BusStops,
    /// An explicit area of interest: the leaves intersecting the box.
    Area(BoundingBox),
}

impl LocationSelector {
    /// The quadtree layer this selector groups under for the allocation
    /// algorithm's layer-grouping logic (Section 4.2.2). Bus stops form
    /// their own pseudo-layer below every quadtree layer.
    pub fn layer_key(&self, quadtree: &RegionQuadtree) -> u8 {
        match self {
            LocationSelector::QuadtreeLayer(l) => *l,
            LocationSelector::QuadtreeLeaves | LocationSelector::Area(_) => quadtree.max_layer(),
            LocationSelector::BusStops => quadtree.max_layer() + 1,
        }
    }
}

/// The spatial artifacts rules resolve against: the quadtree of
/// Section 4.1.1 and the bus stops of Section 4.1.2.
#[derive(Debug, Clone)]
pub struct SpatialContext {
    /// The city's hierarchical decomposition.
    pub quadtree: RegionQuadtree,
    /// The recovered bus stops.
    pub stops: BusStopIndex,
}

impl SpatialContext {
    /// Region-id string for a quadtree region.
    pub fn region_id(id: tms_geo::RegionId) -> String {
        format!("R{}", id.0)
    }

    /// Region-id string for a bus stop.
    pub fn stop_id(id: u32) -> String {
        format!("S{id}")
    }

    /// Resolves a selector to its concrete location ids.
    pub fn resolve(&self, selector: &LocationSelector) -> Vec<String> {
        match selector {
            LocationSelector::QuadtreeLayer(l) => {
                // A leaf shallower than `l` covers its area at layer `l`
                // too (unbalanced tree), so include shallower leaves.
                let mut ids: Vec<String> = self
                    .quadtree
                    .iter()
                    .filter(|r| r.layer == *l || (r.is_leaf() && r.layer < *l))
                    .map(|r| Self::region_id(r.id))
                    .collect();
                ids.sort();
                ids
            }
            LocationSelector::QuadtreeLeaves => {
                let mut ids: Vec<String> =
                    self.quadtree.leaves().iter().map(|r| Self::region_id(r.id)).collect();
                ids.sort();
                ids
            }
            LocationSelector::BusStops => {
                (0..self.stops.len() as u32).map(Self::stop_id).collect()
            }
            LocationSelector::Area(bb) => {
                let mut ids: Vec<String> = self
                    .quadtree
                    .leaves_in_area(bb)
                    .iter()
                    .map(|r| Self::region_id(r.id))
                    .collect();
                ids.sort();
                ids
            }
        }
    }
}

/// One instantiated generic rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSpec {
    /// Stable rule name (used in listener wiring and reports).
    pub name: String,
    /// The monitored bus-data attribute.
    pub attribute: Attribute,
    /// The monitored spatial extent.
    pub location: LocationSelector,
    /// Window length `l` (Table 6: 1, 10, 100, 1000).
    pub window_length: usize,
    /// Threshold sensitivity `s` in `mean + s·stdv`.
    pub s: f64,
    /// The operator-assigned weight `w` of Equation 2.
    pub weight: f64,
}

impl RuleSpec {
    /// A rule with weight 1 and the paper's `s = 1` default.
    pub fn new(
        name: impl Into<String>,
        attribute: Attribute,
        location: LocationSelector,
        window_length: usize,
    ) -> Self {
        RuleSpec {
            name: name.into(),
            attribute,
            location,
            window_length,
            s: 1.0,
            weight: 1.0,
        }
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.window_length == 0 {
            return Err(CoreError::Rule {
                reason: format!("rule {}: window_length must be at least 1", self.name),
            });
        }
        if !(self.weight > 0.0) {
            return Err(CoreError::Rule {
                reason: format!("rule {}: weight must be positive", self.name),
            });
        }
        if !self.s.is_finite() {
            return Err(CoreError::Rule {
                reason: format!("rule {}: s must be finite", self.name),
            });
        }
        Ok(())
    }

    /// The rule's Function 1 load, given the number of thresholds its
    /// engine will hold (one per location × hour × day-type).
    pub fn load(&self, thresholds: usize) -> RuleLoad {
        RuleLoad { window: self.window_length, thresholds }
    }

    /// Name of the per-attribute bus stream this rule reads. Attribute
    /// values flow on dedicated streams (`bus_delay`, `bus_speed`, …) with
    /// the schema `(location, hour, day, value, threshold)`; the
    /// `threshold` field is only populated by the *join with database*
    /// method, which attaches the looked-up threshold to each event.
    pub fn bus_stream(&self) -> String {
        format!("bus_{}", self.attribute.name())
    }

    /// Name of the per-attribute threshold stream (each rule joins its
    /// own thresholds: different attributes have different statistics).
    pub fn threshold_stream(&self) -> String {
        format!("thresholds_{}", self.attribute.name())
    }

    /// The comparison operator: abnormal delay is *above* threshold,
    /// abnormal speed *below* (Section 3.1).
    fn cmp(&self) -> &'static str {
        if self.attribute.abnormal_is_high() {
            ">"
        } else {
            "<"
        }
    }

    /// The EPL statement implementing the rule — Listing 1 instantiated
    /// for this attribute, with the threshold supplied by the *new Esper
    /// stream* method (the paper's winner, Section 5.2).
    pub fn to_epl(&self) -> String {
        format!(
            "SELECT bd2.location AS location, avg(bd2.value) AS observed, \
                    avg(thresholds.threshold) AS threshold \
             FROM {bstream}.std:lastevent() AS bd, \
                  {bstream}.std:groupwin(location).win:length({l}) AS bd2, \
                  {tstream}.win:keepall() AS thresholds \
             WHERE bd.hour = thresholds.hour AND bd.day = thresholds.day \
               AND bd.location = thresholds.location AND bd.location = bd2.location \
             GROUP BY bd2.location \
             HAVING avg(bd2.value) {cmp} avg(thresholds.threshold)",
            l = self.window_length,
            bstream = self.bus_stream(),
            tstream = self.threshold_stream(),
            cmp = self.cmp(),
        )
    }

    /// EPL for the *join with database* method: the threshold arrives
    /// attached to each event (looked up per tuple from the storage
    /// medium) instead of via a joined stream.
    pub fn to_epl_db(&self) -> String {
        format!(
            "SELECT bd2.location AS location, avg(bd2.value) AS observed, \
                    avg(bd2.threshold) AS threshold \
             FROM {bstream}.std:lastevent() AS bd, \
                  {bstream}.std:groupwin(location).win:length({l}) AS bd2 \
             WHERE bd.location = bd2.location \
             GROUP BY bd2.location \
             HAVING avg(bd2.value) {cmp} avg(bd2.threshold)",
            l = self.window_length,
            bstream = self.bus_stream(),
            cmp = self.cmp(),
        )
    }

    /// EPL for the *multiple rules* method: one statement per location /
    /// hour / day-type with the threshold inlined as a literal
    /// (Section 4.3.1).
    pub fn to_epl_static(&self, location: &str, hour: u8, day: &str, threshold: f64) -> String {
        format!(
            "SELECT bd2.location AS location, avg(bd2.value) AS observed \
             FROM {bstream}.std:lastevent() AS bd, \
                  {bstream}.std:groupwin(location).win:length({l}) AS bd2 \
             WHERE bd.location = '{location}' AND bd.hour = {hour} AND bd.day = '{day}' \
               AND bd.location = bd2.location \
             GROUP BY bd2.location \
             HAVING avg(bd2.value) {cmp} {threshold}",
            l = self.window_length,
            bstream = self.bus_stream(),
            cmp = self.cmp(),
        )
    }

    /// EPL with one global static threshold — the "optimal" baseline of
    /// Figure 10 (no retrieval cost at all).
    pub fn to_epl_global(&self, threshold: f64) -> String {
        format!(
            "SELECT bd2.location AS location, avg(bd2.value) AS observed \
             FROM {bstream}.std:lastevent() AS bd, \
                  {bstream}.std:groupwin(location).win:length({l}) AS bd2 \
             WHERE bd.location = bd2.location \
             GROUP BY bd2.location \
             HAVING avg(bd2.value) {cmp} {threshold}",
            l = self.window_length,
            bstream = self.bus_stream(),
            cmp = self.cmp(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tms_geo::{DenclueConfig, GeoPoint, QuadtreeConfig, StopObservation, DUBLIN_BBOX};

    fn context() -> SpatialContext {
        let mut seeds = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..60 {
            seeds.push(GeoPoint::new_unchecked(
                rng.random_range(53.25..53.40),
                rng.random_range(-6.40..-6.10),
            ));
        }
        let quadtree = RegionQuadtree::build(
            DUBLIN_BBOX,
            &seeds,
            QuadtreeConfig { max_points_per_region: 6, max_depth: 6 },
        )
        .unwrap();
        let mut obs = Vec::new();
        for (i, center) in [(0, GeoPoint::new_unchecked(53.34, -6.26)), (1, GeoPoint::new_unchecked(53.30, -6.20))] {
            for _ in 0..10 {
                obs.push(StopObservation {
                    line_id: i,
                    direction: true,
                    position: center.destination(rng.random_range(0.0..360.0), rng.random_range(0.0..8.0)),
                    entry_bearing_deg: 90.0,
                });
            }
        }
        let stops = BusStopIndex::build(
            &obs,
            DenclueConfig::default(),
            tms_geo::busstops::SubclusterConfig::default(),
        )
        .unwrap();
        SpatialContext { quadtree, stops }
    }

    #[test]
    fn resolve_layers_and_leaves() {
        let ctx = context();
        let layer0 = ctx.resolve(&LocationSelector::QuadtreeLayer(0));
        assert_eq!(layer0, vec!["R0"]);
        let leaves = ctx.resolve(&LocationSelector::QuadtreeLeaves);
        assert_eq!(leaves.len(), ctx.quadtree.leaves().len());
        // Layer 2 covers the whole city: region count between 1 and 16.
        let layer2 = ctx.resolve(&LocationSelector::QuadtreeLayer(2));
        assert!(!layer2.is_empty() && layer2.len() <= 16);
        let stops = ctx.resolve(&LocationSelector::BusStops);
        assert_eq!(stops.len(), 2);
        assert!(stops[0].starts_with('S'));
    }

    #[test]
    fn resolve_area_is_subset_of_leaves() {
        let ctx = context();
        let area = BoundingBox::new(53.30, -6.30, 53.36, -6.20).unwrap();
        let in_area = ctx.resolve(&LocationSelector::Area(area));
        let leaves = ctx.resolve(&LocationSelector::QuadtreeLeaves);
        assert!(!in_area.is_empty());
        assert!(in_area.len() < leaves.len());
        for r in &in_area {
            assert!(leaves.contains(r));
        }
    }

    #[test]
    fn layer_keys_order_groupings() {
        let ctx = context();
        let max = ctx.quadtree.max_layer();
        assert_eq!(LocationSelector::QuadtreeLayer(2).layer_key(&ctx.quadtree), 2);
        assert_eq!(LocationSelector::QuadtreeLeaves.layer_key(&ctx.quadtree), max);
        assert_eq!(LocationSelector::BusStops.layer_key(&ctx.quadtree), max + 1);
    }

    #[test]
    fn epl_generation_matches_listing1_shape() {
        let rule = RuleSpec::new(
            "delay-leaves",
            Attribute::Delay,
            LocationSelector::QuadtreeLeaves,
            100,
        );
        let epl = rule.to_epl();
        assert!(epl.contains("bus_delay.std:lastevent()"));
        assert!(epl.contains("win:length(100)"));
        assert!(epl.contains("thresholds_delay.win:keepall()"));
        assert!(epl.contains("HAVING avg(bd2.value) > avg(thresholds.threshold)"));
        // The statement must parse with our CEP front end.
        tms_cep::parse_statement(&epl).expect("generated EPL parses");
    }

    #[test]
    fn speed_rules_flip_the_comparison() {
        let rule =
            RuleSpec::new("speed", Attribute::Speed, LocationSelector::BusStops, 10);
        let epl = rule.to_epl();
        assert!(epl.contains("bus_speed"));
        assert!(epl.contains("HAVING avg(bd2.value) < avg(thresholds.threshold)"));
        tms_cep::parse_statement(&epl).unwrap();
    }

    #[test]
    fn static_epl_inlines_thresholds() {
        let rule = RuleSpec::new("d", Attribute::Delay, LocationSelector::QuadtreeLeaves, 10);
        let epl = rule.to_epl_static("R7", 8, "weekday", 123.5);
        assert!(epl.contains("bd.location = 'R7'"));
        assert!(epl.contains("bd.hour = 8"));
        assert!(epl.contains("> 123.5"));
        tms_cep::parse_statement(&epl).unwrap();
    }

    #[test]
    fn db_and_global_variants_parse() {
        let rule = RuleSpec::new("d", Attribute::Delay, LocationSelector::QuadtreeLeaves, 10);
        let db = rule.to_epl_db();
        assert!(db.contains("avg(bd2.threshold)"));
        assert!(!db.contains("keepall"), "no threshold stream in the DB variant");
        tms_cep::parse_statement(&db).unwrap();
        let global = rule.to_epl_global(42.0);
        assert!(global.contains("> 42"));
        tms_cep::parse_statement(&global).unwrap();
    }

    #[test]
    fn validation() {
        let mut r = RuleSpec::new("x", Attribute::Delay, LocationSelector::QuadtreeLeaves, 10);
        r.validate().unwrap();
        r.window_length = 0;
        assert!(r.validate().is_err());
        r.window_length = 1;
        r.weight = 0.0;
        assert!(r.validate().is_err());
        r.weight = 1.0;
        r.s = f64::NAN;
        assert!(r.validate().is_err());
    }
}
