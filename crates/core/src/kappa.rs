//! The kappa path: in-stream incremental statistics replacing the batch
//! round trip.
//!
//! The paper recomputes thresholds with a periodic Hadoop job (Figure 3,
//! arrows 3–5): history → MapReduce → MySQL → `refresh_thresholds`. The
//! thresholds an engine evaluates against are therefore as stale as the
//! batch period — minutes at best. The [`StatsBolt`] collapses that loop
//! into the stream itself: it maintains the same per-(attribute,
//! location, hour, day-type) moments the batch job computes, but
//! incrementally, one enriched trace at a time, and republishes the
//! statistics snapshot every [`KappaConfig::refresh_every`] tuples. A
//! [`TrafficMessage::StatsRefresh`] control message then tells every
//! Esper engine to atomically swap its threshold state — the same
//! [`RuleEngine::refresh_thresholds`] path the batch layer used, minus
//! the batch.
//!
//! Determinism: cells live in a [`BTreeMap`] keyed by `(attribute,
//! location, hour, day-type)`, so a published snapshot is a pure function
//! of the multiset of traces seen — no task-completion-order float
//! drift. The published standard deviation is the *population* stdv
//! (`sqrt(sum_sq/n − mean²)`), matching the batch job's `StatsReducer`
//! bit-for-bit on the same input, so the kappa and batch paths are
//! directly comparable in the staleness ablation.
//!
//! The module also carries the binary codec for the Esper bolts' durable
//! snapshots ([`encode_esper_state`] / [`decode_esper_state`]): the
//! engine's migratable state (windows, threshold rows, monitored sets —
//! the same [`RuleMigration`] plumbing the elastic path ships between
//! engines) plus per-rule threshold ages and a wall-clock stamp, so a
//! supervised restart restores thresholds *and keeps their staleness
//! clock honest* across the downtime.
//!
//! [`TrafficMessage::StatsRefresh`]: crate::topology::TrafficMessage::StatsRefresh
//! [`RuleEngine::refresh_thresholds`]: crate::thresholds::RuleEngine::refresh_thresholds

use crate::thresholds::RuleMigration;
use crate::topology::TrafficMessage;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};
use tms_cep::agg::Accumulator;
use tms_cep::{FieldValue, PartitionState};
use tms_dsps::{Bolt, BoltContext, Emitter, FlightKind, FlightRecorder};
use tms_storage::{DayType, StatRecord, ThresholdStore};
use tms_traffic::Attribute;

/// Configuration of the in-stream statistics path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KappaConfig {
    /// Enriched traces between statistics publications. Each publication
    /// republishes every tracked attribute's snapshot and broadcasts a
    /// refresh to the engines, so this knob trades threshold freshness
    /// against refresh work.
    pub refresh_every: u64,
    /// Minimum samples a cell needs before its statistics publish (the
    /// batch job's `min_samples` guard against garbage thresholds from
    /// thin cells).
    pub min_samples: u64,
}

impl Default for KappaConfig {
    fn default() -> Self {
        KappaConfig { refresh_every: 256, min_samples: 10 }
    }
}

impl KappaConfig {
    /// Validates the knobs.
    pub fn validate(&self) -> Result<(), crate::error::CoreError> {
        if self.refresh_every == 0 {
            return Err(crate::error::CoreError::Config {
                reason: "kappa refresh_every must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// One statistics cell key: `(attribute index, location, hour, day)`.
/// `day` is 0 = weekday, 1 = weekend. Ordered, so snapshot iteration —
/// and hence the published record order and any serialized state — is
/// deterministic.
type CellKey = (u8, String, u8, u8);

fn day_index(d: DayType) -> u8 {
    match d {
        DayType::Weekday => 0,
        DayType::Weekend => 1,
    }
}

fn day_from_index(i: u8) -> DayType {
    if i == 0 {
        DayType::Weekday
    } else {
        DayType::Weekend
    }
}

/// The StatsBolt: the batch statistics job folded into the stream.
///
/// Sits between the BusStopsTracker and the Esper bolts (a side branch —
/// it never forwards traces). For every enriched trace it updates one
/// [`Accumulator`] per (attribute, matched location, hour, day-type)
/// cell; every [`KappaConfig::refresh_every`] traces it publishes each
/// attribute's snapshot to the [`ThresholdStore`] (the atomic
/// whole-table replace the batch layer used) and emits a
/// [`TrafficMessage::StatsRefresh`] that the engines react to.
///
/// At `prepare` the bolt seeds its accumulators from the statistics
/// tables the offline bootstrap published, inverting `(mean, stdv,
/// count)` back into raw moments — the in-stream statistics *continue*
/// the historical ones instead of starting cold.
///
/// Durability: the bolt is snapshot-only (no changelog); its snapshot
/// serializes every cell's raw moments plus the publication counters, so
/// a restart resumes the exact accumulated state.
///
/// [`TrafficMessage::StatsRefresh`]: crate::topology::TrafficMessage::StatsRefresh
pub struct StatsBolt {
    config: KappaConfig,
    store: ThresholdStore,
    /// The attributes the installed rules monitor, in [`Attribute::ALL`]
    /// order; a cell key's `u8` indexes into this.
    attributes: Vec<Attribute>,
    cells: BTreeMap<CellKey, Accumulator>,
    /// Monotonic snapshot version; bumped per publication and carried by
    /// the refresh message so engines ignore stale or duplicate refreshes.
    version: u64,
    since_publish: u64,
    /// Whether any cell changed since the last publication.
    dirty: bool,
    /// Optional control-plane event log: every publication becomes a
    /// [`FlightKind::StatsRefresh`] event.
    flight: Option<Arc<FlightRecorder>>,
}

impl StatsBolt {
    /// Creates the bolt tracking `attributes`.
    pub fn new(config: KappaConfig, store: ThresholdStore, attributes: Vec<Attribute>) -> Self {
        StatsBolt {
            config,
            store,
            attributes,
            cells: BTreeMap::new(),
            version: 0,
            since_publish: 0,
            dirty: false,
            flight: None,
        }
    }

    /// Attaches the control-plane flight recorder.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Seeds the accumulators from an attribute's published statistics
    /// table (the offline bootstrap's output), inverting the population
    /// moments: `sum = mean·n`, `sum_sq = (stdv² + mean²)·n`.
    fn seed_from_store(&mut self) {
        for (ai, attr) in self.attributes.iter().enumerate() {
            let Ok(records) = self.store.statistics(attr.name()) else {
                continue; // no historical table: the attribute starts cold
            };
            for r in records {
                let n = r.count as f64;
                let sum = r.mean * n;
                let sum_sq = (r.stdv * r.stdv + r.mean * r.mean) * n;
                self.cells.insert(
                    (ai as u8, r.area_id, r.hour, day_index(r.day_type)),
                    Accumulator::from_raw_parts(r.count, sum, sum_sq, f64::INFINITY, f64::NEG_INFINITY),
                );
            }
        }
    }

    /// Publishes every attribute's snapshot and bumps the version.
    /// Returns the new version, or `None` when a store write failed (the
    /// engines then keep the previous snapshot — same degradation as a
    /// failed batch run).
    fn publish(&mut self) -> Option<u64> {
        let mut per_attr: Vec<Vec<StatRecord>> = vec![Vec::new(); self.attributes.len()];
        for ((ai, location, hour, day), acc) in &self.cells {
            if acc.count() < self.config.min_samples {
                continue;
            }
            let (count, sum, sum_sq, _, _) = acc.raw_parts();
            let n = count as f64;
            let mean = sum / n;
            // Population variance, exactly as the batch StatsReducer.
            let var = (sum_sq / n - mean * mean).max(0.0);
            per_attr[*ai as usize].push(StatRecord {
                area_id: location.clone(),
                hour: *hour,
                day_type: day_from_index(*day),
                mean,
                stdv: var.sqrt(),
                count,
            });
        }
        for (ai, records) in per_attr.iter().enumerate() {
            if self.store.publish(self.attributes[ai].name(), records).is_err() {
                return None;
            }
        }
        self.version += 1;
        self.since_publish = 0;
        self.dirty = false;
        if let Some(flight) = &self.flight {
            let published: usize = per_attr.iter().map(Vec::len).sum();
            flight.record(
                FlightKind::StatsRefresh,
                "stats",
                -1,
                format!(
                    "snapshot v{} published: {published} records over {} attributes",
                    self.version,
                    self.attributes.len()
                ),
            );
        }
        Some(self.version)
    }
}

impl Bolt<TrafficMessage> for StatsBolt {
    fn prepare(&mut self, _ctx: BoltContext) {
        self.seed_from_store();
    }

    fn process(&mut self, msg: TrafficMessage, emitter: &mut dyn Emitter<TrafficMessage>) {
        let TrafficMessage::Enriched { trace: e, .. } = msg else { return };
        let hour = e.trace.hour_of_day();
        let day = day_index(DayType::from_weekday_index((e.trace.day_index() % 7) as u8));
        for (ai, attr) in self.attributes.iter().enumerate() {
            let Some(value) = attr.value(&e) else { continue };
            for location in e.areas.iter().chain(e.bus_stop.iter()) {
                self.cells
                    .entry((ai as u8, location.clone(), hour, day))
                    .or_default()
                    .add(value);
            }
        }
        self.dirty = true;
        self.since_publish += 1;
        if self.since_publish >= self.config.refresh_every {
            if let Some(version) = self.publish() {
                emitter.emit(TrafficMessage::StatsRefresh { version });
            }
        }
    }

    fn finish(&mut self, emitter: &mut dyn Emitter<TrafficMessage>) {
        // Flush the last partial accumulation window.
        if self.dirty {
            if let Some(version) = self.publish() {
                emitter.emit(TrafficMessage::StatsRefresh { version });
            }
        }
    }

    fn snapshot_state(&mut self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        put_u64(&mut out, self.version);
        put_u64(&mut out, self.since_publish);
        put_u64(&mut out, u64::from(self.dirty));
        put_u64(&mut out, self.cells.len() as u64);
        for ((ai, location, hour, day), acc) in &self.cells {
            out.push(*ai);
            put_str(&mut out, location);
            out.push(*hour);
            out.push(*day);
            let (count, sum, sum_sq, min, max) = acc.raw_parts();
            put_u64(&mut out, count);
            put_f64(&mut out, sum);
            put_f64(&mut out, sum_sq);
            put_f64(&mut out, min);
            put_f64(&mut out, max);
        }
        Some(out)
    }

    fn restore_state(&mut self, snapshot: Option<&[u8]>, _changelog: &[Vec<u8>]) {
        let Some(bytes) = snapshot else { return };
        let mut r = Reader::new(bytes);
        let Some(state) = (|| {
            let version = r.u64()?;
            let since_publish = r.u64()?;
            let dirty = r.u64()? != 0;
            let n = r.u64()?;
            let mut cells = BTreeMap::new();
            for _ in 0..n {
                let ai = r.u8()?;
                let location = r.str()?;
                let hour = r.u8()?;
                let day = r.u8()?;
                let count = r.u64()?;
                let sum = r.f64()?;
                let sum_sq = r.f64()?;
                let min = r.f64()?;
                let max = r.f64()?;
                cells.insert(
                    (ai, location, hour, day),
                    Accumulator::from_raw_parts(count, sum, sum_sq, min, max),
                );
            }
            Some((version, since_publish, dirty, cells))
        })() else {
            return; // corrupt snapshot: start from the prepare() seed
        };
        (self.version, self.since_publish, self.dirty, self.cells) = state;
    }
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------
//
// Hand-rolled little-endian framing: the CEP types shipped in a snapshot
// ([`PartitionState`], [`FieldValue`]) are foreign to this crate, so a
// serde derive cannot reach them; the format below is the whole contract.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_field_value(out: &mut Vec<u8>, v: &FieldValue) {
    match v {
        FieldValue::Int(i) => {
            out.push(0);
            put_u64(out, *i as u64);
        }
        FieldValue::Float(f) => {
            out.push(1);
            put_f64(out, *f);
        }
        FieldValue::Str(s) => {
            out.push(2);
            put_str(out, s);
        }
        FieldValue::Bool(b) => {
            out.push(3);
            out.push(u8::from(*b));
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn field_value(&mut self) -> Option<FieldValue> {
        match self.u8()? {
            0 => Some(FieldValue::Int(self.u64()? as i64)),
            1 => Some(FieldValue::Float(self.f64()?)),
            2 => Some(FieldValue::from(self.str()?.as_str())),
            3 => Some(FieldValue::Bool(self.u8()? != 0)),
            _ => None,
        }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Format version of the Esper snapshot codec; bump on layout changes so
/// stale on-disk snapshots are rejected instead of misread.
const ESPER_STATE_VERSION: u8 = 1;

/// A rule engine's durable state as serialized into a DSPS snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct EsperState {
    /// The engine's full migratable state: per-rule monitored locations
    /// plus every stream's window/threshold rows (see
    /// [`crate::thresholds::RuleEngine::collect_migration`]).
    pub migration: RuleMigration,
    /// Per rule: threshold age in milliseconds at snapshot time (`None`
    /// for static literals that never retrieved anything).
    pub rule_ages: Vec<(String, Option<u64>)>,
    /// Wall-clock stamp of the snapshot (unix ms): restore adds the
    /// downtime to every rule age, so the staleness gauge never lies
    /// younger than the data.
    pub snapshot_unix_ms: u64,
}

/// Current wall-clock time in unix milliseconds.
pub fn unix_ms_now() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Serializes an [`EsperState`] into snapshot bytes.
pub fn encode_esper_state(state: &EsperState) -> Vec<u8> {
    let mut out = vec![ESPER_STATE_VERSION];
    put_u64(&mut out, state.snapshot_unix_ms);
    put_u32(&mut out, state.rule_ages.len() as u32);
    for (rule, age) in &state.rule_ages {
        put_str(&mut out, rule);
        match age {
            Some(ms) => {
                out.push(1);
                put_u64(&mut out, *ms);
            }
            None => out.push(0),
        }
    }
    put_u32(&mut out, state.migration.rules.len() as u32);
    for (rule, locations) in &state.migration.rules {
        put_str(&mut out, rule);
        put_u32(&mut out, locations.len() as u32);
        for l in locations {
            put_str(&mut out, l);
        }
    }
    put_u32(&mut out, state.migration.partitions.len() as u32);
    for p in &state.migration.partitions {
        put_str(&mut out, &p.stream);
        put_u32(&mut out, p.rows.len() as u32);
        for (ts, fields) in &p.rows {
            put_u64(&mut out, *ts);
            put_u32(&mut out, fields.len() as u32);
            for f in fields {
                put_field_value(&mut out, f);
            }
        }
    }
    out
}

/// Deserializes snapshot bytes back into an [`EsperState`]. `None` on a
/// truncated, trailing-garbage, or version-mismatched buffer — the caller
/// then falls back to a cold start.
pub fn decode_esper_state(bytes: &[u8]) -> Option<EsperState> {
    let mut r = Reader::new(bytes);
    if r.u8()? != ESPER_STATE_VERSION {
        return None;
    }
    let snapshot_unix_ms = r.u64()?;
    let n_ages = r.u32()?;
    let mut rule_ages = Vec::with_capacity(n_ages as usize);
    for _ in 0..n_ages {
        let rule = r.str()?;
        let age = match r.u8()? {
            0 => None,
            _ => Some(r.u64()?),
        };
        rule_ages.push((rule, age));
    }
    let n_rules = r.u32()?;
    let mut rules = Vec::with_capacity(n_rules as usize);
    for _ in 0..n_rules {
        let rule = r.str()?;
        let n_locs = r.u32()?;
        let mut locations = Vec::with_capacity(n_locs as usize);
        for _ in 0..n_locs {
            locations.push(r.str()?);
        }
        rules.push((rule, locations));
    }
    let n_parts = r.u32()?;
    let mut partitions = Vec::with_capacity(n_parts as usize);
    for _ in 0..n_parts {
        let stream = r.str()?;
        let n_rows = r.u32()?;
        let mut rows = Vec::with_capacity(n_rows as usize);
        for _ in 0..n_rows {
            let ts = r.u64()?;
            let n_fields = r.u32()?;
            let mut fields = Vec::with_capacity(n_fields as usize);
            for _ in 0..n_fields {
                fields.push(r.field_value()?);
            }
            rows.push((ts, fields));
        }
        partitions.push(PartitionState { stream, rows });
    }
    if !r.done() {
        return None; // trailing garbage: treat as corrupt
    }
    Some(EsperState { migration: RuleMigration { rules, partitions }, rule_ages, snapshot_unix_ms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use tms_storage::TableStore;

    fn sample_state() -> EsperState {
        EsperState {
            migration: RuleMigration {
                rules: vec![
                    ("delay-rule".into(), vec!["R1".into(), "R7".into()]),
                    ("speed-rule".into(), vec![]),
                ],
                partitions: vec![
                    PartitionState {
                        stream: "bus_delay".into(),
                        rows: vec![
                            (
                                17,
                                vec![
                                    FieldValue::from("R1"),
                                    FieldValue::Int(-8),
                                    FieldValue::Float(3.25),
                                    FieldValue::Bool(true),
                                ],
                            ),
                            (42, vec![FieldValue::Float(f64::NAN)]),
                        ],
                    },
                    PartitionState { stream: "thresholds_delay_rule".into(), rows: vec![] },
                ],
            },
            rule_ages: vec![("delay-rule".into(), Some(12345)), ("speed-rule".into(), None)],
            snapshot_unix_ms: 1_700_000_000_123,
        }
    }

    #[test]
    fn esper_state_round_trips() {
        let state = sample_state();
        let bytes = encode_esper_state(&state);
        let back = decode_esper_state(&bytes).expect("decodes");
        // NaN breaks PartialEq; compare the NaN cell by bits and the rest
        // structurally.
        assert_eq!(back.rule_ages, state.rule_ages);
        assert_eq!(back.snapshot_unix_ms, state.snapshot_unix_ms);
        assert_eq!(back.migration.rules, state.migration.rules);
        assert_eq!(back.migration.partitions.len(), 2);
        assert_eq!(back.migration.partitions[0].rows[0], state.migration.partitions[0].rows[0]);
        match (&back.migration.partitions[0].rows[1].1[0], &state.migration.partitions[0].rows[1].1[0]) {
            (FieldValue::Float(a), FieldValue::Float(b)) => {
                assert_eq!(a.to_bits(), b.to_bits(), "NaN round-trips bit-exact");
            }
            other => panic!("expected floats, got {other:?}"),
        }
    }

    #[test]
    fn truncated_or_garbage_snapshots_are_rejected() {
        let bytes = encode_esper_state(&sample_state());
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(decode_esper_state(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0xFF);
        assert_eq!(decode_esper_state(&extended), None, "trailing garbage rejected");
        let mut wrong_version = bytes;
        wrong_version[0] = ESPER_STATE_VERSION + 1;
        assert_eq!(decode_esper_state(&wrong_version), None, "future versions rejected");
    }

    /// Captures emissions for bolt-level tests.
    #[derive(Default)]
    struct Captured(Arc<Mutex<Vec<TrafficMessage>>>);

    impl Emitter<TrafficMessage> for Captured {
        fn emit(&mut self, msg: TrafficMessage) {
            self.0.lock().push(msg);
        }
        fn emit_direct(&mut self, _task: usize, msg: TrafficMessage) {
            self.0.lock().push(msg);
        }
    }

    fn enriched(ts: u64, area: &str, delay: f64) -> TrafficMessage {
        enriched_seq(0, ts, area, delay)
    }

    fn enriched_seq(seq: u64, ts: u64, area: &str, delay: f64) -> TrafficMessage {
        let trace = Arc::new(tms_traffic::EnrichedTrace {
            trace: tms_traffic::BusTrace {
                timestamp_ms: ts + 8 * tms_traffic::HOUR_MS,
                line_id: 1,
                direction: true,
                position: tms_geo::GeoPoint::new_unchecked(53.33, -6.26),
                delay_s: delay,
                congestion: false,
                reported_stop: None,
                at_stop: false,
                vehicle_id: 1,
            },
            speed_kmh: None,
            actual_delay_s: None,
            areas: vec![area.to_string()],
            bus_stop: None,
        });
        TrafficMessage::Enriched { seq, trace }
    }

    fn bolt(refresh_every: u64, min_samples: u64, store: &ThresholdStore) -> StatsBolt {
        StatsBolt::new(
            KappaConfig { refresh_every, min_samples },
            store.clone(),
            vec![Attribute::Delay],
        )
    }

    #[test]
    fn stats_bolt_publishes_batch_identical_statistics() {
        // Four delay samples in one cell: the published record must equal
        // what the batch StatsReducer computes (mean 25, population stdv
        // of [10,20,30,40] ≈ 11.18).
        let store = ThresholdStore::new(TableStore::new());
        let mut b = bolt(4, 2, &store);
        b.prepare(BoltContext { task_index: 0, task_count: 1 });
        let sink = Arc::new(Mutex::new(Vec::new()));
        let mut em = Captured(sink.clone());
        for (i, d) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            b.process(enriched(i as u64 * 1000, "R1", *d), &mut em);
        }
        assert!(
            matches!(sink.lock().as_slice(), [TrafficMessage::StatsRefresh { version: 1 }]),
            "4 tuples at refresh_every=4 publish exactly once"
        );
        let recs = store.statistics("delay").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].area_id, "R1");
        assert_eq!(recs[0].count, 4);
        assert!((recs[0].mean - 25.0).abs() < 1e-12);
        assert!((recs[0].stdv - 11.180339887).abs() < 1e-6, "population stdv: {}", recs[0].stdv);
    }

    #[test]
    fn stats_bolt_continues_from_the_offline_snapshot() {
        // The store already carries a bootstrap cell with 4 samples; two
        // more in-stream samples must yield the 6-sample statistics, not
        // 2-sample ones.
        let store = ThresholdStore::new(TableStore::new());
        store
            .publish(
                "delay",
                &[StatRecord {
                    area_id: "R1".into(),
                    hour: 8,
                    day_type: DayType::Weekday,
                    mean: 25.0,
                    stdv: 11.180339887498949,
                    count: 4,
                }],
            )
            .unwrap();
        let mut b = bolt(2, 1, &store);
        b.prepare(BoltContext { task_index: 0, task_count: 1 });
        let mut em = Captured::default();
        b.process(enriched(0, "R1", 50.0), &mut em);
        b.process(enriched(1000, "R1", 60.0), &mut em);
        let recs = store.statistics("delay").unwrap();
        assert_eq!(recs[0].count, 6, "4 bootstrap + 2 live samples");
        let expected_mean = (10.0 + 20.0 + 30.0 + 40.0 + 50.0 + 60.0) / 6.0;
        assert!((recs[0].mean - expected_mean).abs() < 1e-9, "got {}", recs[0].mean);
    }

    #[test]
    fn thin_cells_wait_for_min_samples_and_finish_flushes() {
        let store = ThresholdStore::new(TableStore::new());
        let mut b = bolt(1000, 3, &store);
        b.prepare(BoltContext { task_index: 0, task_count: 1 });
        let sink = Arc::new(Mutex::new(Vec::new()));
        let mut em = Captured(sink.clone());
        b.process(enriched(0, "R1", 5.0), &mut em);
        b.process(enriched(1000, "R1", 6.0), &mut em);
        assert!(sink.lock().is_empty(), "refresh_every not reached: no publication");
        b.finish(&mut em);
        assert!(
            matches!(sink.lock().as_slice(), [TrafficMessage::StatsRefresh { .. }]),
            "finish flushes the partial window"
        );
        // 2 samples < min 3: the cell published as an empty snapshot.
        assert!(store.statistics("delay").unwrap().is_empty());
        b.process(enriched(2000, "R1", 7.0), &mut em);
        b.finish(&mut em);
        assert_eq!(store.statistics("delay").unwrap()[0].count, 3);
    }

    #[test]
    fn stats_bolt_snapshot_round_trips_through_restore() {
        let store = ThresholdStore::new(TableStore::new());
        let mut b = bolt(100, 1, &store);
        b.prepare(BoltContext { task_index: 0, task_count: 1 });
        let mut em = Captured::default();
        for (i, d) in [10.0, 20.0, 30.0].iter().enumerate() {
            b.process(enriched(i as u64 * 1000, "R1", *d), &mut em);
        }
        let snapshot = b.snapshot_state().expect("stats bolt snapshots");

        let fresh_store = ThresholdStore::new(TableStore::new());
        let mut restored = bolt(100, 1, &fresh_store);
        restored.prepare(BoltContext { task_index: 0, task_count: 1 });
        restored.restore_state(Some(&snapshot), &[]);
        assert_eq!(restored.since_publish, 3);
        assert_eq!(restored.cells, {
            // Rebuild the expected map from the original bolt's cells.
            b.cells.clone()
        });
        // The restored bolt finalizes identically.
        restored.finish(&mut em);
        let recs = fresh_store.statistics("delay").unwrap();
        assert_eq!(recs[0].count, 3);
        assert!((recs[0].mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn corrupt_stats_snapshots_fall_back_to_the_seed() {
        let store = ThresholdStore::new(TableStore::new());
        let mut b = bolt(100, 1, &store);
        b.prepare(BoltContext { task_index: 0, task_count: 1 });
        b.restore_state(Some(&[1, 2, 3]), &[]);
        assert_eq!(b.version, 0);
        assert!(b.cells.is_empty());
    }

    #[test]
    fn config_validates() {
        assert!(KappaConfig::default().validate().is_ok());
        assert!(KappaConfig { refresh_every: 0, min_samples: 1 }.validate().is_err());
    }
}
