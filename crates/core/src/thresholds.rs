//! The three threshold-retrieval methods (Section 4.3.1) and the dynamic
//! rule refresh, realized on a real CEP engine.
//!
//! * **Join with Database** — every tuple entering the engine looks its
//!   threshold up in the (remote) storage medium and carries it into the
//!   stream; each lookup pays the client↔server round trip, which is why
//!   Figure 10 shows this method an order of magnitude slower.
//! * **Create Multiple Rules** — every `(location, hour, day-type)` cell
//!   becomes its own statement with the threshold inlined as a literal;
//!   one snapshot query up front, but the engine groans under the rule
//!   count.
//! * **Add the Thresholds in an Esper stream** — one snapshot query up
//!   front, thresholds become events in a `keepall` stream the rule joins
//!   with; latency is near the no-retrieval optimum. The paper (and this
//!   crate) adopts this method.
//!
//! Dynamic rules (Section 4.1.3): [`RuleEngine::refresh_thresholds`]
//! re-reads the statistics snapshot and swaps the rules' threshold state
//! in place, so a Hadoop re-computation takes effect without restarting
//! the topology.

use crate::error::CoreError;
use crate::rules::RuleSpec;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tms_cep::{Engine, Event, EventType, FieldType, FieldValue, StatementId};
use tms_storage::{DayType, RemoteDb, ThresholdQuery, ThresholdStore};
use tms_traffic::EnrichedTrace;

/// How a rule obtains its per-location thresholds.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrievalMethod {
    /// Per-tuple lookup in the storage medium.
    JoinWithDatabase,
    /// One statement per (location, hour, day-type) with inlined literal.
    MultipleRules,
    /// Thresholds as events in a joined `keepall` stream (the winner).
    ThresholdStream,
    /// One global static threshold — Figure 10's no-retrieval optimum.
    StaticOptimal(f64),
}

/// A fired detection.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Name of the rule that fired.
    pub rule: String,
    /// Location where the abnormality was observed.
    pub location: String,
    /// Windowed average of the attribute.
    pub observed: f64,
    /// The threshold that was crossed, when the method reports one.
    pub threshold: Option<f64>,
    /// Timestamp of the triggering tuple (ms).
    pub timestamp_ms: u64,
}

/// Shared sink collecting detections from an engine.
pub type DetectionSink = Arc<Mutex<Vec<Detection>>>;

/// A rule engine's migratable share of some locations: which locations
/// each rule gives up, plus the per-stream window/threshold state shipped
/// to the destination engine. Built by [`RuleEngine::collect_migration`],
/// installed by [`RuleEngine::absorb_migration`]. Plain data throughout
/// (see [`tms_cep::PartitionState`]), so the handoff can cross process
/// boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleMigration {
    /// Per rule: `(rule name, locations moving for that rule)`. Rules
    /// whose monitored set does not intersect the migrating locations are
    /// omitted.
    pub rules: Vec<(String, Vec<String>)>,
    /// Shipped window state, one entry per involved stream (attribute
    /// streams and, for the Threshold-Stream method, threshold streams).
    pub partitions: Vec<tms_cep::PartitionState>,
}

impl RuleMigration {
    /// Whether no rule had any of the migrating locations.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Total shipped events across all streams.
    pub fn event_count(&self) -> usize {
        self.partitions.iter().map(tms_cep::PartitionState::len).sum()
    }
}

struct InstalledRule {
    spec: RuleSpec,
    /// Locations this engine monitors for the rule (its partition share).
    monitored: HashSet<String>,
    statements: Vec<StatementId>,
    /// When this rule's thresholds were last retrieved from the store:
    /// at install/refresh for snapshot methods, at the latest per-tuple
    /// lookup for Join-with-Database, `None` for static literals.
    thresholds_at: Option<Instant>,
}

/// One Esper-engine task with rules installed under a retrieval method —
/// the object living inside each Esper-bolt task of the topology.
pub struct RuleEngine {
    engine: Engine,
    method: RetrievalMethod,
    store: ThresholdStore,
    /// Remote facade charging per-query latency; `None` means local,
    /// zero-cost access (useful in unit tests).
    db: Option<RemoteDb>,
    rules: Vec<InstalledRule>,
    detections: DetectionSink,
    streams_registered: HashSet<String>,
    /// "Current tuple timestamp", read by listeners when a rule fires.
    clock: Arc<Mutex<u64>>,
}

impl std::fmt::Debug for RuleEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleEngine")
            .field("method", &self.method)
            .field("rules", &self.rules.len())
            .finish()
    }
}

impl RuleEngine {
    /// Creates an engine bound to a threshold store.
    pub fn new(method: RetrievalMethod, store: ThresholdStore, db: Option<RemoteDb>) -> Self {
        RuleEngine {
            engine: Engine::new(),
            method,
            store,
            db,
            rules: Vec::new(),
            detections: Arc::new(Mutex::new(Vec::new())),
            streams_registered: HashSet::new(),
            clock: Arc::new(Mutex::new(0)),
        }
    }

    /// The sink detections are pushed into.
    pub fn detections(&self) -> DetectionSink {
        self.detections.clone()
    }

    /// Number of statements currently standing in the engine.
    pub fn statement_count(&self) -> usize {
        self.engine.statement_count()
    }

    /// Ablation switch for the underlying engine's join-index cache (see
    /// [`tms_cep::Engine::set_join_cache_enabled`]).
    pub fn set_join_cache_enabled(&mut self, enabled: bool) {
        self.engine.set_join_cache_enabled(enabled);
    }

    /// Ablation switch for the underlying engine's incremental evaluation
    /// path (see [`tms_cep::Engine::set_incremental_enabled`]). On by
    /// default; switching it off forces full-window rescans.
    pub fn set_incremental_enabled(&mut self, enabled: bool) -> Result<(), CoreError> {
        self.engine.set_incremental_enabled(enabled)?;
        Ok(())
    }

    /// Whether the incremental evaluation path is currently enabled.
    pub fn incremental_enabled(&self) -> bool {
        self.engine.incremental_enabled()
    }

    /// Per-statement profiling switch for the underlying engine (see
    /// [`tms_cep::Engine::set_profiling_enabled`]). Off by default;
    /// re-enabling resets all counters.
    pub fn set_profiling_enabled(&mut self, enabled: bool) {
        self.engine.set_profiling_enabled(enabled);
    }

    /// Whether per-statement profiling is currently enabled.
    pub fn profiling_enabled(&self) -> bool {
        self.engine.profiling_enabled()
    }

    /// Cumulative per-rule profiles: the engine's per-statement profiles
    /// aggregated over each installed rule's statements (Multiple-Rules
    /// installs many statements per rule), tagged with `engine_index` and
    /// the rule's threshold-staleness age. Empty unless profiling is on.
    pub fn rule_profiles(&self, engine_index: usize) -> Vec<tms_dsps::RuleProfile> {
        if !self.engine.profiling_enabled() {
            return Vec::new();
        }
        let by_id: HashMap<StatementId, tms_cep::StatementProfile> =
            self.engine.profile().into_iter().map(|p| (p.id, p)).collect();
        self.rules
            .iter()
            .map(|r| {
                let mut out = tms_dsps::RuleProfile {
                    rule: r.spec.name.clone(),
                    engine: engine_index,
                    events_in: 0,
                    evals: 0,
                    firings: 0,
                    rows_out: 0,
                    eval: tms_dsps::LatencyHistogram::default(),
                    path_shared: 0,
                    path_incremental: 0,
                    path_anchor: 0,
                    path_rescan: 0,
                    window_len: 0,
                    threshold_age: r.thresholds_at.map(|t| t.elapsed()),
                };
                for id in &r.statements {
                    let Some(p) = by_id.get(id) else { continue };
                    out.events_in += p.events_in;
                    out.evals += p.evals;
                    out.firings += p.firings;
                    out.rows_out += p.rows_out;
                    out.eval.merge(&tms_dsps::LatencyHistogram::from_parts(
                        p.eval_ns_buckets,
                        p.eval_ns_sum,
                    ));
                    out.path_shared += p.path_shared;
                    out.path_incremental += p.path_incremental;
                    out.path_anchor += p.path_anchor;
                    out.path_rescan += p.path_rescan;
                    out.window_len += p.window_len as u64;
                }
                out
            })
            .collect()
    }

    /// The staleness stamp a freshly created statement set gets: `None`
    /// for static literals (nothing was retrieved), now otherwise.
    fn threshold_stamp(&self) -> Option<Instant> {
        match self.method {
            RetrievalMethod::StaticOptimal(_) => None,
            _ => Some(Instant::now()),
        }
    }

    /// Installs a rule for the locations this engine was assigned by the
    /// partitioning component.
    pub fn install_rule(
        &mut self,
        spec: &RuleSpec,
        monitored: impl IntoIterator<Item = String>,
    ) -> Result<(), CoreError> {
        spec.validate()?;
        self.ensure_bus_stream(spec)?;
        let monitored: HashSet<String> = monitored.into_iter().collect();
        let statements = self.create_statements(spec, &monitored)?;
        let thresholds_at = self.threshold_stamp();
        self.rules.push(InstalledRule {
            spec: spec.clone(),
            monitored,
            statements,
            thresholds_at,
        });
        Ok(())
    }

    /// Installs a set of rules together, creating **all** statements
    /// before feeding any threshold stream. Ordering matters for the
    /// engine's sharing planner: it only merges windows that are still
    /// pristine at install time, so statements must stand before the
    /// first threshold event arrives. Per-rule [`RuleEngine::install_rule`]
    /// feeds eagerly and therefore keeps later same-shape rules on
    /// private windows.
    pub fn install_rules(
        &mut self,
        specs: &[RuleSpec],
        monitored: impl IntoIterator<Item = String>,
    ) -> Result<(), CoreError> {
        let monitored: HashSet<String> = monitored.into_iter().collect();
        let start = self.rules.len();
        for spec in specs {
            spec.validate()?;
            self.ensure_bus_stream(spec)?;
            let statements = self.create_statements_inner(spec, &monitored, false)?;
            self.rules.push(InstalledRule {
                spec: spec.clone(),
                monitored: monitored.clone(),
                statements,
                thresholds_at: None,
            });
        }
        for i in start..self.rules.len() {
            let spec = self.rules[i].spec.clone();
            let monitored = self.rules[i].monitored.clone();
            if matches!(self.method, RetrievalMethod::ThresholdStream) {
                self.feed_threshold_stream(&spec, &monitored)?;
            }
            self.rules[i].thresholds_at = self.threshold_stamp();
        }
        Ok(())
    }

    /// Ablation switch for the underlying engine's sharing planner (see
    /// [`tms_cep::Engine::set_sharing_enabled`]). On by default.
    pub fn set_sharing_enabled(&mut self, enabled: bool) -> Result<(), CoreError> {
        self.engine.set_sharing_enabled(enabled)?;
        Ok(())
    }

    /// Whether the sharing planner is currently enabled.
    pub fn sharing_enabled(&self) -> bool {
        self.engine.sharing_enabled()
    }

    /// The underlying engine's chosen sharing plan and realized counters.
    pub fn sharing_report(&self) -> tms_cep::SharingReport {
        self.engine.sharing_report()
    }

    fn ensure_bus_stream(&mut self, spec: &RuleSpec) -> Result<(), CoreError> {
        let name = spec.bus_stream();
        if self.streams_registered.contains(&name) {
            return Ok(());
        }
        self.engine.register_type(EventType::with_fields(
            &name,
            &[
                ("location", FieldType::Str),
                ("hour", FieldType::Int),
                ("day", FieldType::Str),
                ("value", FieldType::Float),
                ("threshold", FieldType::Float),
            ],
        )?)?;
        self.streams_registered.insert(name);
        Ok(())
    }

    fn make_listener(
        sink: &DetectionSink,
        rule_name: String,
        clock: Arc<Mutex<u64>>,
    ) -> tms_cep::Listener {
        let sink = sink.clone();
        Box::new(move |_, rows| {
            let ts = *clock.lock();
            let mut sink = sink.lock();
            for row in rows {
                let get_f = |col: &str| row.get(col).and_then(|v| v.as_f64().ok());
                sink.push(Detection {
                    rule: rule_name.clone(),
                    location: row
                        .get("location")
                        .map(|v| v.to_string())
                        .unwrap_or_default(),
                    observed: get_f("observed").unwrap_or(f64::NAN),
                    threshold: get_f("threshold"),
                    timestamp_ms: ts,
                });
            }
        })
    }

    fn create_statements(
        &mut self,
        spec: &RuleSpec,
        monitored: &HashSet<String>,
    ) -> Result<Vec<StatementId>, CoreError> {
        self.create_statements_inner(spec, monitored, true)
    }

    /// Creates a rule's statements; `feed` controls whether the
    /// Threshold-Stream snapshot is sent immediately (per-rule installs)
    /// or deferred by the caller (batch installs, keeping windows
    /// pristine for the sharing planner). All-or-nothing: a failure
    /// midway (Multiple-Rules creates one statement per cell) removes
    /// the statements already created before the error surfaces.
    fn create_statements_inner(
        &mut self,
        spec: &RuleSpec,
        monitored: &HashSet<String>,
        feed: bool,
    ) -> Result<Vec<StatementId>, CoreError> {
        let mut ids = Vec::new();
        match self.create_statements_raw(spec, monitored, feed, &mut ids) {
            Ok(()) => Ok(ids),
            Err(e) => {
                for id in ids {
                    let _ = self.engine.remove_statement(id);
                }
                Err(e)
            }
        }
    }

    fn create_statements_raw(
        &mut self,
        spec: &RuleSpec,
        monitored: &HashSet<String>,
        feed: bool,
        ids: &mut Vec<StatementId>,
    ) -> Result<(), CoreError> {
        let clock = self.clock();
        match self.method.clone() {
            RetrievalMethod::ThresholdStream => {
                // Register the threshold stream and feed the snapshot.
                let tstream = spec.threshold_stream();
                if !self.streams_registered.contains(&tstream) {
                    self.engine.register_type(EventType::with_fields(
                        &tstream,
                        &[
                            ("location", FieldType::Str),
                            ("hour", FieldType::Int),
                            ("day", FieldType::Str),
                            ("threshold", FieldType::Float),
                        ],
                    )?)?;
                    self.streams_registered.insert(tstream.clone());
                }
                let listener =
                    Self::make_listener(&self.detections, spec.name.clone(), clock);
                let h = self.engine.create_statement(&spec.to_epl(), listener)?;
                ids.push(h.id);
                if feed {
                    self.feed_threshold_stream(spec, monitored)?;
                }
            }
            RetrievalMethod::MultipleRules => {
                // One snapshot query, then a statement per cell.
                let rows = self.snapshot(spec)?;
                for row in rows {
                    if !monitored.contains(&row.area_id) {
                        continue;
                    }
                    let epl = spec.to_epl_static(
                        &row.area_id,
                        row.hour,
                        row.day_type.as_str(),
                        row.threshold,
                    );
                    let listener = Self::make_listener(
                        &self.detections,
                        spec.name.clone(),
                        self.clock(),
                    );
                    ids.push(self.engine.create_statement(&epl, listener)?.id);
                }
            }
            RetrievalMethod::JoinWithDatabase => {
                let listener =
                    Self::make_listener(&self.detections, spec.name.clone(), clock);
                ids.push(self.engine.create_statement(&spec.to_epl_db(), listener)?.id);
            }
            RetrievalMethod::StaticOptimal(threshold) => {
                let listener =
                    Self::make_listener(&self.detections, spec.name.clone(), clock);
                ids.push(
                    self.engine.create_statement(&spec.to_epl_global(threshold), listener)?.id,
                );
            }
        }
        Ok(())
    }

    fn snapshot(&self, spec: &RuleSpec) -> Result<Vec<tms_storage::ThresholdRow>, CoreError> {
        let query = ThresholdQuery { attribute: spec.attribute.name().into(), s: spec.s };
        let rows = match &self.db {
            Some(db) => ThresholdStore::thresholds_remote(db, &query)?,
            None => self.store.thresholds(&query)?,
        };
        Ok(rows)
    }

    fn feed_threshold_stream(
        &mut self,
        spec: &RuleSpec,
        monitored: &HashSet<String>,
    ) -> Result<(), CoreError> {
        let rows = self.snapshot(spec)?;
        self.feed_threshold_rows(spec, monitored, rows)
    }

    /// Feeds pre-fetched snapshot rows into the rule's threshold stream,
    /// filtered to the monitored locations. Split from
    /// [`Self::feed_threshold_stream`] so callers that must not fail
    /// mid-mutation (the atomic refresh) can front-load the fallible
    /// store round trip.
    fn feed_threshold_rows(
        &mut self,
        spec: &RuleSpec,
        monitored: &HashSet<String>,
        rows: Vec<tms_storage::ThresholdRow>,
    ) -> Result<(), CoreError> {
        let ty = self
            .engine
            .event_type(&spec.threshold_stream())
            .expect("threshold stream registered")
            .clone();
        for row in rows {
            if !monitored.contains(&row.area_id) {
                continue;
            }
            let ev = Event::from_pairs(
                &ty,
                0,
                &[
                    ("location", FieldValue::from(row.area_id.as_str())),
                    ("hour", FieldValue::Int(i64::from(row.hour))),
                    ("day", FieldValue::from(row.day_type.as_str())),
                    ("threshold", FieldValue::Float(row.threshold)),
                ],
            )?;
            self.engine.send_event(ev)?;
        }
        Ok(())
    }

    /// The shared "current tuple timestamp" the listeners read. Updated
    /// by [`Self::send_trace`].
    fn clock(&self) -> Arc<Mutex<u64>> {
        self.clock.clone()
    }

    /// Re-reads the statistics snapshot and swaps every rule's threshold
    /// state — the dynamic-rules path fed by the periodic Hadoop job.
    ///
    /// The swap is atomic with respect to failure: every fallible step
    /// (the store round trips, building the replacement statements) runs
    /// *before* the first installed statement is removed, so an error —
    /// a dropped statistics table, a failed remote query, a statement
    /// that no longer compiles — leaves the engine exactly as it was,
    /// old rules and thresholds still standing. The previous
    /// tear-down-then-recreate order could fail midway and leave the
    /// engine with no rules at all.
    pub fn refresh_thresholds(&mut self) -> Result<(), CoreError> {
        let rules: Vec<(RuleSpec, HashSet<String>)> = self
            .rules
            .iter()
            .map(|r| (r.spec.clone(), r.monitored.clone()))
            .collect();
        // Front-load the fallible store round trips: one snapshot per
        // rule, fetched while the engine is untouched.
        let snapshots: Vec<Option<Vec<tms_storage::ThresholdRow>>> = rules
            .iter()
            .map(|(spec, _)| match self.method {
                RetrievalMethod::ThresholdStream => self.snapshot(spec).map(Some),
                _ => Ok(None),
            })
            .collect::<Result<_, _>>()?;
        // Build the replacement statements while the old ones still
        // stand: our keepall windows cannot delete, so fresh statements
        // (fresh windows) pick up the new snapshot. A failure here
        // unwinds the partial build and leaves the engine untouched.
        let mut fresh: Vec<Vec<StatementId>> = Vec::new();
        for (spec, monitored) in &rules {
            match self.create_statements_inner(spec, monitored, false) {
                Ok(ids) => fresh.push(ids),
                Err(e) => {
                    for id in fresh.into_iter().flatten() {
                        let _ = self.engine.remove_statement(id);
                    }
                    return Err(e);
                }
            }
        }
        // Full success: retire the old statements and swap in the new
        // ones. Recreated as a batch (all statements, then all feeds) so
        // the engine's sharing planner can re-merge the fresh windows.
        let old: Vec<StatementId> =
            self.rules.iter().flat_map(|r| r.statements.iter().copied()).collect();
        for (r, ids) in self.rules.iter_mut().zip(fresh) {
            r.statements = ids;
            r.thresholds_at = None;
        }
        for id in old {
            self.engine.remove_statement(id)?;
        }
        for (i, snapshot) in snapshots.iter().enumerate() {
            let spec = self.rules[i].spec.clone();
            let monitored = self.rules[i].monitored.clone();
            if let Some(rows) = snapshot.clone() {
                self.feed_threshold_rows(&spec, &monitored, rows)?;
            }
            self.rules[i].thresholds_at = self.threshold_stamp();
        }
        Ok(())
    }

    /// Elastic migrations move per-location window state between engines;
    /// that only works when statements are location-agnostic (membership
    /// lives in the monitored sets). Multiple-Rules bakes each location
    /// into its own per-cell statement, so it cannot migrate state.
    fn ensure_elastic_supported(&self) -> Result<(), CoreError> {
        if matches!(self.method, RetrievalMethod::MultipleRules) {
            return Err(CoreError::Config {
                reason: "elastic migration is unsupported for the Multiple-Rules method: \
                         locations are baked into per-cell statements"
                    .into(),
            });
        }
        Ok(())
    }

    /// The streams a migration of `moved` rules ships state on: each
    /// rule's attribute stream plus, under the Threshold-Stream method,
    /// its threshold stream.
    fn migration_streams(&self, moved: &[(String, Vec<String>)]) -> Vec<String> {
        let mut streams: Vec<String> = Vec::new();
        for r in &self.rules {
            if !moved.iter().any(|(name, _)| *name == r.spec.name) {
                continue;
            }
            for s in [r.spec.bus_stream(), r.spec.threshold_stream()] {
                if self.streams_registered.contains(&s) && !streams.contains(&s) {
                    streams.push(s);
                }
            }
        }
        streams
    }

    /// Collects this engine's share of `locations` for migration —
    /// non-destructively, so an aborted handoff changes nothing here.
    /// Ship the result, then call [`Self::evict_migration`] once the
    /// destination has it safely deposited.
    pub fn collect_migration(&self, locations: &[String]) -> Result<RuleMigration, CoreError> {
        self.ensure_elastic_supported()?;
        let mut rules: Vec<(String, Vec<String>)> = Vec::new();
        let mut union: Vec<String> = Vec::new();
        for r in &self.rules {
            let moved: Vec<String> =
                locations.iter().filter(|l| r.monitored.contains(*l)).cloned().collect();
            if moved.is_empty() {
                continue;
            }
            for l in &moved {
                if !union.contains(l) {
                    union.push(l.clone());
                }
            }
            rules.push((r.spec.name.clone(), moved));
        }
        let mut partitions = Vec::new();
        if !rules.is_empty() {
            let values: Vec<tms_cep::FieldValue> =
                union.iter().map(|l| tms_cep::FieldValue::from(l.as_str())).collect();
            for stream in self.migration_streams(&rules) {
                let p = self.engine.collect_partition(&stream, "location", &values)?;
                if !p.is_empty() {
                    partitions.push(p);
                }
            }
        }
        Ok(RuleMigration { rules, partitions })
    }

    /// Destructively drops a collected migration's locations from this
    /// engine: their window/threshold state leaves every statement and
    /// the rules stop monitoring them, so replayed or late tuples for
    /// those locations no longer produce events here. Returns how many
    /// retained events were removed.
    pub fn evict_migration(&mut self, migration: &RuleMigration) -> Result<usize, CoreError> {
        self.ensure_elastic_supported()?;
        let mut union: Vec<String> = Vec::new();
        for (_, locs) in &migration.rules {
            for l in locs {
                if !union.contains(l) {
                    union.push(l.clone());
                }
            }
        }
        if union.is_empty() {
            return Ok(0);
        }
        let values: Vec<tms_cep::FieldValue> =
            union.iter().map(|l| tms_cep::FieldValue::from(l.as_str())).collect();
        let mut removed = 0usize;
        for stream in self.migration_streams(&migration.rules) {
            removed += self.engine.evict_partition(&stream, "location", &values)?;
        }
        for (name, locs) in &migration.rules {
            if let Some(r) = self.rules.iter_mut().find(|r| r.spec.name == *name) {
                for l in locs {
                    r.monitored.remove(l);
                }
            }
        }
        Ok(removed)
    }

    /// Installs a shipped migration: each migrating rule starts (or
    /// extends) its monitored set here, missing rules are installed from
    /// `specs`, and the shipped window/threshold state merges into the
    /// local statements without re-firing (the history already fired at
    /// the source).
    pub fn absorb_migration(
        &mut self,
        specs: &[RuleSpec],
        migration: &RuleMigration,
    ) -> Result<(), CoreError> {
        self.ensure_elastic_supported()?;
        for (name, locs) in &migration.rules {
            if !self.rules.iter().any(|r| r.spec.name == *name) {
                let spec = specs.iter().find(|s| s.name == *name).ok_or_else(|| {
                    CoreError::Rule {
                        reason: format!("migration references unknown rule {name:?}"),
                    }
                })?;
                self.install_rule(spec, std::iter::empty())?;
            }
            let r = self
                .rules
                .iter_mut()
                .find(|r| r.spec.name == *name)
                .expect("installed just above");
            r.monitored.extend(locs.iter().cloned());
        }
        for p in &migration.partitions {
            self.engine.absorb_partition(p)?;
        }
        Ok(())
    }

    /// The locations a rule currently monitors on this engine, when it is
    /// installed.
    pub fn monitored(&self, rule: &str) -> Option<&HashSet<String>> {
        self.rules.iter().find(|r| r.spec.name == rule).map(|r| &r.monitored)
    }

    /// The union of every installed rule's monitored locations, sorted
    /// and deduplicated. This is the location set a full-engine snapshot
    /// must capture ([`Self::collect_migration`] with this set extracts
    /// every rule's state).
    pub fn monitored_union(&self) -> Vec<String> {
        let mut out: Vec<String> =
            self.rules.iter().flat_map(|r| r.monitored.iter().cloned()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Per installed rule: how old its threshold state is (`None` when
    /// the rule never retrieved thresholds — e.g. a static literal).
    /// Rules appear in installation order.
    pub fn threshold_ages(&self) -> Vec<(String, Option<Duration>)> {
        self.rules
            .iter()
            .map(|r| (r.spec.name.clone(), r.thresholds_at.map(|t| t.elapsed())))
            .collect()
    }

    /// Re-stamps a rule's threshold clock to read `age` old right now —
    /// used when restoring a durable snapshot, where the thresholds'
    /// *real* age spans the downtime and must not reset to zero. Ages
    /// beyond what a monotonic clock can represent saturate at the
    /// process epoch. No-op for rules not installed here.
    pub fn backdate_thresholds(&mut self, rule: &str, age: Duration) {
        if let Some(r) = self.rules.iter_mut().find(|r| r.spec.name == rule) {
            r.thresholds_at = Instant::now().checked_sub(age).or(r.thresholds_at);
        }
    }

    /// Feeds one enriched trace to the engine: for every installed rule,
    /// every monitored location the trace belongs to becomes one event on
    /// the rule's attribute stream. Returns how many events entered the
    /// engine.
    pub fn send_trace(&mut self, e: &EnrichedTrace) -> Result<usize, CoreError> {
        let hour = e.trace.hour_of_day();
        let day = DayType::from_weekday_index((e.trace.day_index() % 7) as u8);
        let clock = self.clock();
        *clock.lock() = e.trace.timestamp_ms;

        // Candidate locations of this trace.
        let mut locations: Vec<&str> = e.areas.iter().map(String::as_str).collect();
        if let Some(s) = &e.bus_stop {
            locations.push(s.as_str());
        }

        // One event per (attribute stream, matched location) — a tuple
        // enters the engine once per stream, and every statement standing
        // on that stream sees it (Esper's delivery model). Emitting per
        // *rule* would square the evaluation count for same-attribute
        // rules.
        let mut per_attribute: Vec<(tms_traffic::Attribute, f64, f64, Vec<String>)> = Vec::new();
        for r in &self.rules {
            let attr = r.spec.attribute;
            let Some(value) = attr.value(e) else { continue };
            let entry = match per_attribute.iter_mut().find(|(a, _, _, _)| *a == attr) {
                Some(entry) => entry,
                None => {
                    per_attribute.push((attr, value, r.spec.s, Vec::new()));
                    per_attribute.last_mut().expect("just pushed")
                }
            };
            for l in &locations {
                if r.monitored.contains(*l) && !entry.3.iter().any(|x| x == *l) {
                    entry.3.push((*l).to_string());
                }
            }
        }

        let mut sent = 0usize;
        let mut outbox: Vec<Event> = Vec::new();
        for (attr, value, s_param, matched) in per_attribute {
            let stream = format!("bus_{}", attr.name());
            for location in matched {
                let threshold = match &self.method {
                    RetrievalMethod::JoinWithDatabase => {
                        // The per-tuple lookup, paying one round trip.
                        let query =
                            ThresholdQuery { attribute: attr.name().into(), s: s_param };
                        let looked_up = match &self.db {
                            Some(db) => ThresholdStore::threshold_for_remote(
                                db, &query, &location, hour, day,
                            )?,
                            None => self.store.threshold_for(&query, &location, hour, day)?,
                        };
                        // No statistics for the cell: the rule cannot
                        // apply; skip the event entirely.
                        let Some(t) = looked_up else { continue };
                        t
                    }
                    _ => 0.0,
                };
                let ty = self
                    .engine
                    .event_type(&stream)
                    .expect("bus stream registered at install")
                    .clone();
                outbox.push(Event::from_pairs(
                    &ty,
                    e.trace.timestamp_ms,
                    &[
                        ("location", FieldValue::from(location.as_str())),
                        ("hour", FieldValue::Int(i64::from(hour))),
                        ("day", FieldValue::from(day.as_str())),
                        ("value", FieldValue::Float(value)),
                        ("threshold", FieldValue::Float(threshold)),
                    ],
                )?);
            }
        }
        for ev in outbox {
            self.engine.send_event(ev)?;
            sent += 1;
        }
        if sent > 0 && matches!(self.method, RetrievalMethod::JoinWithDatabase) {
            // Per-tuple lookups just refreshed every fired rule's view of
            // the store; the staleness gauge restarts from here.
            let now = Instant::now();
            for r in &mut self.rules {
                r.thresholds_at = Some(now);
            }
        }
        Ok(sent)
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::LocationSelector;
    use tms_storage::{StatRecord, TableStore};
    use tms_traffic::{Attribute, BusTrace};

    fn store_with_stats() -> ThresholdStore {
        let ts = ThresholdStore::new(TableStore::new());
        // R1 fires above 100 at hour 8 weekday; R2 above 1000.
        let recs = vec![
            StatRecord {
                area_id: "R1".into(),
                hour: 8,
                day_type: DayType::Weekday,
                mean: 100.0,
                stdv: 0.0,
                count: 50,
            },
            StatRecord {
                area_id: "R2".into(),
                hour: 8,
                day_type: DayType::Weekday,
                mean: 1000.0,
                stdv: 0.0,
                count: 50,
            },
        ];
        ts.publish("delay", &recs).unwrap();
        ts
    }

    fn rule(window: usize) -> RuleSpec {
        let mut r = RuleSpec::new(
            "delay-rule",
            Attribute::Delay,
            LocationSelector::QuadtreeLeaves,
            window,
        );
        r.s = 0.0;
        r
    }

    fn trace(ts: u64, area: &str, delay: f64) -> EnrichedTrace {
        EnrichedTrace {
            trace: BusTrace {
                timestamp_ms: ts + 8 * tms_traffic::HOUR_MS,
                line_id: 1,
                direction: true,
                position: tms_geo::GeoPoint::new_unchecked(53.33, -6.26),
                delay_s: delay,
                congestion: false,
                reported_stop: None,
                at_stop: false,
                vehicle_id: 1,
            },
            speed_kmh: Some(20.0),
            actual_delay_s: Some(0.0),
            areas: vec![area.to_string()],
            bus_stop: None,
        }
    }

    fn monitored() -> Vec<String> {
        vec!["R1".into(), "R2".into()]
    }

    fn methods() -> Vec<RetrievalMethod> {
        vec![
            RetrievalMethod::ThresholdStream,
            RetrievalMethod::MultipleRules,
            RetrievalMethod::JoinWithDatabase,
        ]
    }

    #[test]
    fn all_methods_detect_the_same_events() {
        for method in methods() {
            let mut re = RuleEngine::new(method.clone(), store_with_stats(), None);
            re.install_rule(&rule(2), monitored()).unwrap();
            let sink = re.detections();
            // R1: delays 150, 170 → avg crosses 100 from the first event.
            re.send_trace(&trace(1000, "R1", 150.0)).unwrap();
            re.send_trace(&trace(2000, "R1", 170.0)).unwrap();
            // R2 threshold is 1000: never fires.
            re.send_trace(&trace(3000, "R2", 170.0)).unwrap();
            let got = sink.lock();
            assert!(
                got.len() >= 2,
                "{method:?}: expected at least 2 detections, got {}",
                got.len()
            );
            for d in got.iter() {
                assert_eq!(d.location, "R1", "{method:?} misfired at {}", d.location);
                assert!(d.observed > 100.0);
            }
        }
    }

    #[test]
    fn static_optimal_uses_the_literal() {
        let mut re =
            RuleEngine::new(RetrievalMethod::StaticOptimal(50.0), store_with_stats(), None);
        re.install_rule(&rule(1), monitored()).unwrap();
        let sink = re.detections();
        re.send_trace(&trace(1000, "R1", 60.0)).unwrap();
        re.send_trace(&trace(2000, "R1", 40.0)).unwrap();
        let got = sink.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].observed, 60.0);
    }

    #[test]
    fn multiple_rules_explodes_statement_count() {
        let mut stream = RuleEngine::new(RetrievalMethod::ThresholdStream, store_with_stats(), None);
        stream.install_rule(&rule(2), monitored()).unwrap();
        let mut multi = RuleEngine::new(RetrievalMethod::MultipleRules, store_with_stats(), None);
        multi.install_rule(&rule(2), monitored()).unwrap();
        assert_eq!(stream.statement_count(), 1);
        assert_eq!(multi.statement_count(), 2, "one per (location, hour, day) cell");
    }

    #[test]
    fn join_with_database_counts_roundtrips() {
        let store = store_with_stats();
        let db = RemoteDb::new(store.store().clone(), std::time::Duration::ZERO);
        let mut re =
            RuleEngine::new(RetrievalMethod::JoinWithDatabase, store, Some(db.clone()));
        re.install_rule(&rule(1), monitored()).unwrap();
        let before = db.query_count();
        for i in 0..5 {
            re.send_trace(&trace(i * 1000, "R1", 10.0)).unwrap();
        }
        assert_eq!(db.query_count() - before, 5, "one lookup per tuple");
    }

    #[test]
    fn threshold_stream_queries_once_at_install() {
        let store = store_with_stats();
        let db = RemoteDb::new(store.store().clone(), std::time::Duration::ZERO);
        let mut re =
            RuleEngine::new(RetrievalMethod::ThresholdStream, store, Some(db.clone()));
        re.install_rule(&rule(1), monitored()).unwrap();
        let after_install = db.query_count();
        assert_eq!(after_install, 1);
        for i in 0..10 {
            re.send_trace(&trace(i * 1000, "R1", 10.0)).unwrap();
        }
        assert_eq!(db.query_count(), after_install, "no per-tuple queries");
    }

    #[test]
    fn unmonitored_locations_are_ignored() {
        let mut re = RuleEngine::new(RetrievalMethod::ThresholdStream, store_with_stats(), None);
        re.install_rule(&rule(1), vec!["R1".to_string()]).unwrap();
        let sink = re.detections();
        let sent = re.send_trace(&trace(1000, "R2", 5000.0)).unwrap();
        assert_eq!(sent, 0, "R2 is not monitored by this engine");
        assert!(sink.lock().is_empty());
    }

    #[test]
    fn refresh_picks_up_new_statistics() {
        let store = store_with_stats();
        let mut re = RuleEngine::new(RetrievalMethod::ThresholdStream, store.clone(), None);
        re.install_rule(&rule(1), monitored()).unwrap();
        let sink = re.detections();
        // Delay 150 crosses the initial threshold (100).
        re.send_trace(&trace(1000, "R1", 150.0)).unwrap();
        assert_eq!(sink.lock().len(), 1);
        // The batch layer publishes a much higher normal level for R1
        // (e.g. roadworks finished): threshold rises to 500.
        store
            .publish(
                "delay",
                &[StatRecord {
                    area_id: "R1".into(),
                    hour: 8,
                    day_type: DayType::Weekday,
                    mean: 500.0,
                    stdv: 0.0,
                    count: 80,
                }],
            )
            .unwrap();
        re.refresh_thresholds().unwrap();
        re.send_trace(&trace(60_000, "R1", 150.0)).unwrap();
        assert_eq!(sink.lock().len(), 1, "150 no longer abnormal after refresh");
        re.send_trace(&trace(120_000, "R1", 600.0)).unwrap();
        assert_eq!(sink.lock().len(), 2, "600 crosses the new threshold");
    }

    #[test]
    fn failed_refresh_leaves_the_old_rules_standing() {
        // The statistics table vanishing mid-operation (a batch-layer
        // republish gone wrong) must fail the refresh *without* tearing
        // down the rules that were serving detections.
        for method in [RetrievalMethod::ThresholdStream, RetrievalMethod::MultipleRules] {
            let store = store_with_stats();
            let mut re = RuleEngine::new(method.clone(), store.clone(), None);
            re.install_rule(&rule(1), monitored()).unwrap();
            let sink = re.detections();
            re.send_trace(&trace(1000, "R1", 150.0)).unwrap();
            assert_eq!(sink.lock().len(), 1, "{method:?}: rule fires before");
            let statements_before = re.statement_count();

            store
                .store()
                .drop_table(&tms_storage::thresholds::statistics_table_name("delay"))
                .unwrap();
            let err = re.refresh_thresholds();
            assert!(
                matches!(
                    err,
                    Err(CoreError::Storage(tms_storage::StorageError::TableNotFound(_)))
                ),
                "{method:?}: refresh must surface the missing table"
            );
            assert_eq!(
                re.statement_count(),
                statements_before,
                "{method:?}: failed refresh must not add or remove statements"
            );
            // The old rules (and their threshold state) still detect.
            re.send_trace(&trace(60_000, "R1", 150.0)).unwrap();
            assert_eq!(
                sink.lock().len(),
                2,
                "{method:?}: rule still fires after the failed refresh"
            );
        }
    }

    #[test]
    fn first_reports_without_derived_attributes_are_skipped() {
        let mut re = RuleEngine::new(RetrievalMethod::ThresholdStream, store_with_stats(), None);
        let mut speed_rule = RuleSpec::new(
            "speed-rule",
            Attribute::Speed,
            LocationSelector::QuadtreeLeaves,
            1,
        );
        speed_rule.s = 0.0;
        // No speed statistics exist; install still works (empty stream).
        let err = re.install_rule(&speed_rule, monitored());
        assert!(
            matches!(err, Err(CoreError::Storage(tms_storage::StorageError::TableNotFound(_)))),
            "installing a rule without statistics reports the missing table"
        );
    }

    #[test]
    fn rule_profiles_aggregate_per_installed_rule() {
        // MultipleRules installs one statement per (location, hour, day)
        // cell; the profile must still come back as ONE row per rule.
        let mut re = RuleEngine::new(RetrievalMethod::MultipleRules, store_with_stats(), None);
        re.install_rule(&rule(2), monitored()).unwrap();
        assert!(re.rule_profiles(0).is_empty(), "profiling off ⇒ no profiles");
        re.set_profiling_enabled(true);
        assert!(re.profiling_enabled());
        re.send_trace(&trace(1000, "R1", 150.0)).unwrap();
        re.send_trace(&trace(2000, "R2", 170.0)).unwrap();
        let profiles = re.rule_profiles(3);
        assert_eq!(profiles.len(), 1, "two statements, one rule");
        let p = &profiles[0];
        assert_eq!(p.rule, "delay-rule");
        assert_eq!(p.engine, 3);
        assert_eq!(p.events_in, 4, "each event reaches both cell statements");
        assert!(p.evals >= 2, "both statements evaluated, got {}", p.evals);
        assert_eq!(p.eval.count(), p.evals, "one histogram sample per eval");
        assert!(p.firings >= 1, "R1 crossed its threshold");
        assert!(p.eval.sum_ns() > 0);
    }

    #[test]
    fn threshold_age_tracks_snapshot_and_lookup_recency() {
        let mut re = RuleEngine::new(RetrievalMethod::ThresholdStream, store_with_stats(), None);
        re.install_rule(&rule(1), monitored()).unwrap();
        re.set_profiling_enabled(true);
        std::thread::sleep(std::time::Duration::from_millis(15));
        let age = re.rule_profiles(0)[0].threshold_age.expect("snapshot method has an age");
        assert!(age >= std::time::Duration::from_millis(10), "age grows: {age:?}");
        // A refresh re-reads the snapshot and resets the clock.
        re.refresh_thresholds().unwrap();
        let refreshed = re.rule_profiles(0)[0].threshold_age.unwrap();
        assert!(refreshed < age, "refresh resets staleness: {refreshed:?} vs {age:?}");

        // Join-with-Database re-stamps on every tuple that looked up.
        let mut re =
            RuleEngine::new(RetrievalMethod::JoinWithDatabase, store_with_stats(), None);
        re.install_rule(&rule(1), monitored()).unwrap();
        re.set_profiling_enabled(true);
        std::thread::sleep(std::time::Duration::from_millis(15));
        re.send_trace(&trace(1000, "R1", 10.0)).unwrap();
        let age = re.rule_profiles(0)[0].threshold_age.unwrap();
        assert!(age < std::time::Duration::from_millis(10), "lookup re-stamped: {age:?}");

        // Static literals never retrieved anything.
        let mut re =
            RuleEngine::new(RetrievalMethod::StaticOptimal(50.0), store_with_stats(), None);
        re.install_rule(&rule(1), monitored()).unwrap();
        re.set_profiling_enabled(true);
        assert_eq!(re.rule_profiles(0)[0].threshold_age, None);
    }

    #[test]
    fn migration_hands_off_rule_state_between_engines() {
        // R2 migrates from `source` to `dest` mid-stream; a reference
        // engine that served R2 the whole time must detect identically.
        let store = store_with_stats();
        let mut source = RuleEngine::new(RetrievalMethod::ThresholdStream, store.clone(), None);
        let mut dest = RuleEngine::new(RetrievalMethod::ThresholdStream, store.clone(), None);
        let mut reference = RuleEngine::new(RetrievalMethod::ThresholdStream, store, None);
        let spec = rule(3);
        source.install_rule(&spec, monitored()).unwrap();
        reference.install_rule(&spec, vec!["R2".to_string()]).unwrap();
        let ssink = source.detections();
        let dsink = dest.detections();
        let rsink = reference.detections();
        // Pre-migration: R2 builds window state below its threshold
        // (1000); R1 fires at the source.
        for (ts, d) in [(1000u64, 800.0), (2000, 900.0)] {
            source.send_trace(&trace(ts, "R2", d)).unwrap();
            reference.send_trace(&trace(ts, "R2", d)).unwrap();
        }
        source.send_trace(&trace(3000, "R1", 150.0)).unwrap();
        assert_eq!(ssink.lock().len(), 1);
        assert!(rsink.lock().is_empty());

        // Hand off R2 (dest has no rules installed at all yet).
        let migration = source.collect_migration(&["R2".to_string()]).unwrap();
        assert_eq!(migration.rules, vec![("delay-rule".to_string(), vec!["R2".to_string()])]);
        assert!(migration.event_count() >= 3, "2 window events + 1 threshold row ship");
        assert!(source.evict_migration(&migration).unwrap() >= 2);
        assert!(!source.monitored("delay-rule").unwrap().contains("R2"));
        dest.absorb_migration(std::slice::from_ref(&spec), &migration).unwrap();
        assert!(dest.monitored("delay-rule").unwrap().contains("R2"));
        assert!(dsink.lock().is_empty(), "absorbed history must not re-fire");

        // Post-migration R2 traffic: window avg crosses 1000 using the
        // migrated events; dest must match the never-migrated reference.
        for (ts, d) in [(4000u64, 1600.0), (5000, 1700.0)] {
            dest.send_trace(&trace(ts, "R2", d)).unwrap();
            reference.send_trace(&trace(ts, "R2", d)).unwrap();
        }
        assert_eq!(*dsink.lock(), *rsink.lock());
        assert!(!dsink.lock().is_empty(), "the scenario must actually fire");
        // Replayed R2 traffic at the source is ignored, not double-counted.
        assert_eq!(source.send_trace(&trace(4000, "R2", 1600.0)).unwrap(), 0);
        assert_eq!(ssink.lock().len(), 1, "source only ever fired for R1");
    }

    #[test]
    fn monitored_union_and_threshold_ages_cover_all_rules() {
        let mut re = RuleEngine::new(RetrievalMethod::ThresholdStream, store_with_stats(), None);
        re.install_rule(&rule(3), monitored()).unwrap();
        let union = re.monitored_union();
        let mut expected: Vec<String> = monitored().into_iter().collect();
        expected.sort();
        expected.dedup();
        assert_eq!(union, expected);
        let ages = re.threshold_ages();
        assert_eq!(ages.len(), 1);
        assert_eq!(ages[0].0, "delay-rule");
        assert!(ages[0].1.is_some(), "threshold stream stamps at install");
    }

    #[test]
    fn backdate_thresholds_sets_the_age_and_survives_refresh_stamp_semantics() {
        let mut re = RuleEngine::new(RetrievalMethod::ThresholdStream, store_with_stats(), None);
        re.install_rule(&rule(3), monitored()).unwrap();
        re.backdate_thresholds("delay-rule", Duration::from_secs(90));
        let age = re.threshold_ages()[0].1.expect("still stamped");
        assert!(age >= Duration::from_secs(90), "backdated age reads old: {age:?}");
        assert!(age < Duration::from_secs(91), "but not older than asked");
        // Unknown rules are a no-op, not a panic.
        re.backdate_thresholds("no-such-rule", Duration::from_secs(1));
        // A refresh re-stamps to fresh, exactly like the live path.
        re.refresh_thresholds().unwrap();
        assert!(re.threshold_ages()[0].1.unwrap() < Duration::from_secs(1));
    }

    #[test]
    fn migration_is_rejected_for_multiple_rules() {
        let mut re = RuleEngine::new(RetrievalMethod::MultipleRules, store_with_stats(), None);
        re.install_rule(&rule(2), monitored()).unwrap();
        assert!(matches!(
            re.collect_migration(&["R1".to_string()]),
            Err(CoreError::Config { .. })
        ));
    }

    #[test]
    fn detections_carry_timestamps_and_thresholds() {
        let mut re = RuleEngine::new(RetrievalMethod::ThresholdStream, store_with_stats(), None);
        re.install_rule(&rule(1), monitored()).unwrap();
        let sink = re.detections();
        re.send_trace(&trace(5000, "R1", 200.0)).unwrap();
        let got = sink.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].timestamp_ms, 5000 + 8 * tms_traffic::HOUR_MS);
        assert_eq!(got[0].threshold, Some(100.0));
        assert_eq!(got[0].rule, "delay-rule");
    }
}
