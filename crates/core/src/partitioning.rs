//! Rule partitioning — Algorithm 1 of the paper (Section 4.2.1).
//!
//! A rule monitors a set of spatial locations (regions of one quadtree
//! layer, or bus stops). Each location has an expected *input rate* — the
//! bus traces per second it produces, known from historical data and
//! updated while the application runs. The algorithm partitions the
//! locations over the rule's engines so every engine receives roughly the
//! same aggregated rate: locations are sorted by descending rate and each
//! is assigned to the currently least-loaded engine (greedy LPT-style
//! balancing, exactly the paper's pseudo-code).

// `!(x > 0.0)` is used deliberately in validations: unlike `x <= 0.0`
// it also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use tms_dsps::KeyHasher;

/// The fixed-key hasher routing regions that are absent from the table:
/// the same pinned SipHash state the groupings use, so an unknown region
/// lands on the same engine in every task, process and Rust release.
const UNKNOWN_REGION_HASHER: KeyHasher = KeyHasher::new();

/// A spatial location with its expected input rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionRate {
    /// Location id (`R<id>` for quadtree regions, `S<id>` for bus stops).
    pub region: String,
    /// Expected tuples per second for the location.
    pub rate: f64,
}

/// The partition produced by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// `assignments[e]` lists the region ids routed to engine `e`.
    pub assignments: Vec<Vec<String>>,
    /// Aggregated rate per engine.
    pub rates: Vec<f64>,
}

impl Partition {
    /// Largest / smallest *loaded* engine rate (1.0 = perfectly balanced).
    ///
    /// Engines with zero (or NaN) rate are ignored: a partition with more
    /// engines than regions necessarily leaves engines empty, and a
    /// `max / 0` ratio would pin the value at `+inf` — any threshold
    /// comparison against it (the elastic rebalancer's trigger) would then
    /// fire unconditionally. With fewer than two loaded engines there is
    /// nothing to compare, so the partition reports as balanced. The
    /// result is always finite and ≥ 1.0.
    pub fn imbalance(&self) -> f64 {
        let mut min = f64::MAX;
        let mut max = 0.0f64;
        let mut loaded = 0usize;
        for r in self.rates.iter().copied().filter(|r| *r > 0.0) {
            min = min.min(r);
            max = max.max(r);
            loaded += 1;
        }
        if loaded < 2 {
            1.0
        } else {
            max / min
        }
    }

    /// Engine index for a region, if it is part of the partition.
    pub fn engine_of(&self, region: &str) -> Option<usize> {
        self.assignments
            .iter()
            .position(|regions| regions.iter().any(|r| r == region))
    }
}

/// Algorithm 1: partitions a rule's regions over `engines` engines,
/// balancing the aggregated input rates.
pub fn partition_rule(regions: &[RegionRate], engines: usize) -> Result<Partition, CoreError> {
    if engines == 0 {
        return Err(CoreError::Config { reason: "cannot partition over zero engines".into() });
    }
    if regions.is_empty() {
        return Err(CoreError::Config { reason: "no regions to partition".into() });
    }
    if let Some(bad) = regions.iter().find(|r| !(r.rate >= 0.0)) {
        return Err(CoreError::Config {
            reason: format!("region {} has invalid rate {}", bad.region, bad.rate),
        });
    }
    // Sort Region_Rates in descending order (ties broken by id so the
    // partition is deterministic).
    let mut sorted: Vec<&RegionRate> = regions.iter().collect();
    sorted.sort_by(|a, b| b.rate.total_cmp(&a.rate).then_with(|| a.region.cmp(&b.region)));

    let mut assignments: Vec<Vec<String>> = vec![Vec::new(); engines];
    let mut rates = vec![0.0f64; engines];
    for region in sorted {
        // Find the least-loaded engine (first on ties, as in the paper's
        // pseudo-code which scans engines in order).
        let mut least = 0usize;
        for e in 1..engines {
            if rates[e] < rates[least] {
                least = e;
            }
        }
        assignments[least].push(region.region.clone());
        rates[least] += region.rate;
    }
    Ok(Partition { assignments, rates })
}

/// A routing table from region id to engine index, shared with the
/// Splitter bolt. Built from one or more partitions (one per rule
/// grouping, each owning a disjoint engine range).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoutingTable {
    entries: std::collections::HashMap<String, usize>,
    engines: usize,
}

impl RoutingTable {
    /// Creates an empty table over `engines` engines.
    pub fn new(engines: usize) -> Self {
        RoutingTable { entries: std::collections::HashMap::new(), engines }
    }

    /// Total engines the table routes over.
    pub fn engines(&self) -> usize {
        self.engines
    }

    /// Merges a partition whose engine indices start at `engine_offset`.
    pub fn add_partition(&mut self, partition: &Partition, engine_offset: usize) {
        for (e, regions) in partition.assignments.iter().enumerate() {
            for r in regions {
                self.entries.insert(r.clone(), engine_offset + e);
            }
        }
        self.engines = self.engines.max(engine_offset + partition.assignments.len());
    }

    /// Engine for a region; unknown regions hash deterministically onto an
    /// engine so fresh regions (never seen in historical data) still route
    /// stably — including across processes and Rust releases, which is why
    /// the hash goes through the fixed-key [`KeyHasher`] the groupings use
    /// rather than `std`'s `DefaultHasher` (whose output carries no
    /// cross-release stability guarantee).
    pub fn route(&self, region: &str) -> usize {
        if let Some(&e) = self.entries.get(region) {
            return e;
        }
        (UNKNOWN_REGION_HASHER.hash(&region) % self.engines.max(1) as u64) as usize
    }

    /// Number of explicitly routed regions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no region is explicitly routed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions(rates: &[f64]) -> Vec<RegionRate> {
        rates
            .iter()
            .enumerate()
            .map(|(i, &rate)| RegionRate { region: format!("R{i}"), rate })
            .collect()
    }

    #[test]
    fn balances_uniform_rates() {
        let p = partition_rule(&regions(&[1.0; 12]), 4).unwrap();
        assert_eq!(p.assignments.iter().map(Vec::len).sum::<usize>(), 12);
        for r in &p.rates {
            assert_eq!(*r, 3.0);
        }
        assert_eq!(p.imbalance(), 1.0);
    }

    #[test]
    fn skewed_rates_stay_balanced() {
        // One hot region (rate 10) plus many cold ones.
        let mut rs = regions(&[10.0]);
        rs.extend(regions(&[1.0; 20]).into_iter().map(|mut r| {
            r.region = format!("C{}", r.region);
            r
        }));
        let p = partition_rule(&rs, 3).unwrap();
        // Greedy LPT: hot region alone-ish; others share the rest.
        // Total rate 30 over 3 engines → ideal 10 each.
        for r in &p.rates {
            assert!(
                (9.0..=11.0).contains(r),
                "engine rate {r} strays from the 10.0 ideal: {:?}",
                p.rates
            );
        }
    }

    #[test]
    fn every_region_assigned_exactly_once() {
        let rs = regions(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let p = partition_rule(&rs, 3).unwrap();
        let mut seen = std::collections::HashSet::new();
        for a in &p.assignments {
            for r in a {
                assert!(seen.insert(r.clone()), "{r} assigned twice");
            }
        }
        assert_eq!(seen.len(), rs.len());
        for r in &rs {
            assert!(p.engine_of(&r.region).is_some());
        }
        assert_eq!(p.engine_of("nope"), None);
    }

    #[test]
    fn more_engines_than_regions_leaves_empties() {
        let p = partition_rule(&regions(&[5.0, 2.0]), 4).unwrap();
        assert_eq!(p.assignments.iter().filter(|a| !a.is_empty()).count(), 2);
        // Empty engines are ignored: the ratio covers the loaded pair
        // (5.0 / 2.0), not max/0 = inf.
        assert_eq!(p.imbalance(), 2.5);
    }

    #[test]
    fn imbalance_is_finite_for_degenerate_partitions() {
        // Regression: zero-rate engines used to drive the ratio to +inf
        // (and an empty rate list to NaN-adjacent territory), so any
        // `imbalance() > bound` rebalancer trigger fired unconditionally.
        let all_idle = Partition { assignments: vec![Vec::new(); 3], rates: vec![0.0; 3] };
        assert_eq!(all_idle.imbalance(), 1.0);
        let one_loaded =
            Partition { assignments: vec![vec!["R0".into()], Vec::new()], rates: vec![7.0, 0.0] };
        assert_eq!(one_loaded.imbalance(), 1.0);
        let none = Partition { assignments: Vec::new(), rates: Vec::new() };
        assert_eq!(none.imbalance(), 1.0);
        // NaN rates count as unloaded instead of poisoning the fold.
        let with_nan = Partition {
            assignments: vec![Vec::new(); 3],
            rates: vec![f64::NAN, 4.0, 2.0],
        };
        assert_eq!(with_nan.imbalance(), 2.0);
        let loaded = Partition { assignments: vec![Vec::new(); 2], rates: vec![6.0, 3.0] };
        assert_eq!(loaded.imbalance(), 2.0);
    }

    #[test]
    fn deterministic_given_ties() {
        let rs = regions(&[1.0; 10]);
        let a = partition_rule(&rs, 3).unwrap();
        let b = partition_rule(&rs, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_cases() {
        assert!(partition_rule(&regions(&[1.0]), 0).is_err());
        assert!(partition_rule(&[], 2).is_err());
        let bad = vec![RegionRate { region: "R0".into(), rate: -1.0 }];
        assert!(partition_rule(&bad, 2).is_err());
        let nan = vec![RegionRate { region: "R0".into(), rate: f64::NAN }];
        assert!(partition_rule(&nan, 2).is_err());
    }

    #[test]
    fn routing_table_merges_partitions_with_offsets() {
        let p1 = partition_rule(&regions(&[1.0, 2.0, 3.0]), 2).unwrap();
        let mut stops = regions(&[4.0, 5.0]);
        for s in &mut stops {
            s.region = s.region.replace('R', "S");
        }
        let p2 = partition_rule(&stops, 2).unwrap();
        let mut table = RoutingTable::new(0);
        table.add_partition(&p1, 0);
        table.add_partition(&p2, 2);
        assert_eq!(table.engines(), 4);
        assert_eq!(table.len(), 5);
        // Quadtree regions land on engines 0-1, stops on 2-3.
        for r in ["R0", "R1", "R2"] {
            assert!(table.route(r) < 2);
        }
        for s in ["S0", "S1"] {
            assert!((2..4).contains(&table.route(s)));
        }
        // Unknown regions route deterministically inside range.
        let u1 = table.route("brand-new");
        let u2 = table.route("brand-new");
        assert_eq!(u1, u2);
        assert!(u1 < 4);
    }

    #[test]
    fn unknown_region_routing_is_pinned() {
        // Cross-process/cross-release contract: unknown regions go through
        // the fixed-key SipHash (`tms_dsps::KeyHasher`), never `std`'s
        // unstable `DefaultHasher`. hash("R1") = 0xbcd27e2ffc423144 is
        // pinned in tms-dsps; its mod-4 assignment may never change.
        let mut table = RoutingTable::new(4);
        assert_eq!(table.route("R1"), (0xbcd2_7e2f_fc42_3144u64 % 4) as usize);
        assert_eq!(table.route("brand-new"), table.route("brand-new"));
        let brand_new = table.route("brand-new");
        // A known region uses its table entry, not the hash.
        let p = Partition { assignments: vec![vec!["R1".into()]], rates: vec![1.0] };
        table.add_partition(&p, 3);
        assert_eq!(table.route("R1"), 3);
        assert_eq!(table.route("brand-new"), brand_new, "unknowns unaffected");
    }

    #[test]
    fn imbalance_grows_with_fewer_engines_for_skew() {
        let rs = regions(&[8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let p2 = partition_rule(&rs, 2).unwrap();
        // 8 vs 7 → imbalance ~1.14; still close to balanced.
        assert!(p2.imbalance() < 1.3, "imbalance {:?}", p2.imbalance());
    }
}
